# Convenience targets for the repro package.

PYTHON ?= python

.PHONY: install test bench experiments check report clean

install:
	$(PYTHON) -m pip install -e .[test] || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.cli

check:
	$(PYTHON) -m repro.experiments.cli --check

report:
	$(PYTHON) -m repro.experiments.cli --report report.md

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
