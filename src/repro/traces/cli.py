"""Trace tooling CLI: generate, inspect, convert, and simulate traces.

Usage::

    repro-trace gen ccom -o ccom.trc --scale 60000 --seed 0
    repro-trace stats ccom.trc
    repro-trace convert ccom.trc ccom.din
    repro-trace simulate ccom.trc --victim 4 --stream 4x4

``simulate`` runs any trace file — including one recorded by another
tool in the Dinero-style text format — through the baseline system with
a chosen set of the paper's structures and prints miss rates, removal
counts, and the modelled speedup.  This is the bring-your-own-trace
path: record your program, then ask whether a victim cache or stream
buffer would have helped it.

Generated files use the compact binary format for ``.trc`` and the
Dinero-style text format otherwise (see :mod:`repro.traces.io`), so
traces can be exchanged with other cache simulators or archived for
exactly-reproducible experiments.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..common.errors import ReproError
from .io import load_trace, save_trace
from .registry import BENCHMARK_NAMES, EXTENSION_NAMES, build_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Generate, inspect, and convert repro trace files.",
    )
    subcommands = parser.add_subparsers(dest="command", required=True)

    gen = subcommands.add_parser("gen", help="generate a synthetic workload trace")
    gen.add_argument(
        "workload",
        choices=BENCHMARK_NAMES + EXTENSION_NAMES,
        help="workload name",
    )
    gen.add_argument("-o", "--output", required=True, help="output file (.trc = binary)")
    gen.add_argument("--scale", type=int, default=None, help="instruction count")
    gen.add_argument("--seed", type=int, default=0, help="generator seed")

    stats = subcommands.add_parser("stats", help="print Table 2-1 style statistics")
    stats.add_argument("trace", help="trace file to inspect")
    stats.add_argument(
        "--line-size", type=int, default=16, help="line size for footprint stats"
    )

    convert = subcommands.add_parser("convert", help="convert between trace formats")
    convert.add_argument("source", help="input trace file")
    convert.add_argument("destination", help="output trace file (.trc = binary)")

    simulate = subcommands.add_parser(
        "simulate", help="run a trace through the baseline system"
    )
    simulate.add_argument("trace", help="trace file to simulate")
    simulate.add_argument(
        "--cache-kb", type=int, default=4, help="L1 size in KB (each side; default 4)"
    )
    simulate.add_argument(
        "--line", type=int, default=16, help="L1 line size in bytes (default 16)"
    )
    simulate.add_argument(
        "--victim", type=int, default=0, metavar="N",
        help="add an N-entry victim cache to the data side",
    )
    simulate.add_argument(
        "--miss-cache", type=int, default=0, metavar="N",
        help="add an N-entry miss cache to the data side",
    )
    simulate.add_argument(
        "--stream", default="", metavar="WAYSxENTRIES",
        help="add stream buffers, e.g. 1x4 (instruction side gets a single buffer too)",
    )
    simulate.add_argument(
        "--classify", action="store_true", help="also report the 3C miss breakdown"
    )

    return parser


def _cmd_gen(args) -> int:
    trace = build_trace(args.workload, args.scale, args.seed)
    count = save_trace(args.output, trace)
    print(f"wrote {count} references of '{args.workload}' to {args.output}")
    return 0


def _cmd_stats(args) -> int:
    trace = load_trace(args.trace)
    stats = trace.stats()
    print(f"trace: {args.trace}")
    print(f"  instructions:     {stats.instructions}")
    print(f"  loads:            {stats.loads}")
    print(f"  stores:           {stats.stores}")
    print(f"  data refs:        {stats.data_references}")
    print(f"  total refs:       {stats.total_references}")
    print(f"  data/instr:       {stats.data_per_instruction:.3f}")
    line = args.line_size
    print(f"  I footprint:      {trace.unique_lines('i', line)} lines of {line}B")
    print(f"  D footprint:      {trace.unique_lines('d', line)} lines of {line}B")
    return 0


def _cmd_convert(args) -> int:
    trace = load_trace(args.source)
    count = save_trace(args.destination, trace)
    print(f"converted {count} references: {args.source} -> {args.destination}")
    return 0


def _parse_stream(spec: str):
    try:
        ways_text, entries_text = spec.lower().split("x")
        ways, entries = int(ways_text), int(entries_text)
    except ValueError:
        raise ReproError(f"--stream expects WAYSxENTRIES (e.g. 4x4), got {spec!r}") from None
    if ways < 1 or entries < 1:
        raise ReproError("--stream ways and entries must be >= 1")
    return ways, entries


def _cmd_simulate(args) -> int:
    import dataclasses

    from ..buffers.base import CompositeAugmentation
    from ..buffers.miss_cache import MissCache
    from ..buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
    from ..buffers.victim_cache import VictimCache
    from ..common.config import CacheConfig, baseline_system
    from ..hierarchy.performance import evaluate_performance
    from ..hierarchy.system import MemorySystem

    trace = load_trace(args.trace)
    l1 = CacheConfig(args.cache_kb * 1024, args.line)
    config = dataclasses.replace(baseline_system(), icache=l1, dcache=l1)

    daugs = []
    if args.victim and args.miss_cache:
        raise ReproError("choose either --victim or --miss-cache, not both")
    if args.victim:
        daugs.append(VictimCache(args.victim))
    if args.miss_cache:
        daugs.append(MissCache(args.miss_cache))
    iaug = None
    if args.stream:
        ways, entries = _parse_stream(args.stream)
        iaug = StreamBuffer(entries=entries)
        daugs.append(
            StreamBuffer(entries=entries)
            if ways == 1
            else MultiWayStreamBuffer(ways=ways, entries=entries)
        )
    daug = None
    if len(daugs) == 1:
        daug = daugs[0]
    elif daugs:
        daug = CompositeAugmentation(daugs)

    baseline = MemorySystem(config, classify=args.classify)
    base_result = baseline.run(trace)
    print(f"trace: {args.trace}  ({base_result.total_references} references)")
    print(f"L1: {args.cache_kb}KB direct-mapped, {args.line}B lines (split I/D)")
    print(f"  baseline I miss rate: {base_result.imiss_rate:.4f}")
    print(f"  baseline D miss rate: {base_result.dmiss_rate:.4f}")
    if args.classify:
        for label, classifier in (
            ("I", baseline.ilevel.classifier),
            ("D", baseline.dlevel.classifier),
        ):
            summary = classifier.summary()
            print(
                f"  {label} misses: {summary['misses']} "
                f"(compulsory {summary['compulsory']}, capacity {summary['capacity']}, "
                f"conflict {summary['conflict']} = {summary['percent_conflict']:.0f}%)"
            )
    if daug is None and iaug is None:
        return 0
    improved = MemorySystem(config, iaugmentation=iaug, daugmentation=daug)
    improved_result = improved.run(trace)
    print("with the requested structures:")
    print(
        f"  I misses removed: {improved_result.istats.removed_misses}"
        f" of {improved_result.istats.demand_misses}"
    )
    print(
        f"  D misses removed: {improved_result.dstats.removed_misses}"
        f" of {improved_result.dstats.demand_misses}"
    )
    timing = config.timing
    base_perf = evaluate_performance(base_result, timing)
    improved_perf = evaluate_performance(improved_result, timing)
    print(
        f"  modelled speedup (24/320-cycle penalties): "
        f"{improved_perf.speedup_over(base_perf):.2f}x"
    )
    return 0


_COMMANDS = {
    "gen": _cmd_gen,
    "stats": _cmd_stats,
    "convert": _cmd_convert,
    "simulate": _cmd_simulate,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
