"""Trace objects: named, repeatable streams of memory references.

The paper's methodology is trace-driven simulation over six program
traces (Table 2-1).  A :class:`Trace` here is a *recipe*: metadata plus a
factory that produces a fresh iterator of ``(kind, byte_address)`` pairs
each time, so the same trace can be replayed across the dozens of
configurations an experiment sweeps.  :class:`MaterializedTrace` captures
one replay into flat lists for fast repeated simulation, including the
split instruction/data views most experiments need (the paper's L1
caches are split, and its figures treat the two sides independently).
"""

from __future__ import annotations

import hashlib
from array import array
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..common.errors import ConfigurationError
from ..common.types import Access, AccessKind

__all__ = ["TraceMeta", "TraceStats", "Trace", "MaterializedTrace", "trace_from_pairs"]

#: The compact representation used everywhere hot: (kind, byte_address).
Pair = Tuple[int, int]


def _line_shift(line_size: int) -> int:
    """Bit shift for a cache-line size, rejecting invalid sizes loudly.

    ``line_size.bit_length() - 1`` silently miscomputes the shift for
    non-power-of-two sizes (e.g. 24 -> shift 4, as if the line were
    16B), so anything but a positive power of two is a configuration
    error, matching :class:`~repro.common.config.CacheConfig`.
    """
    if line_size < 1 or line_size & (line_size - 1):
        raise ConfigurationError(
            f"line_size must be a positive power of two, got {line_size}"
        )
    return line_size.bit_length() - 1


@dataclass(frozen=True)
class TraceMeta:
    """Identity and provenance of a trace."""

    name: str
    #: Table 2-1 style description ("C compiler", "PC board CAD", ...).
    program_type: str = ""
    description: str = ""
    seed: int = 0
    #: Nominal instruction count the generator was asked for.
    scale: int = 0
    #: Canonical workload-spec JSON this trace was built from ("" for
    #: hand-made traces).  Lets :func:`repro.specs.workload_spec_of`
    #: recover a rebuildable spec from any materialized trace.
    source: str = ""


@dataclass
class TraceStats:
    """Reference counts in the shape of the paper's Table 2-1."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    #: References whose kind is none of IFETCH/LOAD/STORE (traces loaded
    #: from files may carry future or foreign kind codes).  Counting them
    #: keeps ``total_references`` equal to ``len(trace)`` always.
    other: int = 0

    @property
    def data_references(self) -> int:
        return self.loads + self.stores

    @property
    def total_references(self) -> int:
        return self.instructions + self.data_references + self.other

    @property
    def data_per_instruction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.data_references / self.instructions


class Trace:
    """A named, repeatable access trace built from a factory function."""

    def __init__(self, meta: TraceMeta, factory: Callable[[], Iterable[Pair]]):
        self.meta = meta
        self._factory = factory

    @property
    def name(self) -> str:
        return self.meta.name

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._factory())

    def accesses(self) -> Iterator[Access]:
        """Iterate as rich :class:`Access` objects (public-API view)."""
        for kind, address in self:
            yield Access(AccessKind(kind), address)

    def materialize(self) -> "MaterializedTrace":
        """Replay once into memory for fast repeated simulation.

        Returns a :class:`~repro.traces.packed.PackedTrace` — the same
        interface as :class:`MaterializedTrace` (it is a subclass) over
        packed array buffers — unless an address overflows the packed
        64-bit representation, in which case the list form is kept.
        """
        from .packed import PackedTrace

        try:
            return PackedTrace.from_pairs(self.meta, self)
        except OverflowError:
            return MaterializedTrace(self.meta, list(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.meta.name!r})"


class MaterializedTrace:
    """One replay of a trace, held as a flat list of ``(kind, addr)`` pairs.

    Split views are computed lazily and cached: experiments replay the
    same instruction or data stream against many cache configurations.
    """

    def __init__(self, meta: TraceMeta, pairs: List[Pair]):
        self.meta = meta
        self.pairs = pairs
        self._instruction_addresses: Optional[List[int]] = None
        self._data_addresses: Optional[List[int]] = None
        self._stats: Optional[TraceStats] = None
        self._fingerprint: Optional[str] = None

    @property
    def name(self) -> str:
        return self.meta.name

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)

    @property
    def instruction_addresses(self) -> List[int]:
        """Byte addresses of the instruction-fetch stream, in order."""
        if self._instruction_addresses is None:
            ifetch = int(AccessKind.IFETCH)
            self._instruction_addresses = [a for k, a in self.pairs if k == ifetch]
        return self._instruction_addresses

    @property
    def data_addresses(self) -> List[int]:
        """Byte addresses of the load/store stream, in order."""
        if self._data_addresses is None:
            ifetch = int(AccessKind.IFETCH)
            self._data_addresses = [a for k, a in self.pairs if k != ifetch]
        return self._data_addresses

    def stream(self, side: str) -> List[int]:
        """The 'i' or 'd' byte-address stream (experiment convenience)."""
        if side == "i":
            return self.instruction_addresses
        if side == "d":
            return self.data_addresses
        raise ValueError(f"side must be 'i' or 'd', got {side!r}")

    def stats(self) -> TraceStats:
        if self._stats is None:
            counts: Dict[int, int] = {}
            for kind, _ in self.pairs:
                counts[kind] = counts.get(kind, 0) + 1
            instructions = counts.get(int(AccessKind.IFETCH), 0)
            loads = counts.get(int(AccessKind.LOAD), 0)
            stores = counts.get(int(AccessKind.STORE), 0)
            self._stats = TraceStats(
                instructions=instructions,
                loads=loads,
                stores=stores,
                other=len(self.pairs) - instructions - loads - stores,
            )
        return self._stats

    def unique_lines(self, side: str, line_size: int) -> int:
        """Distinct cache lines touched by one side (footprint measure)."""
        shift = _line_shift(line_size)
        return len({addr >> shift for addr in self.stream(side)})

    def _content_buffers(self) -> Tuple[bytes, bytes]:
        """The trace's content as packed (kinds, addresses) byte buffers."""
        kinds = bytes(k for k, _ in self.pairs)
        addresses = array("q", (a for _, a in self.pairs))
        return kinds, addresses.tobytes()

    def fingerprint(self) -> str:
        """Short content hash over the packed (kind, address) buffers.

        Two traces with identical reference streams share a fingerprint
        regardless of how they were built (generator replay, file load,
        packed or list representation) — the identity the result store
        uses for content addressing.  Cached after the first call.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for buffer in self._content_buffers():
                digest.update(buffer)
            self._fingerprint = digest.hexdigest()[:16]
        return self._fingerprint


def trace_from_pairs(
    name: str,
    pairs: Iterable[Pair],
    program_type: str = "",
    description: str = "",
) -> MaterializedTrace:
    """Build a materialized trace directly from pairs (tests, file loads)."""
    meta = TraceMeta(name=name, program_type=program_type, description=description)
    return MaterializedTrace(meta, list(pairs))
