"""Packed trace buffers: array-backed replay storage and worker handoff.

A :class:`~repro.traces.trace.MaterializedTrace` holds one replay as a
Python list of ``(kind, address)`` tuples — convenient, but the single
largest memory cost of a sweep (three heap objects per reference) and
the single largest transfer cost when traces cross process boundaries:
pickling a list of tuples rebuilds every tuple and every int on the
other side, element by element.

:class:`PackedTrace` keeps the same interface (it *is* a
``MaterializedTrace``) over two flat buffers — kinds in an
``array('b')``, byte addresses in an ``array('q')`` — so a trace
serializes and deserializes as two contiguous memory blocks.  Pair
iteration is zero-copy (``zip`` over the buffers; no list of tuples is
ever materialized unless a legacy caller asks for ``.pairs``), split
streams are extracted with one vectorized numpy mask over zero-copy
buffer views (C-level ``bytes.translate`` + ``itertools.compress``
selection when numpy is unavailable), and kind counts come from
``array.count``.  The same views back the vectorized simulation
kernels: :meth:`PackedTrace.as_arrays` exposes the raw buffers as
read-only numpy arrays without copying, and
:meth:`PackedTrace.stream_array` caches the per-side address arrays
every kernel replay starts from.

For process pools, :func:`share_packed_traces` lays the buffers out in
:mod:`multiprocessing.shared_memory` segments and
:func:`attach_shared_trace` rebuilds a trace on the other side with one
``memcpy`` per buffer — so spawn-based platforms stop replaying the
synthetic generators once per worker (the dominant warm-up cost) and
fork-based ones can skip the handoff entirely (copy-on-write already
shares the parent's buffers).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from itertools import compress
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..common.types import AccessKind
from .trace import MaterializedTrace, Pair, TraceMeta, TraceStats


def _numpy():
    """numpy, or None — the packed representation works without it."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - depends on environment
        return None
    return numpy

__all__ = [
    "PackedTrace",
    "SharedTraceDescriptor",
    "share_packed_traces",
    "attach_shared_trace",
    "release_shared_segments",
]

#: ``bytes.translate`` tables mapping one kind byte to selector 1 and
#: everything else to 0 — C-speed per-side selection for ``compress``.
_SELECT_IFETCH = bytes(1 if i == int(AccessKind.IFETCH) else 0 for i in range(256))
_SELECT_DATA = bytes(0 if i == int(AccessKind.IFETCH) else 1 for i in range(256))


class PackedTrace(MaterializedTrace):
    """One replay held as packed (kinds, addresses) array buffers.

    Drop-in for :class:`MaterializedTrace`: every consumer-facing member
    (``stream``, ``stats``, ``unique_lines``, iteration, ``len``) works
    identically, and ``.pairs`` materializes the legacy list of tuples
    lazily for callers that still want it.  Iterating the trace itself
    is zero-copy: ``zip`` over the two buffers, no intermediate list.
    """

    def __init__(self, meta: TraceMeta, kinds: array, addresses: array):
        if len(kinds) != len(addresses):
            raise ValueError(
                f"kinds/addresses length mismatch: {len(kinds)} != {len(addresses)}"
            )
        self.meta = meta
        self._kinds = kinds
        self._addresses = addresses
        self._pairs: Optional[List[Pair]] = None
        self._instruction_addresses: Optional[List[int]] = None
        self._data_addresses: Optional[List[int]] = None
        self._stats: Optional[TraceStats] = None
        self._fingerprint: Optional[str] = None
        self._array_views = None
        self._stream_arrays: dict = {}

    @classmethod
    def from_pairs(cls, meta: TraceMeta, pairs: Iterable[Pair]) -> "PackedTrace":
        """Pack an iterable of ``(kind, address)`` pairs into buffers."""
        kinds = array("b")
        addresses = array("q")
        for kind, address in pairs:
            kinds.append(kind)
            addresses.append(address)
        return cls(meta, kinds, addresses)

    # -- representation ------------------------------------------------------

    @property
    def pairs(self) -> List[Pair]:  # type: ignore[override]
        """Legacy list-of-tuples view, materialized once on first use."""
        if self._pairs is None:
            self._pairs = list(zip(self._kinds.tolist(), self._addresses.tolist()))
        return self._pairs

    def __len__(self) -> int:
        return len(self._addresses)

    def __iter__(self) -> Iterator[Pair]:
        # Zero-copy pair iteration straight off the buffers.
        return zip(self._kinds, self._addresses)

    # -- derived views -------------------------------------------------------

    def as_arrays(self):
        """Read-only zero-copy numpy views of the packed buffers.

        Returns ``(kinds, addresses)`` — int8 and int64 arrays aliasing
        the trace's own memory, no copy.  Requires numpy (the ``fast``
        extra); the views are marked non-writeable so kernel code cannot
        mutate the trace through them.
        """
        import numpy as np

        if self._array_views is None:
            kinds = np.frombuffer(self._kinds, dtype=np.int8)
            addresses = np.frombuffer(self._addresses, dtype=np.int64)
            kinds.flags.writeable = False
            addresses.flags.writeable = False
            self._array_views = (kinds, addresses)
        return self._array_views

    def stream_array(self, side: str):
        """The 'i' or 'd' byte-address stream as a cached int64 array.

        One vectorized mask over the zero-copy views; the per-side array
        is cached (read-only) because experiments replay the same stream
        against many cache configurations.  Requires numpy.
        """
        cached = self._stream_arrays.get(side)
        if cached is None:
            if side not in ("i", "d"):
                raise ValueError(f"side must be 'i' or 'd', got {side!r}")
            kinds, addresses = self.as_arrays()
            ifetch = int(AccessKind.IFETCH)
            mask = (kinds == ifetch) if side == "i" else (kinds != ifetch)
            cached = addresses[mask]
            cached.flags.writeable = False
            self._stream_arrays[side] = cached
        return cached

    def _select(self, table: bytes) -> List[int]:
        if _numpy() is not None:
            # Vectorized mask; shares the cached per-side arrays with
            # the simulation kernels instead of building a second copy.
            return self.stream_array(
                "i" if table is _SELECT_IFETCH else "d"
            ).tolist()
        selectors = self._kinds.tobytes().translate(table)
        return list(compress(self._addresses, selectors))

    @property
    def instruction_addresses(self) -> List[int]:  # type: ignore[override]
        if self._instruction_addresses is None:
            self._instruction_addresses = self._select(_SELECT_IFETCH)
        return self._instruction_addresses

    @property
    def data_addresses(self) -> List[int]:  # type: ignore[override]
        if self._data_addresses is None:
            self._data_addresses = self._select(_SELECT_DATA)
        return self._data_addresses

    def stats(self) -> TraceStats:
        if self._stats is None:
            instructions = self._kinds.count(int(AccessKind.IFETCH))
            loads = self._kinds.count(int(AccessKind.LOAD))
            stores = self._kinds.count(int(AccessKind.STORE))
            self._stats = TraceStats(
                instructions=instructions,
                loads=loads,
                stores=stores,
                other=len(self._kinds) - instructions - loads - stores,
            )
        return self._stats

    def _content_buffers(self) -> Tuple[bytes, bytes]:
        return self._kinds.tobytes(), self._addresses.tobytes()

    # -- pickling ------------------------------------------------------------

    def __getstate__(self):
        """Pickle only the packed buffers, never the derived caches.

        A warmed trace accumulates rebuildable views — the legacy pairs
        list, per-side address lists, and the numpy arrays cached by
        :meth:`as_arrays`/:meth:`stream_array` (which pickle as *full
        int64 copies*, not views) — that can dwarf the packed buffers
        themselves.  Shipping them to workers or between a daemon and
        its clients would inflate exactly the payloads PackedTrace was
        built to shrink, so pickling drops every cache; the receiver
        rebuilds them lazily (read-only flags and all) on first use.
        The content fingerprint and reference counts are kept: they are
        tiny and expensive to recompute.
        """
        state = self.__dict__.copy()
        state["_pairs"] = None
        state["_instruction_addresses"] = None
        state["_data_addresses"] = None
        state["_array_views"] = None
        state["_stream_arrays"] = {}
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)


# -- shared-memory handoff ----------------------------------------------------

#: Segment layout: addresses first (8-byte aligned at offset 0), kinds after.
_ADDRESS_ITEMSIZE = array("q").itemsize


@dataclass(frozen=True)
class SharedTraceDescriptor:
    """Everything a worker needs to rebuild one trace from shared memory.

    ``memo_key`` is the per-process trace-memo key the engine uses — a
    :class:`~repro.specs.WorkloadSpec` (legacy descriptors carried a
    ``(name, scale, seed)`` tuple) — carried alongside so the worker can
    seed its memo without re-deriving it.
    """

    shm_name: str
    length: int
    meta: TraceMeta
    memo_key: object


def share_packed_traces(entries: Sequence[Tuple[object, PackedTrace]]):
    """Lay each packed trace out in one shared-memory segment.

    Returns ``(descriptors, segments)``; the caller owns the segments
    and must ``close()`` and ``unlink()`` them once every consumer has
    attached (workers copy out of the segment, so unlinking after the
    pool is warm is safe).  Raises on platforms without working shared
    memory — callers fall back to per-worker rebuilds.
    """
    from multiprocessing import shared_memory

    descriptors: List[SharedTraceDescriptor] = []
    segments = []
    try:
        for memo_key, trace in entries:
            kinds_bytes, address_bytes = trace._content_buffers()
            size = max(1, len(address_bytes) + len(kinds_bytes))
            segment = shared_memory.SharedMemory(create=True, size=size)
            segments.append(segment)
            segment.buf[: len(address_bytes)] = address_bytes
            segment.buf[len(address_bytes): len(address_bytes) + len(kinds_bytes)] = kinds_bytes
            descriptors.append(
                SharedTraceDescriptor(
                    shm_name=segment.name,
                    length=len(trace),
                    meta=trace.meta,
                    memo_key=memo_key,
                )
            )
    except Exception:
        # A mid-loop failure (ENOSPC on /dev/shm is the classic) must
        # unwind every segment already created: shared-memory names are
        # system-global and would otherwise leak past process exit.
        release_shared_segments(segments)
        raise
    return descriptors, segments


def attach_shared_trace(descriptor: SharedTraceDescriptor) -> PackedTrace:
    """Rebuild one packed trace from its shared-memory segment.

    The buffers are copied out (one ``memcpy`` each) and the segment is
    closed immediately, so the worker holds no shared-memory references
    afterwards — lifetime stays entirely with the creating process.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=descriptor.shm_name)
    try:
        split = descriptor.length * _ADDRESS_ITEMSIZE
        addresses = array("q")
        addresses.frombytes(bytes(segment.buf[:split]))
        kinds = array("b")
        kinds.frombytes(bytes(segment.buf[split: split + descriptor.length]))
    finally:
        segment.close()
    return PackedTrace(descriptor.meta, kinds, addresses)


def release_shared_segments(segments) -> None:
    """Close and unlink segments, ignoring already-released ones.

    ``close`` and ``unlink`` fail independently: a mapping error on
    close must not leave the segment name registered in ``/dev/shm``
    (the leak that matters — names outlive the process), so each call
    gets its own guard instead of one shared try block.
    """
    for segment in segments:
        try:
            segment.close()
        except (FileNotFoundError, OSError):  # pragma: no cover - cleanup race
            pass
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - cleanup race
            pass
