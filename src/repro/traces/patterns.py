"""Reference-pattern building blocks for the synthetic workloads.

The paper's traces are proprietary DEC WRL recordings, so the six
benchmarks are reproduced as *synthetic programs* assembled from the
access-pattern classes the paper itself analyses:

* instruction streams: straight-line runs, tight loops, and a
  procedure-call fabric (the paper explains instruction conflict misses
  via procedure call overlap, §3.1, and instruction stream-buffer wins
  via long sequential procedure bodies, §4.4);
* data streams: unit-stride sweeps (linpack's saxpy, §4.1), interleaved
  multi-array streams (liver, §4.2), tightly alternating conflicting
  references (the character-string comparison of §3.1), random
  working-set references, pointer chases, and stack traffic.

All generators are infinite unless documented otherwise; the phase
interleaver (:func:`interleave_phase`) draws as many references as a
phase needs.  Everything is driven by an explicit ``random.Random`` so
traces are exactly reproducible from a seed.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..common.types import AccessKind

__all__ = [
    "straight_code",
    "loop_code",
    "loop_calling_helper",
    "alternate_code",
    "ProcedureFabric",
    "stride_stream",
    "interleaved_streams",
    "string_compare",
    "conflicting_streams",
    "random_working_set",
    "pointer_chase",
    "stack_traffic",
    "bursty",
    "mix",
    "Phase",
    "run_phases",
]

Pair = Tuple[int, int]

_IFETCH = int(AccessKind.IFETCH)
_LOAD = int(AccessKind.LOAD)
_STORE = int(AccessKind.STORE)


# ---------------------------------------------------------------------------
# instruction-stream building blocks
# ---------------------------------------------------------------------------

def straight_code(base: int, count: int, instr_size: int = 4) -> Iterator[int]:
    """A finite straight-line run of *count* instruction addresses."""
    return iter(range(base, base + count * instr_size, instr_size))


def loop_code(base: int, body_instrs: int, instr_size: int = 4) -> Iterator[int]:
    """An infinite tight loop over *body_instrs* instructions.

    This is the instruction stream of linpack and the Livermore loops:
    a body small enough to live in any first-level I-cache, hence the
    0.000 instruction miss rates in Table 2-2.
    """
    body = range(base, base + body_instrs * instr_size, instr_size)
    return itertools.cycle(body)


@dataclass(frozen=True)
class _Procedure:
    base: int
    instrs: int


class ProcedureFabric:
    """Infinite instruction stream from a synthetic call graph.

    Procedures of geometrically distributed length are scattered across a
    *code_span*-byte text segment.  Execution walks the current procedure
    sequentially; each instruction may call another procedure
    (probability *call_prob*, biased toward a hot subset), may loop back
    within the body (*loop_prob*, looping *loop_iters* times on average),
    and returns to its caller at the end of the body.  Footprints larger
    than the I-cache produce capacity misses; call targets that overlap
    the caller modulo the cache size produce exactly the conflict misses
    §3.1 describes.
    """

    def __init__(
        self,
        rng: random.Random,
        num_procedures: int = 64,
        mean_proc_instrs: int = 96,
        code_span: int = 64 * 1024,
        call_prob: float = 0.02,
        loop_prob: float = 0.01,
        loop_iters: int = 8,
        hot_count: int = 8,
        hot_bias: float = 0.7,
        hot_aligned: int = 0,
        skip_prob: float = 0.0,
        skip_max: int = 8,
        layout: str = "scattered",
        code_base: int = 0,
        max_depth: int = 24,
        instr_size: int = 4,
    ):
        if num_procedures < 1:
            raise ValueError("num_procedures must be >= 1")
        if layout not in ("scattered", "packed"):
            raise ValueError(f"layout must be 'scattered' or 'packed', got {layout!r}")
        self._rng = rng
        self._instr_size = instr_size
        self._call_prob = call_prob
        self._loop_prob = loop_prob
        self._loop_iters = loop_iters
        self._hot_bias = hot_bias
        self._skip_prob = skip_prob
        self._skip_max = max(2, skip_max)
        self._max_depth = max_depth
        self.procedures: List[_Procedure] = []
        # "packed" lays procedures out back to back the way a linker
        # does, so the text footprint is exactly the sum of the bodies;
        # "scattered" places them at random bases within *code_span*
        # (bodies may share bytes), modelling a sparse sampled footprint.
        next_packed_base = code_base
        for _ in range(num_procedures):
            length = max(8, int(rng.expovariate(1.0 / mean_proc_instrs)))
            if layout == "packed":
                base = next_packed_base
                next_packed_base += (length + 4) * instr_size
            else:
                base = code_base + rng.randrange(0, max(instr_size, code_span - length * instr_size))
                base -= base % instr_size
            self.procedures.append(_Procedure(base, length))
        # The hot subset is the *active* working set: keeping it small
        # enough to fit a 4KB fully-associative shadow while its members
        # collide modulo the cache size is what turns call alternation
        # into conflict (rather than capacity) instruction misses.
        self._hot = self.procedures[: max(1, min(hot_count, num_procedures))]
        if hot_aligned:
            # Rebase the first *hot_aligned* hot procedures to the same
            # offset within distinct 4KB frames, so a called procedure
            # "may map anywhere with respect to the calling procedure,
            # possibly resulting in a large overlap" (§3.1): here the
            # overlap is certain, giving the widely spaced instruction
            # conflict misses the paper describes.
            frames = max(hot_aligned, code_span // 4096)
            chosen = rng.sample(range(frames), min(hot_aligned, len(self._hot)))
            realigned = []
            for frame, proc in zip(chosen, self._hot):
                base = code_base + frame * 4096 + rng.randrange(32) * instr_size
                realigned.append(_Procedure(base, proc.instrs))
            self._hot[: len(realigned)] = realigned
            self.procedures[: len(realigned)] = realigned

    def _pick_callee(self) -> _Procedure:
        pool = self._hot if self._rng.random() < self._hot_bias else self.procedures
        return self._rng.choice(pool)

    def __iter__(self) -> Iterator[int]:
        rng = self._rng
        isize = self._instr_size
        stack: List[Tuple[_Procedure, int]] = []
        proc = self._pick_callee()
        offset = 0
        # (start, end, remaining_iterations) of the innermost active loop;
        # the backward branch lives at *end* and jumps back to *start*.
        loop: Optional[Tuple[int, int, int]] = None
        while True:
            yield proc.base + offset * isize
            roll = rng.random()
            if roll < self._call_prob and len(stack) < self._max_depth:
                stack.append((proc, min(offset + 1, proc.instrs - 1)))
                proc = self._pick_callee()
                offset = 0
                loop = None
                continue
            if (
                loop is None
                and self._call_prob <= roll < self._call_prob + self._loop_prob
                and offset > 4
            ):
                start = rng.randrange(max(0, offset - 32), offset)
                iterations = 1 + rng.randrange(self._loop_iters * 2)
                loop = (start, offset, iterations)
            if loop is not None and offset >= loop[1]:
                start, end, remaining = loop
                remaining -= 1
                if remaining > 0:
                    loop = (start, end, remaining)
                    offset = start
                    continue
                loop = None
            offset += 1
            if self._skip_prob and rng.random() < self._skip_prob:
                # A taken forward branch: skips a few instructions,
                # breaking the purely sequential fetch pattern the way
                # real control flow does (bounds Figure 4-3's I-side).
                offset += rng.randrange(2, self._skip_max)
            if offset >= proc.instrs:
                if stack:
                    proc, offset = stack.pop()
                else:
                    proc = self._pick_callee()
                    offset = 0
                loop = None


def loop_calling_helper(
    loop_base: int,
    helper_base: int,
    loop_instrs: int = 40,
    helper_instrs: int = 24,
    instr_size: int = 4,
) -> Iterator[int]:
    """§3.2's victim-cache showcase: an inner loop calling a procedure
    that conflicts with the loop body.

    Each iteration runs the first half of the loop, calls the helper,
    then finishes the loop.  When ``helper_base`` is congruent to
    ``loop_base`` modulo the cache size, the overlapping lines trade
    places every iteration: a miss cache (loaded with the requested
    line) thrashes, while a victim cache captures the alternation —
    "the number of conflicts in the loop that can be captured is
    doubled" because one set of lines lives in the cache and the other
    in the victim cache.
    """
    call_site = loop_instrs // 2
    first_half = range(loop_base, loop_base + call_site * instr_size, instr_size)
    second_half = range(
        loop_base + call_site * instr_size, loop_base + loop_instrs * instr_size, instr_size
    )
    helper = range(helper_base, helper_base + helper_instrs * instr_size, instr_size)
    while True:
        yield from first_half
        yield from helper
        yield from second_half


def alternate_code(
    rng: random.Random,
    primary: Iterable[int],
    secondary: Iterable[int],
    mean_primary_run: int,
    mean_secondary_run: int,
) -> Iterator[int]:
    """Alternate between two code streams in geometric-length runs.

    Code cannot be mixed per-instruction the way data can — fetch runs
    must stay coherent — so phases of the two streams alternate, e.g. a
    parser's table-walking inner loop interspersed with excursions into
    the procedure fabric.
    """
    primary_iter = iter(primary)
    secondary_iter = iter(secondary)
    while True:
        for _ in range(1 + int(rng.expovariate(1.0 / mean_primary_run))):
            yield next(primary_iter)
        for _ in range(1 + int(rng.expovariate(1.0 / mean_secondary_run))):
            yield next(secondary_iter)


# ---------------------------------------------------------------------------
# data-stream building blocks
# ---------------------------------------------------------------------------

def stride_stream(base: int, extent_bytes: int, stride: int, offset: int = 0) -> Iterator[int]:
    """Infinite unit-or-larger-stride sweep over ``[base, base+extent)``.

    Wraps around at the end of the extent — the repeated passes over a
    matrix that let linpack stream the whole array through the cache on
    every iteration (§4.1).
    """
    if stride <= 0:
        raise ValueError("stride must be positive")
    position = offset % extent_bytes
    while True:
        yield base + position
        position += stride
        if position >= extent_bytes:
            position -= extent_bytes


def interleaved_streams(streams: Sequence[Iterator[int]]) -> Iterator[int]:
    """Round-robin interleave of several address streams (§4.2's pattern)."""
    if not streams:
        raise ValueError("need at least one stream")
    iterators = [iter(s) for s in streams]
    for iterator in itertools.cycle(iterators):
        yield next(iterator)


def string_compare(
    base_a: int,
    base_b: int,
    length_bytes: int,
    element: int = 1,
) -> Iterator[int]:
    """The §3.1 worst case: two strings compared byte by byte.

    If the comparison points map to the same cache line, the alternating
    references miss on every access in a direct-mapped cache, and a
    two-entry miss cache (or one-entry victim cache) removes all of them.
    The stream restarts from the string heads when it reaches the end.
    """
    while True:
        for offset in range(0, length_bytes, element):
            yield base_a + offset
            yield base_b + offset


def conflicting_streams(
    bases: Sequence[int],
    extent_bytes: int,
    stride: int,
) -> Iterator[int]:
    """Several arrays walked in lockstep at the same offset.

    When the bases are congruent modulo the cache size every access set
    collides in the same line — the tight clustered conflicts that make
    *met* the biggest miss-cache winner in Figure 3-3.
    """
    if not bases:
        raise ValueError("need at least one base")
    offset = 0
    while True:
        for base in bases:
            yield base + offset
        offset += stride
        if offset >= extent_bytes:
            offset = 0


def random_working_set(
    rng: random.Random,
    base: int,
    working_set_bytes: int,
    granule: int = 4,
) -> Iterator[int]:
    """Uniform random references within a working set (capacity traffic)."""
    slots = max(1, working_set_bytes // granule)
    while True:
        yield base + rng.randrange(slots) * granule


def pointer_chase(
    rng: random.Random,
    base: int,
    num_nodes: int,
    node_size: int = 32,
    fields_per_visit: int = 2,
) -> Iterator[int]:
    """Walk a randomly linked cyclic structure, touching a few fields.

    Models the pointer-heavy symbol-table and IR traversals of a C
    compiler: poor spatial locality, working set set by *num_nodes*.
    """
    order = list(range(num_nodes))
    rng.shuffle(order)
    while True:
        for node in order:
            node_base = base + node * node_size
            for field in range(fields_per_visit):
                yield node_base + (field * 8) % node_size


def stack_traffic(
    rng: random.Random,
    base: int,
    frame_bytes: int = 96,
    depth_frames: int = 16,
    granule: int = 4,
) -> Iterator[int]:
    """References near a randomly wandering stack pointer.

    High locality: the hot frames fit comfortably in the cache, diluting
    the miss rate the way real programs' stack traffic does.
    """
    depth = depth_frames // 2
    while True:
        move = rng.random()
        if move < 0.15 and depth < depth_frames - 1:
            depth += 1
        elif move < 0.30 and depth > 0:
            depth -= 1
        frame_base = base + depth * frame_bytes
        yield frame_base + rng.randrange(frame_bytes // granule) * granule


def bursty(
    rng: random.Random,
    background: Iterable[int],
    burst_region_base: int,
    burst_region_bytes: int,
    burst_prob: float,
    burst_bytes: int = 512,
    stride: int = 4,
) -> Iterator[int]:
    """Background traffic with occasional uninterrupted sequential bursts.

    Models block operations (structure copies, buffer clears, bcopy)
    that punctuate scalar code: each burst is a contiguous unit-stride
    run through a fresh slice of a large region, which is exactly the
    widely-spaced sequential miss pattern a *single* stream buffer can
    follow (§4.1) — unlike the interleaved streams of numeric code.

    *burst_prob* is the per-reference probability of starting a burst of
    ``burst_bytes / stride`` consecutive references.
    """
    background_iter = iter(background)
    cursor = 0
    while True:
        if rng.random() < burst_prob:
            for offset in range(0, burst_bytes, stride):
                yield burst_region_base + (cursor + offset) % burst_region_bytes
            cursor = (cursor + burst_bytes) % burst_region_bytes
        else:
            yield next(background_iter)


def mix(
    rng: random.Random,
    streams: Sequence[Iterator[int]],
    weights: Sequence[float],
) -> Iterator[int]:
    """Choose the next reference from one of *streams* by weight."""
    if len(streams) != len(weights) or not streams:
        raise ValueError("streams and weights must be non-empty and equal length")
    iterators = [iter(s) for s in streams]
    cumulative: List[float] = []
    total = 0.0
    for weight in weights:
        if weight < 0:
            raise ValueError("weights must be non-negative")
        total += weight
        cumulative.append(total)
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    while True:
        roll = rng.random() * total
        for iterator, bound in zip(iterators, cumulative):
            if roll < bound:
                yield next(iterator)
                break


# ---------------------------------------------------------------------------
# phase interleaving
# ---------------------------------------------------------------------------

@dataclass
class Phase:
    """One program phase: a code stream, a data stream, and mix ratios."""

    name: str
    instructions: int
    code: Iterable[int]
    data: Iterable[int]
    #: Average data references issued per instruction (Table 2-1 ratio).
    data_per_instr: float
    #: Fraction of data references that are stores.
    store_fraction: float = 0.3


def interleave_phase(phase: Phase, rng: random.Random) -> Iterator[Pair]:
    """Merge a phase's code and data streams into one access sequence.

    Data references are paced by a deterministic credit accumulator so
    the Table 2-1 data/instruction ratio is hit exactly; only the
    load/store choice consumes randomness.
    """
    code = iter(phase.code)
    data = iter(phase.data)
    credit = 0.0
    for _ in range(phase.instructions):
        yield (_IFETCH, next(code))
        credit += phase.data_per_instr
        while credit >= 1.0:
            credit -= 1.0
            kind = _STORE if rng.random() < phase.store_fraction else _LOAD
            yield (kind, next(data))


def run_phases(phases: Sequence[Phase], rng: random.Random) -> Iterator[Pair]:
    """Run phases back to back (a whole synthetic program execution)."""
    for phase in phases:
        yield from interleave_phase(phase, rng)
