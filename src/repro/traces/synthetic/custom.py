"""User-configurable synthetic workloads.

The six Table 2-1 generators are fixed calibrations; this module exposes
the same pattern library through a handful of intuitive knobs so a
downstream user can model *their* program and ask the paper's questions
about it ("would a victim cache help a workload shaped like mine?").

::

    from repro.traces.synthetic.custom import CustomWorkload

    trace = CustomWorkload(
        name="my-db",
        instructions=100_000,
        code_footprint=48 * 1024,   # working text set
        call_intensity=0.5,         # procedure-call heaviness, 0..1
        sequential_fraction=0.15,   # streaming data (log scans)
        conflict_fraction=0.05,     # tight alternating conflicts
        pointer_fraction=0.25,      # pointer chasing (B-tree walks)
        data_working_set=256 * 1024,
    ).build().materialize()

Every knob maps onto the pattern primitives of
:mod:`repro.traces.patterns`; anything not claimed by the explicit
fractions becomes high-locality stack/scalar traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ...common.errors import ConfigurationError
from ..patterns import (
    Phase,
    ProcedureFabric,
    conflicting_streams,
    loop_code,
    mix,
    pointer_chase,
    run_phases,
    stack_traffic,
    stride_stream,
)
from ..trace import Trace, TraceMeta

__all__ = ["CustomWorkload"]

#: Address-space layout for custom workloads, staggered mod 4KB and mod
#: 1MB like the calibrated benchmarks.
_CODE_BASE = 0x0040_0000 + 18 * 4096
_STREAM_BASE = 0x8000_0000
_CONFLICT_BASE = 0x8100_0000 + 33 * 4096 + 1024
_HEAP_BASE = 0x8200_0000 + 66 * 4096 + 2048
_STACK_BASE = 0x8F00_0000 + 99 * 4096 + 3072


@dataclass
class CustomWorkload:
    """A parameterized synthetic program; ``build()`` yields a Trace."""

    name: str = "custom"
    instructions: int = 60_000
    data_per_instr: float = 0.4
    store_fraction: float = 0.3
    #: Dynamic text working set in bytes; <= 2KB degenerates to a loop.
    code_footprint: int = 32 * 1024
    #: 0 (straight loops) .. 1 (call-dominated); sets the call rate.
    call_intensity: float = 0.4
    #: Data mix fractions; the remainder is stack/scalar locality.
    sequential_fraction: float = 0.2
    conflict_fraction: float = 0.05
    pointer_fraction: float = 0.15
    #: Extent of the streamed / pointer-chased data, in bytes.
    data_working_set: int = 128 * 1024
    seed: int = 0
    #: Cache size (bytes) whose sets the conflict pattern should collide
    #: in; defaults to the paper's 4KB L1.
    conflict_cache_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.instructions < 1:
            raise ConfigurationError("instructions must be >= 1")
        if not 0.0 <= self.call_intensity <= 1.0:
            raise ConfigurationError("call_intensity must be in [0, 1]")
        fractions = (
            self.sequential_fraction,
            self.conflict_fraction,
            self.pointer_fraction,
        )
        if any(f < 0 for f in fractions) or sum(fractions) > 1.0:
            raise ConfigurationError(
                "data fractions must be non-negative and sum to <= 1"
            )
        if self.data_per_instr < 0:
            raise ConfigurationError("data_per_instr must be >= 0")
        if self.data_working_set < 1024:
            raise ConfigurationError("data_working_set must be >= 1KB")

    # -- stream assembly ---------------------------------------------------------

    def _code(self, rng: random.Random) -> Iterator[int]:
        if self.code_footprint <= 2048 or self.call_intensity == 0.0:
            return loop_code(_CODE_BASE, body_instrs=max(8, self.code_footprint // 8))
        procedures = max(4, self.code_footprint // 400)
        return iter(
            ProcedureFabric(
                rng,
                num_procedures=procedures,
                mean_proc_instrs=96,
                code_span=self.code_footprint,
                call_prob=0.005 + 0.055 * self.call_intensity,
                loop_prob=0.012,
                hot_count=max(2, procedures // 8),
                hot_bias=0.9 - 0.5 * self.call_intensity,
                skip_prob=0.03,
                layout="packed",
                code_base=_CODE_BASE,
            )
        )

    def _data(self, rng: random.Random) -> Iterator[int]:
        conflict_pair = (
            _CONFLICT_BASE,
            _CONFLICT_BASE + 5 * self.conflict_cache_bytes,
        )
        streams = [
            stride_stream(_STREAM_BASE, self.data_working_set, 4),
            conflicting_streams(conflict_pair, 1024, stride=4),
            pointer_chase(
                rng,
                _HEAP_BASE,
                num_nodes=max(16, self.data_working_set // 32),
                node_size=32,
            ),
            stack_traffic(rng, _STACK_BASE, frame_bytes=96, depth_frames=10),
        ]
        rest = 1.0 - (
            self.sequential_fraction + self.conflict_fraction + self.pointer_fraction
        )
        weights = [
            self.sequential_fraction,
            self.conflict_fraction,
            self.pointer_fraction,
            rest,
        ]
        # mix() rejects all-zero weights; guarantee a tiny floor on the
        # stack component so degenerate configs still run.
        if weights[3] <= 0:
            weights[3] = 1e-9
        return mix(rng, streams, weights)

    # -- public API ----------------------------------------------------------------

    def build(self) -> Trace:
        """Build the trace recipe for this configuration."""

        def factory():
            rng = random.Random(self.seed)
            phase = Phase(
                name=self.name,
                instructions=self.instructions,
                code=self._code(rng),
                data=self._data(rng),
                data_per_instr=self.data_per_instr,
                store_fraction=self.store_fraction,
            )
            return run_phases([phase], rng)

        meta = TraceMeta(
            name=self.name,
            program_type="custom",
            description=(
                f"custom workload: code {self.code_footprint}B, "
                f"seq {self.sequential_fraction:.2f} / confl {self.conflict_fraction:.2f} / "
                f"ptr {self.pointer_fraction:.2f}, ws {self.data_working_set}B"
            ),
            seed=self.seed,
            scale=self.instructions,
        )
        return Trace(meta, factory)
