"""Synthetic *yacc* — the Unix parser generator (Table 2-1).

yacc is table driven: a compact LALR automaton loop probes action and
goto tables, scans its input grammar sequentially, and pushes/pops a
state stack.  Table 2-2 gives it low miss rates (0.028 instruction,
0.040 data) — the hot loop and tables mostly fit — but Figure 3-1 shows
an above-average *conflict* share, which the paper attributes to a few
structures (here: the state stack and the value stack) landing on the
same cache lines.

Model: a compact, strongly-biased procedure fabric for code; data mixing
random table probes, a sequential grammar scan, lock-step references to
two conflicting stacks, and ordinary stack traffic.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..patterns import (
    Phase,
    ProcedureFabric,
    alternate_code,
    bursty,
    conflicting_streams,
    loop_calling_helper,
    mix,
    random_working_set,
    run_phases,
    stack_traffic,
    stride_stream,
)
from ..trace import Trace, TraceMeta

__all__ = ["build", "PROGRAM_TYPE", "DATA_PER_INSTR"]

PROGRAM_TYPE = "Unix utility"
#: Table 2-1: 16.7M data refs / 51.0M instructions.
DATA_PER_INSTR = 0.327

_CODE_SPAN = 48 * 1024
# Distinct mod-4KB offsets per region; only the two parser stacks conflict.
_TABLE_BASE = 0x5000_0000
_INPUT_BASE = 0x5100_0000 + 43 * 4096 + 1344
_STACK_BASE = 0x5F00_0000 + 172 * 4096 + 3328

_TABLE_BYTES = 6 * 1024
_INPUT_BYTES = 128 * 1024

#: State stack and value stack 3 x 4KB apart — pushed in lock step, so
#: their tops collide in the 4KB baseline cache.
_CONFLICT_BASES = (0x5200_0000 + 86 * 4096 + 2048, 0x5200_0000 + 86 * 4096 + 2048 + 3 * 4096)
_CONFLICT_EXTENT = 768

_WEIGHT_TABLE = 0.016
_WEIGHT_INPUT = 0.011
_WEIGHT_CONFLICT = 0.015
_WEIGHT_STACK = 0.958

#: Per-reference probability of a grammar-action copy burst.
_BURST_PROB = 0.0005
_BURST_BYTES = 320


def _data(rng: random.Random) -> Iterator[int]:
    streams = [
        random_working_set(rng, _TABLE_BASE, _TABLE_BYTES, granule=4),
        stride_stream(_INPUT_BASE, _INPUT_BYTES, 4),
        conflicting_streams(_CONFLICT_BASES, _CONFLICT_EXTENT, stride=4),
        stack_traffic(rng, _STACK_BASE, frame_bytes=80, depth_frames=8),
    ]
    weights = [_WEIGHT_TABLE, _WEIGHT_INPUT, _WEIGHT_CONFLICT, _WEIGHT_STACK]
    background = mix(rng, streams, weights)
    return bursty(rng, background, 0x5300_0000 + 129 * 4096 + 512, 128 * 1024, _BURST_PROB, _BURST_BYTES)


def build(scale: int, seed: int = 0) -> Trace:
    """Build the yacc trace with about *scale* instructions."""

    def factory():
        rng = random.Random(seed)
        fabric = ProcedureFabric(
            rng,
            num_procedures=40,
            mean_proc_instrs=90,
            code_span=_CODE_SPAN,
            call_prob=0.011,
            loop_prob=0.02,
            loop_iters=10,
            hot_count=10,
            hot_bias=0.88,
            skip_prob=0.03,
            layout="packed",
            code_base=0x000D_0000,
        )
        # The LALR shift/reduce loop calls the lexer, which the linker
        # happened to place a cache-size multiple away (SS3.2's pattern):
        # their lines trade places every iteration.
        # Helper overlaps the tail two lines of the loop body only, so
        # each iteration swaps a couple of line pairs (a one-entry victim
        # cache already helps; a four-entry one removes nearly all).
        parse_loop = loop_calling_helper(
            loop_base=0x000D_0000 + _CODE_SPAN + 0x9000,
            helper_base=0x000D_0000 + _CODE_SPAN + 0x9000 + 2 * 4096 + 128,
            loop_instrs=36,
            helper_instrs=20,
        )
        code = alternate_code(rng, parse_loop, fabric, mean_primary_run=450, mean_secondary_run=4500)
        phases = [
            Phase(
                name="parse",
                instructions=scale,
                code=code,
                data=_data(rng),
                data_per_instr=DATA_PER_INSTR,
                store_fraction=0.26,
            )
        ]
        return run_phases(phases, rng)

    meta = TraceMeta(
        name="yacc",
        program_type=PROGRAM_TYPE,
        description="table-driven LALR parsing with conflicting state/value stacks",
        seed=seed,
        scale=scale,
    )
    return Trace(meta, factory)
