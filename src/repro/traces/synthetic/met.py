"""Synthetic *met* — PC board CAD timing verifier (Table 2-1).

met is the paper's star miss-cache customer: it has the lowest overall
miss rates of the CAD pair (0.017 instruction, 0.039 data) but "by far
the highest ratio of conflict misses to total data cache misses"
(Figure 3-1, §3.1), and correspondingly the largest fraction of its
misses removed by small miss/victim caches (Figure 3-3).  The paper's
explanation is tight alternation between a handful of addresses that map
to the same line.

Model: a small, hot instruction fabric; data dominated by high-locality
traffic (keeping the overall rate low) plus two tight conflict
generators — a pair of structures walked in lock step and a §3.1-style
string comparison — whose operands collide in the 4KB cache.  A thin
streaming component supplies the compulsory floor.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..patterns import (
    Phase,
    ProcedureFabric,
    alternate_code,
    conflicting_streams,
    loop_calling_helper,
    mix,
    run_phases,
    stack_traffic,
    string_compare,
    stride_stream,
)
from ..trace import Trace, TraceMeta

__all__ = ["build", "PROGRAM_TYPE", "DATA_PER_INSTR"]

PROGRAM_TYPE = "PC board CAD"
#: Table 2-1: 50.3M data refs / 99.4M instructions.
DATA_PER_INSTR = 0.506

_CODE_SPAN = 64 * 1024
# Distinct mod-4KB offsets per region; the net pair and string pair
# are the deliberate conflicts.
_NET_BASE = 0x6000_0000
_DELAY_BASE = 0x6100_0000 + 47 * 4096 + 2048
_STACK_BASE = 0x6F00_0000 + 141 * 4096 + 3232

#: Net list and its shadow timing array, 9 x 4KB apart: every lock-step
#: pair of references collides in the baseline cache.
_CONFLICT_BASES = (_NET_BASE, _NET_BASE + 9 * 4096)
_CONFLICT_EXTENT = 896

_STRING_A = 0x6200_0000 + 94 * 4096 + 1024
_STRING_B = _STRING_A + 11 * 4096

_WEIGHT_CONFLICT = 0.026
_WEIGHT_STRINGS = 0.004
_WEIGHT_SCAN = 0.012
_WEIGHT_STACK = 0.958


def _data(rng: random.Random) -> Iterator[int]:
    streams = [
        conflicting_streams(_CONFLICT_BASES, _CONFLICT_EXTENT, stride=4),
        string_compare(_STRING_A, _STRING_B, length_bytes=128),
        stride_stream(_DELAY_BASE, 160 * 1024, 8),
        stack_traffic(rng, _STACK_BASE, frame_bytes=64, depth_frames=8),
    ]
    weights = [_WEIGHT_CONFLICT, _WEIGHT_STRINGS, _WEIGHT_SCAN, _WEIGHT_STACK]
    return mix(rng, streams, weights)


def build(scale: int, seed: int = 0) -> Trace:
    """Build the met trace with about *scale* instructions."""

    def factory():
        rng = random.Random(seed)
        fabric = ProcedureFabric(
            rng,
            num_procedures=32,
            mean_proc_instrs=100,
            code_span=_CODE_SPAN,
            call_prob=0.004,
            loop_prob=0.02,
            loop_iters=12,
            hot_count=8,
            hot_bias=0.95,
            skip_prob=0.03,
            layout="packed",
            code_base=0x000C_0000,
        )
        # The per-net verification loop calls a delay-model helper that
        # collides with the loop body (SS3.2's inner-loop pattern).
        verify_loop = loop_calling_helper(
            loop_base=0x000C_0000 + _CODE_SPAN + 0x5000,
            helper_base=0x000C_0000 + _CODE_SPAN + 0x5000 + 3 * 4096 + 96,
            loop_instrs=32,
            helper_instrs=18,
        )
        code = alternate_code(rng, verify_loop, fabric, mean_primary_run=320, mean_secondary_run=7500)
        phases = [
            Phase(
                name="verify",
                instructions=scale,
                code=code,
                data=_data(rng),
                data_per_instr=DATA_PER_INSTR,
                store_fraction=0.28,
            )
        ]
        return run_phases(phases, rng)

    meta = TraceMeta(
        name="met",
        program_type=PROGRAM_TYPE,
        description="timing verifier: tight alternating conflicts over hot data",
        seed=seed,
        scale=scale,
    )
    return Trace(meta, factory)
