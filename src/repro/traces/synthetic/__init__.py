"""Synthetic reproductions of the paper's six benchmark traces.

The original traces are proprietary DEC WRL recordings; each module here
builds a deterministic synthetic equivalent from the access-pattern
classes the paper describes.  See DESIGN.md §2 for the substitution
rationale and the per-benchmark docstrings for the modelling choices.
"""

from . import ccom, custom, grr, linpack, liver, matcol, met, yacc
from .custom import CustomWorkload

__all__ = ["ccom", "custom", "CustomWorkload", "grr", "linpack", "liver", "matcol", "met", "yacc"]
