"""Synthetic *liver* — the Livermore Fortran kernels (Table 2-1).

The paper notes that liver's 14 loops execute sequentially, rarely call
procedures, and stream several arrays at once; that is why its
instruction misses are essentially zero, its single-stream-buffer data
benefit is small (7%) but jumps to 60% with a four-way buffer (§4.2):
the interleaved array streams flush a single buffer, while four buffers
can follow them concurrently.  Its data miss rate (0.273, the highest in
Table 2-2) comes from kernels whose combined array extents dwarf a 4KB
cache.

Each synthetic kernel phase runs a distinct small instruction loop and
interleaves unit-stride sweeps over two to four 8-byte-element arrays,
with a sprinkle of resident scalar references to temper the rate.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from ..patterns import (
    Phase,
    interleaved_streams,
    loop_code,
    mix,
    run_phases,
    stride_stream,
)
from ..trace import Trace, TraceMeta

__all__ = ["build", "PROGRAM_TYPE", "DATA_PER_INSTR", "NUM_KERNELS"]

PROGRAM_TYPE = "LFK (numeric)"
#: Table 2-1: 7.4M data refs / 23.6M instructions.
DATA_PER_INSTR = 0.314

NUM_KERNELS = 14

_CODE_BASE = 0x0020_0000 + 44 * 4096
_DATA_BASE = 0x2000_0000
_SCALAR_BASE = 0x2F00_0000 + 59 * 4096 + 3584

_ELEM = 8
#: Number of streamed arrays per kernel, cycled k mod len — two to four
#: interleaved streams, matching the paper's "interleaved data reference
#: streams" description of array operations.
_STREAMS_PER_KERNEL = [3, 2, 4, 3, 2, 4, 3, 3, 2, 4, 2, 3, 4, 3]
_ARRAY_BYTES = 48 * 1024
#: Fraction of data references that go to resident scalars/constants.
_SCALAR_WEIGHT = 0.45


def _kernel_data(rng: random.Random, kernel: int) -> Iterator[int]:
    num_streams = _STREAMS_PER_KERNEL[kernel % len(_STREAMS_PER_KERNEL)]
    streams: List[Iterator[int]] = []
    for s in range(num_streams):
        # Stagger bases by 65 lines so lock-step streams do not all
        # collide in the same cache set (real arrays are not page aligned).
        base = _DATA_BASE + (kernel * 8 + s) * _ARRAY_BYTES + s * 1040
        streams.append(stride_stream(base, _ARRAY_BYTES, _ELEM))
    arrays = interleaved_streams(streams)
    scalars = stride_stream(_SCALAR_BASE, 256, _ELEM)
    return mix(rng, [arrays, scalars], [1.0 - _SCALAR_WEIGHT, _SCALAR_WEIGHT])


def build(scale: int, seed: int = 0) -> Trace:
    """Build the liver trace with about *scale* instructions."""

    def factory():
        rng = random.Random(seed)
        per_kernel = max(1, scale // NUM_KERNELS)
        phases = []
        for kernel in range(NUM_KERNELS):
            phases.append(
                Phase(
                    name=f"kernel_{kernel + 1}",
                    instructions=per_kernel,
                    code=loop_code(_CODE_BASE + kernel * 512, body_instrs=36 + 4 * (kernel % 5)),
                    data=_kernel_data(rng, kernel),
                    data_per_instr=DATA_PER_INSTR,
                    store_fraction=0.3,
                )
            )
        return run_phases(phases, rng)

    meta = TraceMeta(
        name="liver",
        program_type=PROGRAM_TYPE,
        description="14 sequential Livermore-style kernels over interleaved array streams",
        seed=seed,
        scale=scale,
    )
    return Trace(meta, factory)
