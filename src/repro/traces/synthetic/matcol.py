"""Synthetic *matcol* — non-unit and mixed stride numeric access.

§5 lists this exactly: "the numeric programs used in this study used
unit stride access patterns.  Numeric programs with non-unit stride and
mixed stride access patterns also need to be simulated."  This
extension workload is that program: a row-major matrix walked down its
*columns* (each access jumps a full row — many cache lines — so the
sequential stream buffer of §4.1 sees nothing sequential), mixed with
unit-stride row sweeps and a strided reduction, phase by phase.

It is not part of the paper's six-benchmark suite; the `ext_stride`
experiment uses it to show the sequential buffer failing and the
stride-detecting buffer (``repro.buffers.stride``) recovering the
misses.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..patterns import Phase, interleaved_streams, loop_code, mix, run_phases, stride_stream
from ..trace import Trace, TraceMeta

__all__ = ["build", "PROGRAM_TYPE", "DATA_PER_INSTR", "ROW_BYTES", "MATRIX_ROWS"]

PROGRAM_TYPE = "non-unit-stride numeric"
DATA_PER_INSTR = 0.30

_CODE_BASE = 0x0030_0000 + 52 * 4096
_MATRIX_BASE = 0x7000_0000
_VECTOR_BASE = 0x7100_0000 + 61 * 4096
_SCALAR_BASE = 0x7F00_0000 + 122 * 4096 + 1536

#: 8-byte elements, 128 columns per row: each column step jumps a
#: kilobyte — 64 cache lines at the baseline 16B line size.
ELEM = 8
MATRIX_COLS = 128
MATRIX_ROWS = 192
ROW_BYTES = MATRIX_COLS * ELEM
MATRIX_BYTES = MATRIX_ROWS * ROW_BYTES


def _column_major_sweep() -> Iterator[int]:
    """Walk the row-major matrix column by column, forever."""
    while True:
        for col in range(MATRIX_COLS):
            col_base = _MATRIX_BASE + col * ELEM
            for row in range(MATRIX_ROWS):
                yield col_base + row * ROW_BYTES


def _strided_reduction() -> Iterator[int]:
    """A fixed stride of three rows — a different non-unit stream."""
    return stride_stream(_MATRIX_BASE + 4 * ELEM, MATRIX_BYTES, 3 * ROW_BYTES)


def build(scale: int, seed: int = 0) -> Trace:
    """Build the matcol trace with about *scale* instructions."""

    def factory():
        rng = random.Random(seed)
        third = max(1, scale // 3)
        phases = [
            # Phase 1: pure column-major traversal (non-unit stride).
            Phase(
                name="column_sweep",
                instructions=third,
                code=loop_code(_CODE_BASE, body_instrs=40),
                data=_column_major_sweep(),
                data_per_instr=DATA_PER_INSTR,
                store_fraction=0.25,
            ),
            # Phase 2: mixed stride — two non-unit streams interleaved
            # with a unit-stride vector.
            Phase(
                name="mixed_stride",
                instructions=third,
                code=loop_code(_CODE_BASE + 512, body_instrs=48),
                data=interleaved_streams(
                    [
                        _column_major_sweep(),
                        _strided_reduction(),
                        stride_stream(_VECTOR_BASE, 64 * 1024, ELEM),
                    ]
                ),
                data_per_instr=DATA_PER_INSTR,
                store_fraction=0.25,
            ),
            # Phase 3: unit-stride row sweep (the regime the paper's
            # sequential buffer already handles), with resident scalars.
            Phase(
                name="row_sweep",
                instructions=scale - 2 * third,
                code=loop_code(_CODE_BASE + 1024, body_instrs=36),
                data=mix(
                    rng,
                    [stride_stream(_MATRIX_BASE, MATRIX_BYTES, ELEM),
                     stride_stream(_SCALAR_BASE, 256, ELEM)],
                    [0.8, 0.2],
                ),
                data_per_instr=DATA_PER_INSTR,
                store_fraction=0.25,
            ),
        ]
        return run_phases(phases, rng)

    meta = TraceMeta(
        name="matcol",
        program_type=PROGRAM_TYPE,
        description="column-major matrix traversal plus mixed-stride kernels (SS5 future work)",
        seed=seed,
        scale=scale,
    )
    return Trace(meta, factory)
