"""Synthetic *linpack* — 100x100 numeric linear algebra (Table 2-1).

The paper singles out linpack's behaviour twice: its inner loop (saxpy)
performs an inner product between one row and the other rows of a
matrix, so after the first pass the "one row" lives in the cache and the
remaining misses are the successive lines of the matrix streaming
through — a single, very long, unit-stride miss stream (§4.1).  That
gives it the paper's signature profile: a 0.000 instruction miss rate
(the loop fits trivially), a high data miss rate (0.144), the *lowest*
conflict-miss percentage of the suite, the least victim-cache benefit,
and the most stream-buffer benefit, with 50% of its victim-cache hits
overlapping stream-buffer hits (§5).

The generator models exactly that: a tiny instruction loop; for each
matrix column a saxpy pass that re-reads one resident 800-byte column
(``dx``) while streaming a fresh column of the 80KB matrix (``dy``) with
a load+load+store per element.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..patterns import Phase, loop_code, mix, run_phases, stride_stream
from ..trace import Trace, TraceMeta

__all__ = ["build", "PROGRAM_TYPE", "DATA_PER_INSTR"]

PROGRAM_TYPE = "100x100 numeric"
#: Table 2-1: 40.7M data refs / 144.8M instructions.
DATA_PER_INSTR = 0.281

_CODE_BASE = 0x0010_0000 + 26 * 4096
_DX_BASE = 0x1000_0000
_MATRIX_BASE = 0x1100_0000 + 53 * 4096

_ELEM = 8
_N = 100
_COLUMN_BYTES = _N * _ELEM
_MATRIX_COLUMNS = 100


def _saxpy_data() -> Iterator[int]:
    """dx (resident) and dy (streaming) references, load/load/store order.

    Columns advance through the matrix and wrap, so the whole matrix is
    passed through the cache on every sweep, just as §4.1 describes.
    """
    column = 0
    while True:
        dy_base = _MATRIX_BASE + column * _COLUMN_BYTES
        for i in range(_N):
            element = i * _ELEM
            yield _DX_BASE + element       # load dx[i]
            yield dy_base + element        # load dy[i]
            yield dy_base + element        # store dy[i]
        column += 1
        if column >= _MATRIX_COLUMNS:
            column = 0


_SCALAR_BASE = 0x1F00_0000 + 106 * 4096 + 3072
#: Fraction of data references to loop scalars and constants (resident).
_SCALAR_WEIGHT = 0.28


def build(scale: int, seed: int = 0) -> Trace:
    """Build the linpack trace with about *scale* instructions."""

    def factory():
        rng = random.Random(seed)
        data = mix(
            rng,
            [_saxpy_data(), stride_stream(_SCALAR_BASE, 128, _ELEM)],
            [1.0 - _SCALAR_WEIGHT, _SCALAR_WEIGHT],
        )
        phases = [
            Phase(
                name="saxpy",
                instructions=scale,
                code=loop_code(_CODE_BASE, body_instrs=44),
                data=data,
                data_per_instr=DATA_PER_INSTR,
                # One store per load+load pair in saxpy.
                store_fraction=1.0 / 3.0,
            )
        ]
        return run_phases(phases, rng)

    meta = TraceMeta(
        name="linpack",
        program_type=PROGRAM_TYPE,
        description="saxpy streaming over a 100x100 double matrix",
        seed=seed,
        scale=scale,
    )
    return Trace(meta, factory)
