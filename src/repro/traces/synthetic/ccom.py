"""Synthetic *ccom* — a C compiler front end (Table 2-1).

ccom has the largest instruction-cache miss rate of the suite (0.096):
a compiler's text footprint is far bigger than 4KB and control bounces
between passes and utility routines, so procedure-call overlap produces
both capacity and conflict instruction misses (§3.1 explains why these
conflicts are too widely spaced for a small miss cache to capture).
Its data side (0.120) is pointer-heavy — symbol tables and IR nodes —
with the §3.1 character-string comparison as the canonical tight data
conflict, but a *below-average* overall conflict percentage (Figure 3-1
pairs it with linpack at the low end).

Model: a large procedure-call fabric for code; a data mix of pointer
chasing over an IR heap, random symbol-table probes, high-locality stack
traffic, and a slice of string comparisons whose operands collide in a
4KB cache.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..patterns import (
    Phase,
    ProcedureFabric,
    bursty,
    mix,
    pointer_chase,
    random_working_set,
    run_phases,
    stack_traffic,
    string_compare,
    stride_stream,
)
from ..trace import Trace, TraceMeta

__all__ = ["build", "PROGRAM_TYPE", "DATA_PER_INSTR"]

PROGRAM_TYPE = "C compiler"
#: Table 2-1: 14.0M data refs / 31.5M instructions.
DATA_PER_INSTR = 0.444

_CODE_SPAN = 256 * 1024
# Region bases carry distinct offsets modulo 4KB so the only cache
# collisions are the deliberate ones (the string pair below).
_HEAP_BASE = 0x3000_0000
_TABLE_BASE = 0x3100_0000 + 37 * 4096 + 1024
_STACK_BASE = 0x3F00_0000 + 185 * 4096 + 2560
_STRING_A = 0x3200_0000 + 74 * 4096 + 512
#: The second string sits an exact multiple of 4KB away so the two
#: comparison points collide in the baseline data cache (§3.1).
_STRING_B = _STRING_A + 7 * 4096

_IR_NODES = 1600
_TABLE_BYTES = 24 * 1024

_WEIGHT_CHASE = 0.055
_WEIGHT_TABLE = 0.030
_WEIGHT_STACK = 0.880
_WEIGHT_STRINGS = 0.020
_WEIGHT_SCAN = 0.015

#: Per-reference probability of a block copy (structure assignment,
#: bcopy of a token buffer): an uninterrupted sequential burst.
_BURST_PROB = 0.0009
_BURST_BYTES = 384


def _data(rng: random.Random) -> Iterator[int]:
    streams = [
        pointer_chase(rng, _HEAP_BASE, _IR_NODES, node_size=32, fields_per_visit=2),
        random_working_set(rng, _TABLE_BASE, _TABLE_BYTES, granule=8),
        stack_traffic(rng, _STACK_BASE, frame_bytes=96, depth_frames=12),
        string_compare(_STRING_A, _STRING_B, length_bytes=160),
        # Source-text scan: a long sequential read of the input buffer.
        stride_stream(0x3300_0000 + 111 * 4096 + 3072, 192 * 1024, 4),
    ]
    weights = [_WEIGHT_CHASE, _WEIGHT_TABLE, _WEIGHT_STACK, _WEIGHT_STRINGS, _WEIGHT_SCAN]
    background = mix(rng, streams, weights)
    return bursty(rng, background, 0x3400_0000 + 148 * 4096 + 1536, 256 * 1024, _BURST_PROB, _BURST_BYTES)


def build(scale: int, seed: int = 0) -> Trace:
    """Build the ccom trace with about *scale* instructions."""

    def factory():
        rng = random.Random(seed)
        fabric = ProcedureFabric(
            rng,
            num_procedures=224,
            mean_proc_instrs=110,
            code_span=_CODE_SPAN,
            call_prob=0.022,
            loop_prob=0.010,
            loop_iters=6,
            hot_count=8,
            hot_bias=0.82,
            hot_aligned=3,
            skip_prob=0.035,
        )
        phases = [
            Phase(
                name="compile",
                instructions=scale,
                code=fabric,
                data=_data(rng),
                data_per_instr=DATA_PER_INSTR,
                store_fraction=0.34,
            )
        ]
        return run_phases(phases, rng)

    meta = TraceMeta(
        name="ccom",
        program_type=PROGRAM_TYPE,
        description="procedure-heavy compiler: IR pointer chasing, symbol tables, string compares",
        seed=seed,
        scale=scale,
    )
    return Trace(meta, factory)
