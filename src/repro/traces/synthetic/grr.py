"""Synthetic *grr* — PC board CAD router (Table 2-1).

grr sits in the middle of every figure: moderate instruction (0.061) and
data (0.062) miss rates, and an *above-average* data conflict-miss
percentage — Figure 3-1 pairs it with yacc, and §3.1 notes the miss
cache "helps these programs significantly".  A router alternates between
a routing grid (working set larger than the cache, swept in runs) and
per-net data structures, several of which collide in the cache because
they are allocated at similar page offsets.

Model: a mid-sized procedure fabric for code; data mixing grid sweeps,
lock-step references to conflicting per-net arrays, random probes of a
net table, and stack traffic.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..patterns import (
    Phase,
    ProcedureFabric,
    bursty,
    conflicting_streams,
    mix,
    random_working_set,
    run_phases,
    stack_traffic,
    stride_stream,
)
from ..trace import Trace, TraceMeta

__all__ = ["build", "PROGRAM_TYPE", "DATA_PER_INSTR"]

PROGRAM_TYPE = "PC board CAD"
#: Table 2-1: 59.2M data refs / 134.2M instructions.
DATA_PER_INSTR = 0.441

_CODE_SPAN = 128 * 1024
# Distinct mod-4KB offsets per region; only the per-net pair conflicts.
_GRID_BASE = 0x4000_0000
_NET_BASE = 0x4100_0000 + 41 * 4096 + 1024
_TABLE_BASE = 0x4200_0000 + 82 * 4096 + 2048
_STACK_BASE = 0x4F00_0000 + 164 * 4096 + 3136

_GRID_BYTES = 96 * 1024
_TABLE_BYTES = 8 * 1024

#: Two per-net arrays exactly 5 x 4KB apart: they collide in a 4KB
#: direct-mapped cache (and still in 8/16KB since 5 is odd), washing out
#: at larger sizes the way real allocation-offset conflicts do.
_CONFLICT_BASES = (_NET_BASE, _NET_BASE + 5 * 4096)
_CONFLICT_EXTENT = 1024

_WEIGHT_GRID = 0.016
_WEIGHT_CONFLICT = 0.026
_WEIGHT_TABLE = 0.010
_WEIGHT_STACK = 0.948

#: Per-reference probability of a net-segment copy burst.
_BURST_PROB = 0.0007
_BURST_BYTES = 384


def _data(rng: random.Random) -> Iterator[int]:
    streams = [
        stride_stream(_GRID_BASE, _GRID_BYTES, 4),
        conflicting_streams(_CONFLICT_BASES, _CONFLICT_EXTENT, stride=4),
        random_working_set(rng, _TABLE_BASE, _TABLE_BYTES, granule=8),
        stack_traffic(rng, _STACK_BASE, frame_bytes=112, depth_frames=10),
    ]
    weights = [_WEIGHT_GRID, _WEIGHT_CONFLICT, _WEIGHT_TABLE, _WEIGHT_STACK]
    background = mix(rng, streams, weights)
    return bursty(rng, background, 0x4300_0000 + 123 * 4096 + 1536, 192 * 1024, _BURST_PROB, _BURST_BYTES)


def build(scale: int, seed: int = 0) -> Trace:
    """Build the grr trace with about *scale* instructions."""

    def factory():
        rng = random.Random(seed)
        fabric = ProcedureFabric(
            rng,
            num_procedures=144,
            mean_proc_instrs=120,
            code_span=_CODE_SPAN,
            call_prob=0.022,
            loop_prob=0.014,
            loop_iters=8,
            hot_count=6,
            hot_bias=0.73,
            hot_aligned=3,
            skip_prob=0.035,
        )
        phases = [
            Phase(
                name="route",
                instructions=scale,
                code=fabric,
                data=_data(rng),
                data_per_instr=DATA_PER_INSTR,
                store_fraction=0.3,
            )
        ]
        return run_phases(phases, rng)

    meta = TraceMeta(
        name="grr",
        program_type=PROGRAM_TYPE,
        description="CAD router: grid sweeps plus conflicting per-net arrays",
        seed=seed,
        scale=scale,
    )
    return Trace(meta, factory)
