"""Trace file I/O.

Two interchange formats are supported:

* **Text** (``.dinero``-style): one reference per line, ``<kind> <hex
  address>``, where kind is 0 (ifetch), 1 (load) or 2 (store) — the
  classic "din" input format of Dinero-family cache simulators, chosen so
  traces can be exchanged with other tools and inspected by eye.
* **Binary**: a fixed 12-byte little-endian record ``<B3xQ`` (kind byte,
  3 pad bytes, 64-bit address) behind an 8-byte magic header; about 5x
  smaller and much faster to load than text.

Both writers accept any iterable of ``(kind, address)`` pairs, and both
readers yield pairs, so they compose directly with
:class:`~repro.traces.trace.MaterializedTrace`.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import IO, Iterable, Iterator, Tuple, Union

from ..common.errors import TraceFormatError
from ..common.types import AccessKind
from .trace import MaterializedTrace, trace_from_pairs

__all__ = [
    "write_text_trace",
    "read_text_trace",
    "write_binary_trace",
    "read_binary_trace",
    "load_trace",
    "save_trace",
]

Pair = Tuple[int, int]
PathLike = Union[str, Path]

_MAGIC = b"RPROTRC1"
_RECORD = struct.Struct("<B3xQ")
_VALID_KINDS = {int(k) for k in AccessKind}


def _check_kind(kind: int, context: str) -> int:
    if kind not in _VALID_KINDS:
        raise TraceFormatError(f"invalid access kind {kind} {context}")
    return kind


def write_text_trace(path: PathLike, pairs: Iterable[Pair]) -> int:
    """Write pairs in din text format; returns the number of records."""
    count = 0
    with open(path, "w", encoding="ascii") as handle:
        for kind, address in pairs:
            _check_kind(kind, f"at record {count}")
            handle.write(f"{kind} {address:x}\n")
            count += 1
    return count


def read_text_trace(path: PathLike) -> Iterator[Pair]:
    """Yield pairs from a din text trace, skipping blank/comment lines."""
    with open(path, "r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            fields = stripped.split()
            if len(fields) != 2:
                raise TraceFormatError(
                    f"{path}: line {line_number}: expected 'kind address', got {stripped!r}"
                )
            try:
                kind = int(fields[0])
                address = int(fields[1], 16)
            except ValueError as exc:
                raise TraceFormatError(f"{path}: line {line_number}: {exc}") from exc
            if address < 0:
                raise TraceFormatError(f"{path}: line {line_number}: negative address")
            yield _check_kind(kind, f"on line {line_number}"), address


def write_binary_trace(path: PathLike, pairs: Iterable[Pair]) -> int:
    """Write pairs in the compact binary format; returns record count."""
    pack = _RECORD.pack
    count = 0
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        for kind, address in pairs:
            _check_kind(kind, f"at record {count}")
            handle.write(pack(kind, address))
            count += 1
    return count


def read_binary_trace(path: PathLike) -> Iterator[Pair]:
    """Yield pairs from a binary trace file."""
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise TraceFormatError(f"{path}: bad magic {magic!r}")
        yield from _read_binary_records(handle, str(path))


def _read_binary_records(handle: IO[bytes], label: str) -> Iterator[Pair]:
    record_size = _RECORD.size
    unpack = _RECORD.unpack
    index = 0
    while True:
        chunk = handle.read(record_size)
        if not chunk:
            return
        if len(chunk) != record_size:
            raise TraceFormatError(f"{label}: truncated record at index {index}")
        kind, address = unpack(chunk)
        yield _check_kind(kind, f"at record {index}"), address
        index += 1


def save_trace(path: PathLike, trace: Iterable[Pair]) -> int:
    """Save in the format implied by the suffix (.trc binary, else text)."""
    if str(path).endswith(".trc"):
        return write_binary_trace(path, trace)
    return write_text_trace(path, trace)


def load_trace(path: PathLike, name: str = "") -> MaterializedTrace:
    """Load a trace file (format sniffed by suffix) into memory."""
    label = name or Path(path).stem
    if str(path).endswith(".trc"):
        pairs = read_binary_trace(path)
    else:
        pairs = read_text_trace(path)
    return trace_from_pairs(label, pairs, description=f"loaded from {path}")
