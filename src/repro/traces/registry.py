"""Registry of the six benchmark workloads of Table 2-1.

The registry maps the paper's benchmark names to their synthetic
builders, keeps the Table 2-1 metadata alongside, and provides suite
helpers: experiments iterate ``for name in BENCHMARK_NAMES`` exactly the
way the paper's figures enumerate ccom, grr, yacc, met, linpack, liver.

Relative trace lengths follow Table 2-1 (grr is the longest program,
liver the shortest) so suite-wide averages weight benchmarks roughly the
way the paper's traces did, while the per-benchmark *metrics* remain the
paper's equal-weight percent reductions (see
:func:`repro.common.stats.average_percent_reduction`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from ..common.errors import UnknownWorkloadError
from .trace import Trace
from .synthetic import ccom, grr, linpack, liver, matcol, met, yacc

__all__ = [
    "RegistryEntry",
    "WorkloadSpec",
    "BENCHMARK_NAMES",
    "EXTENSION_NAMES",
    "get_workload",
    "list_workloads",
    "build_trace",
    "build_suite",
    "DEFAULT_SCALE",
]

#: Default instruction count per unit of relative length.  Chosen so the
#: whole six-benchmark suite is large enough for stable statistics yet
#: simulates in seconds per configuration in pure Python.
DEFAULT_SCALE = 60_000


@dataclass(frozen=True)
class RegistryEntry:
    """One benchmark: identity, Table 2-1 metadata, and a builder."""

    name: str
    program_type: str
    builder: Callable[[int, int], Trace]
    #: Data references per instruction (Table 2-1).
    data_per_instr: float
    #: Relative dynamic length (Table 2-1 instruction counts, normalised
    #: to ccom = 1.0).
    relative_length: float
    description: str = ""

    def build(self, scale: int, seed: int = 0) -> Trace:
        return self.builder(scale, seed)


#: Historical name for :class:`RegistryEntry`.  ``repro.specs`` now owns
#: the (declarative) ``WorkloadSpec`` base class; the registry entry kept
#: its old name as an alias for backward compatibility.
WorkloadSpec = RegistryEntry


_SPECS: Dict[str, RegistryEntry] = {
    spec.name: spec
    for spec in [
        RegistryEntry(
            name="ccom",
            program_type=ccom.PROGRAM_TYPE,
            builder=ccom.build,
            data_per_instr=ccom.DATA_PER_INSTR,
            relative_length=1.0,
            description="C compiler front end",
        ),
        RegistryEntry(
            name="grr",
            program_type=grr.PROGRAM_TYPE,
            builder=grr.build,
            data_per_instr=grr.DATA_PER_INSTR,
            relative_length=4.26,
            description="PC board CAD router",
        ),
        RegistryEntry(
            name="yacc",
            program_type=yacc.PROGRAM_TYPE,
            builder=yacc.build,
            data_per_instr=yacc.DATA_PER_INSTR,
            relative_length=1.62,
            description="Unix parser generator",
        ),
        RegistryEntry(
            name="met",
            program_type=met.PROGRAM_TYPE,
            builder=met.build,
            data_per_instr=met.DATA_PER_INSTR,
            relative_length=3.16,
            description="PC board CAD timing verifier",
        ),
        RegistryEntry(
            name="linpack",
            program_type=linpack.PROGRAM_TYPE,
            builder=linpack.build,
            data_per_instr=linpack.DATA_PER_INSTR,
            relative_length=4.60,
            description="100x100 LINPACK (saxpy)",
        ),
        RegistryEntry(
            name="liver",
            program_type=liver.PROGRAM_TYPE,
            builder=liver.build,
            data_per_instr=liver.DATA_PER_INSTR,
            relative_length=0.75,
            description="Livermore Fortran kernels",
        ),
    ]
}

#: Extension workloads (SS5 future work), not part of the paper's suite.
_EXTENSION_SPECS: Dict[str, RegistryEntry] = {
    spec.name: spec
    for spec in [
        RegistryEntry(
            name="matcol",
            program_type=matcol.PROGRAM_TYPE,
            builder=matcol.build,
            data_per_instr=matcol.DATA_PER_INSTR,
            relative_length=1.0,
            description="non-unit / mixed stride numeric kernels",
        ),
    ]
}
_SPECS.update(_EXTENSION_SPECS)

#: The paper's presentation order.
BENCHMARK_NAMES: List[str] = ["ccom", "grr", "yacc", "met", "linpack", "liver"]

#: Extension workload names (buildable via build_trace, excluded from suites).
EXTENSION_NAMES: List[str] = sorted(_EXTENSION_SPECS)


def get_workload(name: str) -> RegistryEntry:
    """Look up a benchmark by its Table 2-1 name."""
    try:
        return _SPECS[name]
    except KeyError:
        known = ", ".join(BENCHMARK_NAMES + EXTENSION_NAMES)
        raise UnknownWorkloadError(f"unknown workload {name!r}; known: {known}") from None


def list_workloads() -> List[RegistryEntry]:
    """All benchmarks in the paper's presentation order."""
    return [_SPECS[name] for name in BENCHMARK_NAMES]


def build_trace(name: str, scale: Optional[int] = None, seed: int = 0) -> Trace:
    """Build one benchmark trace.

    When *scale* is omitted the benchmark gets ``DEFAULT_SCALE`` times
    its Table 2-1 relative length, mirroring the paper's unequal trace
    lengths.
    """
    spec = get_workload(name)
    if scale is None:
        scale = int(DEFAULT_SCALE * spec.relative_length)
    trace = spec.build(scale, seed)
    # Stamp spec provenance so any materialization of this trace — at any
    # scale, including 0 — keys the engine memo and the result store.
    from ..specs.workloads import NamedWorkloadSpec

    source = NamedWorkloadSpec(name=name, scale=scale, seed=seed).to_json()
    trace.meta = dataclasses.replace(trace.meta, source=source)
    return trace


def build_suite(
    scale: Optional[int] = None,
    seed: int = 0,
    materialize: bool = True,
) -> Iterator:
    """Yield all six benchmark traces in order.

    With ``materialize=True`` (the default) each trace is replayed into
    memory once so experiments can re-run it against many configurations
    cheaply.
    """
    for name in BENCHMARK_NAMES:
        trace = build_trace(name, scale, seed)
        yield trace.materialize() if materialize else trace
