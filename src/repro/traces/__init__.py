"""Traces: record types, file I/O, pattern builders, and the benchmark suite."""

from .io import (
    load_trace,
    read_binary_trace,
    read_text_trace,
    save_trace,
    write_binary_trace,
    write_text_trace,
)
from .registry import (
    BENCHMARK_NAMES,
    DEFAULT_SCALE,
    RegistryEntry,
    WorkloadSpec,
    build_suite,
    build_trace,
    get_workload,
    list_workloads,
)
from .packed import PackedTrace
from .synthetic import CustomWorkload
from .trace import MaterializedTrace, Trace, TraceMeta, TraceStats, trace_from_pairs

__all__ = [
    "CustomWorkload",
    "Trace",
    "TraceMeta",
    "TraceStats",
    "MaterializedTrace",
    "PackedTrace",
    "trace_from_pairs",
    "BENCHMARK_NAMES",
    "DEFAULT_SCALE",
    "RegistryEntry",
    "WorkloadSpec",
    "build_suite",
    "build_trace",
    "get_workload",
    "list_workloads",
    "load_trace",
    "save_trace",
    "read_text_trace",
    "write_text_trace",
    "read_binary_trace",
    "write_binary_trace",
]
