"""System performance model (paper §2 Figure 2-2 and §5 Figure 5-1).

The paper expresses everything in *instruction times*: the machine would
retire one instruction per time unit if the memory hierarchy were
perfect, so total execution time is

    instructions
  + 24 x (L1 misses serviced by the L2)
  +  1 x (L1 misses removed by a miss cache / victim cache / stream buffer)
  + 320 x (demand L2 misses)
  + stream-buffer availability stalls (when modelled)

and "performance" is the fraction of the peak (1,000 MIPS in the paper)
actually achieved: ``instructions / total_time``.  Figure 2-2 plots the
complement — where the lost time went — which
:meth:`SystemPerformance.loss_breakdown` reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..common.config import TimingConfig
from ..common.stats import safe_div
from .system import SystemResult

__all__ = ["SystemPerformance", "evaluate_performance"]


@dataclass(frozen=True)
class SystemPerformance:
    """Execution-time decomposition of one simulated run."""

    instructions: int
    #: Instruction times lost to L1 instruction misses serviced by L2.
    l1i_miss_time: int
    #: Instruction times lost to L1 data misses serviced by L2.
    l1d_miss_time: int
    #: Instruction times lost to demand second-level misses.
    l2_miss_time: int
    #: One-cycle reloads from miss/victim caches and stream buffers.
    removed_miss_time: int
    #: Stream-buffer not-ready stalls (zero unless availability modelled).
    stall_time: int

    @property
    def total_time(self) -> int:
        return (
            self.instructions
            + self.l1i_miss_time
            + self.l1d_miss_time
            + self.l2_miss_time
            + self.removed_miss_time
            + self.stall_time
        )

    @property
    def memory_time(self) -> int:
        return self.total_time - self.instructions

    @property
    def percent_of_potential(self) -> float:
        """Fraction of peak performance achieved, as a percentage."""
        return 100.0 * safe_div(self.instructions, self.total_time, default=1.0)

    @property
    def cycles_per_instruction(self) -> float:
        return safe_div(self.total_time, self.instructions, default=1.0)

    def speedup_over(self, other: "SystemPerformance") -> float:
        """Execution-time ratio ``other / self`` (>1 means self is faster).

        Figure 5-1's "143% average performance improvement" is the mean
        over benchmarks of ``100 * (speedup - 1)``.
        """
        return safe_div(other.total_time, self.total_time, default=1.0)

    def loss_breakdown(self) -> Dict[str, float]:
        """Percent of potential performance lost to each cause (Fig 2-2)."""
        total = self.total_time
        return {
            "achieved": 100.0 * safe_div(self.instructions, total, default=1.0),
            "l1i_misses": 100.0 * safe_div(self.l1i_miss_time, total),
            "l1d_misses": 100.0 * safe_div(self.l1d_miss_time, total),
            "l2_misses": 100.0 * safe_div(self.l2_miss_time, total),
            "removed_misses": 100.0 * safe_div(self.removed_miss_time, total),
            "stalls": 100.0 * safe_div(self.stall_time, total),
        }


def evaluate_performance(result: SystemResult, timing: TimingConfig) -> SystemPerformance:
    """Apply the instruction-time cost model to a simulation result."""
    removed = result.istats.removed_misses + result.dstats.removed_misses
    return SystemPerformance(
        instructions=result.instructions,
        l1i_miss_time=timing.l1_miss_penalty * result.istats.misses_to_next_level,
        l1d_miss_time=timing.l1_miss_penalty * result.dstats.misses_to_next_level,
        l2_miss_time=timing.l2_miss_penalty * result.l2stats.demand_misses,
        removed_miss_time=timing.removed_miss_penalty * removed,
        stall_time=result.istats.stream_stall_cycles + result.dstats.stream_stall_cycles,
    )
