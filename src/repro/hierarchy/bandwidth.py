"""Sequential-fetch bandwidth model — §4.1's worked example.

The paper quantifies *why* stream buffers beat tagged prefetch on
straight-line code: "assume the latency to refill a 16B line on a
instruction cache miss is 12 cycles [and] a memory interface that is
pipelined and can accept a new line request every 4 cycles.  A
four-entry stream buffer can provide 4B instructions at a rate of one
per cycle by having three requests outstanding at all times ... In that
case [tagged prefetch] sequential instructions will only be supplied at
a bandwidth equal to one instruction every three cycles (i.e., 12 cycle
latency / 4 instructions per line)."

This module reproduces that arithmetic with a small cycle-driven model
of a CPU consuming a purely sequential instruction stream through one of
three fetch mechanisms:

* **demand** — fetch a line only when execution reaches it;
* **tagged** — prefetch the successor when a line's first instruction
  issues (one prefetch in flight per transition, Smith's scheme);
* **stream** — a FIFO stream buffer keeping up to ``entries`` requests
  outstanding on the pipelined interface.

The memory interface accepts one request per ``issue_interval`` cycles
and completes each ``latency`` cycles after issue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Deque, Optional

from collections import deque

from ..common.errors import ConfigurationError

__all__ = ["FetchMechanism", "PipelinedMemoryInterface", "sequential_fetch_cpi"]


class FetchMechanism(enum.Enum):
    DEMAND = "demand"
    TAGGED = "tagged_prefetch"
    STREAM = "stream_buffer"


class PipelinedMemoryInterface:
    """The §2 pipelined second-level interface: fixed issue rate + latency."""

    def __init__(self, latency: int = 12, issue_interval: int = 4):
        if latency < 1 or issue_interval < 1:
            raise ConfigurationError("latency and issue_interval must be >= 1")
        self.latency = latency
        self.issue_interval = issue_interval
        self._next_issue_time = 0

    def request(self, now: int) -> int:
        """Issue a line request at or after *now*; returns completion time."""
        issue_time = max(now, self._next_issue_time)
        self._next_issue_time = issue_time + self.issue_interval
        return issue_time + self.latency

    def reset(self) -> None:
        self._next_issue_time = 0


def sequential_fetch_cpi(
    mechanism: FetchMechanism,
    latency: int = 12,
    issue_interval: int = 4,
    instructions_per_line: int = 4,
    buffer_entries: int = 4,
    lines: int = 400,
) -> float:
    """Cycles per instruction for a purely sequential fetch stream.

    Runs *lines* cache lines through the chosen mechanism and returns
    steady-state cycles per instruction (the cold first line is
    excluded so short runs report the asymptote the paper quotes).
    """
    if lines < 2:
        raise ConfigurationError("need at least 2 lines to measure steady state")
    interface = PipelinedMemoryInterface(latency, issue_interval)
    #: ready_at[line] = completion time of its (pre)fetch.
    ready_at = {}

    def fetch(line: int, now: int) -> None:
        if line not in ready_at:
            ready_at[line] = interface.request(now)

    now = 0
    first_line_done: Optional[int] = None
    # Outstanding stream-buffer slots (line numbers), head first.
    stream_queue: Deque[int] = deque()
    next_stream_line = 0
    for line in range(lines):
        # Make sure this line has been requested.
        if mechanism is FetchMechanism.STREAM:
            # Allocation on the cold miss; afterwards the buffer keeps
            # itself topped up as entries are consumed.
            if line not in ready_at and not stream_queue:
                fetch(line, now)
                next_stream_line = line + 1
                while len(stream_queue) < buffer_entries:
                    fetch(next_stream_line, now)
                    stream_queue.append(next_stream_line)
                    next_stream_line += 1
        else:
            fetch(line, now)
        # Wait for the line.
        now = max(now, ready_at[line])
        if mechanism is FetchMechanism.STREAM and stream_queue and stream_queue[0] == line:
            stream_queue.popleft()
        # Consume the line's instructions, one per cycle; prefetch
        # triggers fire on the first instruction (the tag transition).
        if mechanism is FetchMechanism.TAGGED:
            fetch(line + 1, now)
        elif mechanism is FetchMechanism.STREAM:
            while len(stream_queue) < buffer_entries:
                fetch(next_stream_line, now)
                stream_queue.append(next_stream_line)
                next_stream_line += 1
        now += instructions_per_line
        if first_line_done is None:
            first_line_done = now
    executed = (lines - 1) * instructions_per_line
    return (now - first_line_done) / executed


@dataclass(frozen=True)
class BandwidthPoint:
    """One row of the §4.1 bandwidth comparison."""

    latency: int
    demand_cpi: float
    tagged_cpi: float
    stream_cpi: float


def bandwidth_sweep(
    latencies,
    issue_interval: int = 4,
    instructions_per_line: int = 4,
    buffer_entries: int = 4,
):
    """CPI of each mechanism across memory latencies."""
    points = []
    for latency in latencies:
        points.append(
            BandwidthPoint(
                latency=latency,
                demand_cpi=sequential_fetch_cpi(
                    FetchMechanism.DEMAND, latency, issue_interval,
                    instructions_per_line, buffer_entries,
                ),
                tagged_cpi=sequential_fetch_cpi(
                    FetchMechanism.TAGGED, latency, issue_interval,
                    instructions_per_line, buffer_entries,
                ),
                stream_cpi=sequential_fetch_cpi(
                    FetchMechanism.STREAM, latency, issue_interval,
                    instructions_per_line, buffer_entries,
                ),
            )
        )
    return points


__all__.append("BandwidthPoint")
__all__.append("bandwidth_sweep")
