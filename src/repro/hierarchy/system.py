"""The paper's two-level baseline memory system (Figure 2-1).

Split 4KB direct-mapped L1 instruction and data caches feed a shared
direct-mapped 1MB L2 with 128-byte lines.  Either L1 may carry an
augmentation (miss cache, victim cache, stream buffer, or a composite);
stream-buffer prefetches are routed through the L2 so its contents stay
honest, but only *demand* L2 misses stall the processor — prefetch
traffic rides the pipelined interface the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterable, Optional, Tuple

from ..buffers.base import CompositeAugmentation, L1Augmentation
from ..buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from ..caches.direct_mapped import DirectMappedCache
from ..common.config import SystemConfig, baseline_system
from ..common.stats import safe_div
from ..common.types import AccessKind, AccessOutcome
from ..telemetry.core import current as _telemetry_scope
from .level import CacheLevel, LevelStats

__all__ = ["L2Stats", "SystemResult", "MemorySystem"]


class L2Stats:
    """Second-level cache counters, split demand vs. prefetch traffic."""

    __slots__ = ("demand_accesses", "demand_misses", "prefetch_accesses", "prefetch_misses")

    def __init__(self) -> None:
        self.demand_accesses = 0
        self.demand_misses = 0
        self.prefetch_accesses = 0
        self.prefetch_misses = 0

    @property
    def demand_miss_rate(self) -> float:
        return safe_div(self.demand_misses, self.demand_accesses)

    def as_dict(self) -> Dict[str, int]:
        """Plain-int snapshot of every counter (telemetry record shape)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, L2Stats):
            return NotImplemented
        return all(getattr(self, slot) == getattr(other, slot) for slot in self.__slots__)

    def __hash__(self) -> int:
        """Value hash consistent with ``__eq__``.

        Defining ``__eq__`` alone sets ``__hash__`` to None, which made
        instances unhashable and broke set/dict membership of result
        summaries.  The hash is value-based over mutable counters — as
        with any mutable value type, do not mutate an instance while a
        hash-based container holds it.
        """
        return hash(tuple(getattr(self, slot) for slot in self.__slots__))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{slot}={getattr(self, slot)}" for slot in self.__slots__)
        return f"L2Stats({fields})"


@dataclass
class SystemResult:
    """Everything a single trace run produces."""

    instructions: int
    data_references: int
    istats: LevelStats
    dstats: LevelStats
    l2stats: L2Stats

    @property
    def total_references(self) -> int:
        return self.instructions + self.data_references

    @property
    def l1_misses(self) -> int:
        return self.istats.demand_misses + self.dstats.demand_misses

    @property
    def imiss_rate(self) -> float:
        """Instruction misses per instruction (Table 2-2's 'instr' column)."""
        return safe_div(self.istats.demand_misses, self.instructions)

    @property
    def dmiss_rate(self) -> float:
        """Data misses per data reference (Table 2-2's 'data' column)."""
        return safe_div(self.dstats.demand_misses, self.data_references)

    @property
    def effective_imiss_rate(self) -> float:
        return safe_div(self.istats.misses_to_next_level, self.instructions)

    @property
    def effective_dmiss_rate(self) -> float:
        return safe_div(self.dstats.misses_to_next_level, self.data_references)


class MemorySystem:
    """Trace-driven simulator of the baseline two-level hierarchy."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        iaugmentation: Optional[L1Augmentation] = None,
        daugmentation: Optional[L1Augmentation] = None,
        classify: bool = False,
        route_prefetches_through_l2: bool = True,
    ):
        self.config = config if config is not None else baseline_system()
        self.ilevel = CacheLevel(self.config.icache, iaugmentation, classify, name="L1I")
        self.dlevel = CacheLevel(self.config.dcache, daugmentation, classify, name="L1D")
        self.l2 = DirectMappedCache(self.config.l2)
        self.l2stats = L2Stats()
        self._l2_shift = self.config.l2.offset_bits
        self._ishift = self.config.icache.offset_bits
        self._dshift = self.config.dcache.offset_bits
        self.instructions = 0
        self.data_references = 0
        # Prefetches issued while servicing a miss are queued and sent
        # to the L2 *after* the demand fetch, matching the §4.1 order
        # (the demand line goes out first, prefetches stream behind it).
        self._pending_prefetches: list = []
        # True only when at least one stream buffer was wired to the L2;
        # lets the per-reference loop skip the pending-queue check for
        # the (common) augmentation-free and non-prefetching systems.
        self._has_prefetch_sinks = False
        if route_prefetches_through_l2:
            self._wire_prefetch_sinks(iaugmentation, self._ishift)
            self._wire_prefetch_sinks(daugmentation, self._dshift)

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def from_spec(cls, spec, classify: bool = False) -> "MemorySystem":
        """Full system from a :class:`~repro.specs.SystemSpec`.

        The spec's structure is built fresh and attached to the side the
        spec names (``"i"`` or ``"d"``); the other side runs bare.
        Prefetch routing through the L2 stays on, so spec-driven systems
        behave exactly like hand-wired ones.
        """
        structure = spec.build_structure()
        return cls(
            config=spec.config,
            iaugmentation=structure if spec.side == "i" else None,
            daugmentation=structure if spec.side == "d" else None,
            classify=classify or spec.classify,
        )

    def _wire_prefetch_sinks(self, augmentation: Optional[L1Augmentation], l1_shift: int) -> None:
        """Route every stream-buffer prefetch through the L2 tag store."""
        shift_to_l2 = self._l2_shift - l1_shift

        def sink(l1_line: int) -> None:
            self._pending_prefetches.append(l1_line >> shift_to_l2)

        for buffer in self._stream_buffers(augmentation):
            if buffer.fetch_sink is None:
                buffer.fetch_sink = sink
                self._has_prefetch_sinks = True

    @staticmethod
    def _stream_buffers(augmentation: Optional[L1Augmentation]) -> Iterable[StreamBuffer]:
        if augmentation is None:
            return
        stack = [augmentation]
        while stack:
            node = stack.pop()
            if isinstance(node, StreamBuffer):
                yield node
            elif isinstance(node, MultiWayStreamBuffer):
                stack.extend(node.way_buffers())
            elif isinstance(node, CompositeAugmentation):
                stack.extend(node.members)

    # -- simulation --------------------------------------------------------------

    def access(self, kind: int, byte_address: int) -> AccessOutcome:
        """Simulate one reference; *kind* is an :class:`AccessKind` value."""
        if kind == AccessKind.IFETCH:
            self.instructions += 1
            outcome = self.ilevel.access_line(byte_address >> self._ishift, self.instructions)
        else:
            self.data_references += 1
            outcome = self.dlevel.access_line(byte_address >> self._dshift, self.instructions)
        if outcome is AccessOutcome.MISS:
            self._l2_demand(byte_address >> self._l2_shift)
        if self._has_prefetch_sinks and self._pending_prefetches:
            for l2_line in self._pending_prefetches:
                self._l2_prefetch(l2_line)
            self._pending_prefetches.clear()
        return outcome

    def run(self, trace: Iterable[Tuple[int, int]]) -> SystemResult:
        """Run a whole trace of ``(kind, byte_address)`` pairs.

        Semantically ``for pair in trace: self.access(*pair)``, but with
        the per-reference work inlined and every attribute the loop needs
        bound to a local: this loop is the simulator's hottest path, and
        the L2 demand handling plus the level dispatch dominate the cost
        of a full-system replay.

        When a telemetry scope is active
        (:func:`repro.telemetry.core.activate`) the run reports its wall
        time and counters to it; the disabled path costs one global read
        per *run*, never anything per reference.
        """
        scope = _telemetry_scope()
        started = perf_counter() if scope is not None else 0.0
        ilevel_access = self.ilevel.access_line
        dlevel_access = self.dlevel.access_line
        ishift = self._ishift
        dshift = self._dshift
        l2_shift = self._l2_shift
        l2_access = self.l2.access
        l2_fill = self.l2.fill
        l2stats = self.l2stats
        l2_prefetch = self._l2_prefetch
        pending = self._pending_prefetches
        has_sinks = self._has_prefetch_sinks
        ifetch = int(AccessKind.IFETCH)
        miss = AccessOutcome.MISS
        instructions = self.instructions
        data_references = self.data_references
        demand_accesses = l2stats.demand_accesses
        demand_misses = l2stats.demand_misses
        try:
            for kind, byte_address in trace:
                if kind == ifetch:
                    instructions += 1
                    outcome = ilevel_access(byte_address >> ishift, instructions)
                else:
                    data_references += 1
                    outcome = dlevel_access(byte_address >> dshift, instructions)
                if outcome is miss:
                    demand_accesses += 1
                    l2_line = byte_address >> l2_shift
                    if not l2_access(l2_line):
                        demand_misses += 1
                        l2_fill(l2_line)
                if has_sinks and pending:
                    for l2_line in pending:
                        l2_prefetch(l2_line)
                    pending.clear()
        finally:
            self.instructions = instructions
            self.data_references = data_references
            l2stats.demand_accesses = demand_accesses
            l2stats.demand_misses = demand_misses
        result = self.result()
        if scope is not None:
            scope.observe_system_run(result, perf_counter() - started)
        return result

    def result(self) -> SystemResult:
        return SystemResult(
            instructions=self.instructions,
            data_references=self.data_references,
            istats=self.ilevel.stats,
            dstats=self.dlevel.stats,
            l2stats=self.l2stats,
        )

    def prewarm_l2(self, trace: Iterable[Tuple[int, int]]) -> int:
        """Preload the L2 with every line a trace touches (no statistics).

        The paper's traces run 23M-485M instructions, so first-touch L2
        misses are amortized to noise; at synthetic-trace scale they
        would dominate the §2/§5 performance figures.  Prewarming models
        the same steady state: compulsory L2 misses vanish, while L2
        capacity and conflict behaviour (and everything about the L1s)
        is unchanged.  Returns the number of distinct L2 lines loaded.
        """
        loaded = 0
        for _, byte_address in trace:
            line = byte_address >> self._l2_shift
            if not self.l2.access(line):
                self.l2.fill(line)
                loaded += 1
        return loaded

    def reset(self) -> None:
        self.ilevel.reset()
        self.dlevel.reset()
        self.l2.clear()
        self.l2stats = L2Stats()
        self.instructions = 0
        self.data_references = 0
        self._pending_prefetches.clear()

    # -- L2 traffic ---------------------------------------------------------------

    def _l2_demand(self, l2_line: int) -> None:
        self.l2stats.demand_accesses += 1
        if not self.l2.access(l2_line):
            self.l2stats.demand_misses += 1
            self.l2.fill(l2_line)

    def _l2_prefetch(self, l2_line: int) -> None:
        self.l2stats.prefetch_accesses += 1
        if not self.l2.access(l2_line):
            self.l2stats.prefetch_misses += 1
            self.l2.fill(l2_line)
