"""One level of the cache hierarchy: a direct-mapped array plus helpers.

:class:`CacheLevel` owns a direct-mapped tag store, an optional
:class:`~repro.buffers.base.L1Augmentation` (miss cache, victim cache,
stream buffer, or a composite), and an optional 3C miss classifier, and
drives them in the order the hardware would (probe array → consult
helpers → refill array → update helpers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..buffers.base import L1Augmentation, NullAugmentation
from ..caches.direct_mapped import DirectMappedCache
from ..classify.miss_classifier import MissClassifier
from ..common.config import CacheConfig
from ..common.stats import safe_div
from ..common.types import AccessOutcome

__all__ = ["LevelStats", "CacheLevel"]


@dataclass
class LevelStats:
    """Access counters for one cache level."""

    accesses: int = 0
    outcomes: Dict[AccessOutcome, int] = field(
        default_factory=lambda: {outcome: 0 for outcome in AccessOutcome}
    )
    #: Extra stall cycles reported by availability-modelling stream buffers.
    stream_stall_cycles: int = 0

    @property
    def hits(self) -> int:
        return self.outcomes[AccessOutcome.HIT]

    @property
    def demand_misses(self) -> int:
        """Misses of the direct-mapped array, removed or not.

        This is the paper's "miss rate" numerator: helper-structure hits
        are misses that were *removed* (made one-cycle), and figures
        like 3-3 count them as removed misses, not as hits.
        """
        return self.accesses - self.hits

    @property
    def removed_misses(self) -> int:
        return (
            self.outcomes[AccessOutcome.MISS_CACHE_HIT]
            + self.outcomes[AccessOutcome.VICTIM_HIT]
            + self.outcomes[AccessOutcome.STREAM_HIT]
        )

    @property
    def misses_to_next_level(self) -> int:
        return self.outcomes[AccessOutcome.MISS]

    @property
    def miss_rate(self) -> float:
        return safe_div(self.demand_misses, self.accesses)

    @property
    def effective_miss_rate(self) -> float:
        """Miss rate counting removed misses as hits (post-helper rate)."""
        return safe_div(self.misses_to_next_level, self.accesses)

    def record(self, outcome: AccessOutcome) -> None:
        self.accesses += 1
        self.outcomes[outcome] += 1


class CacheLevel:
    """A direct-mapped cache level with optional augmentation/classifier."""

    def __init__(
        self,
        config: CacheConfig,
        augmentation: Optional[L1Augmentation] = None,
        classify: bool = False,
        name: str = "L1",
    ):
        self.name = name
        self.config = config
        self.cache = DirectMappedCache(config)
        self.augmentation = augmentation if augmentation is not None else NullAugmentation()
        self.classifier: Optional[MissClassifier] = (
            MissClassifier(config.num_lines) if classify else None
        )
        self.stats = LevelStats()
        self._line_shift = config.offset_bits

    def access(self, byte_address: int, now: int = 0) -> AccessOutcome:
        """Access by byte address (computes the line address internally)."""
        return self.access_line(byte_address >> self._line_shift, now)

    def access_line(self, line_addr: int, now: int = 0) -> AccessOutcome:
        """Access by line address; returns where the access was satisfied."""
        hit = self.cache.access(line_addr)
        if self.classifier is not None:
            self.classifier.observe(line_addr, hit)
        if hit:
            self.augmentation.on_l1_hit(line_addr, now)
            self.stats.record(AccessOutcome.HIT)
            return AccessOutcome.HIT
        lookup = self.augmentation.lookup_on_miss(line_addr, now)
        victim = self.cache.fill(line_addr)
        self.augmentation.on_l1_fill(line_addr, victim, now)
        outcome = lookup.outcome if lookup.satisfied else AccessOutcome.MISS
        self.stats.record(outcome)
        self.stats.stream_stall_cycles += lookup.stall_cycles
        return outcome

    def reset_stats(self) -> None:
        """Zero the counters while keeping all cache/helper state.

        The steady-state pattern: replay a warm-up prefix, call this,
        then measure the remainder without cold-start effects.
        """
        self.stats = LevelStats()
        if self.classifier is not None:
            self.classifier.reset_counts()

    def reset(self) -> None:
        self.cache.clear()
        self.augmentation.reset()
        if self.classifier is not None:
            self.classifier.reset()
        self.stats = LevelStats()

    def line_of(self, byte_address: int) -> int:
        return byte_address >> self._line_shift
