"""One level of the cache hierarchy: a direct-mapped array plus helpers.

:class:`CacheLevel` owns a direct-mapped tag store, an optional
:class:`~repro.buffers.base.L1Augmentation` (miss cache, victim cache,
stream buffer, or a composite), and an optional 3C miss classifier, and
drives them in the order the hardware would (probe array → consult
helpers → refill array → update helpers).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..buffers.base import L1Augmentation, NullAugmentation
from ..caches.direct_mapped import DirectMappedCache
from ..classify.miss_classifier import MissClassifier
from ..common.config import CacheConfig
from ..common.stats import safe_div
from ..common.types import AccessOutcome

__all__ = ["LevelStats", "CacheLevel"]

_HIT = AccessOutcome.HIT
_MISS = AccessOutcome.MISS
_MISS_CACHE_HIT = AccessOutcome.MISS_CACHE_HIT
_VICTIM_HIT = AccessOutcome.VICTIM_HIT
_STREAM_HIT = AccessOutcome.STREAM_HIT


class LevelStats:
    """Access counters for one cache level.

    Kept as plain ``__slots__`` integer counters (one per
    :class:`AccessOutcome`) rather than an outcome-keyed dict: the
    counters are bumped once per simulated reference, so avoiding enum
    hashing on every access is a measurable win.  The historical
    dict-shaped view is still available through :attr:`outcomes`.
    """

    __slots__ = (
        "accesses",
        "hits",
        "miss_cache_hits",
        "victim_hits",
        "stream_hits",
        "misses_to_next_level",
        "stream_stall_cycles",
    )

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.miss_cache_hits = 0
        self.victim_hits = 0
        self.stream_hits = 0
        self.misses_to_next_level = 0
        #: Extra stall cycles reported by availability-modelling stream buffers.
        self.stream_stall_cycles = 0

    @property
    def outcomes(self) -> Dict[AccessOutcome, int]:
        """Counter per outcome, in the historical dict shape."""
        return {
            _HIT: self.hits,
            _MISS_CACHE_HIT: self.miss_cache_hits,
            _VICTIM_HIT: self.victim_hits,
            _STREAM_HIT: self.stream_hits,
            _MISS: self.misses_to_next_level,
        }

    @property
    def demand_misses(self) -> int:
        """Misses of the direct-mapped array, removed or not.

        This is the paper's "miss rate" numerator: helper-structure hits
        are misses that were *removed* (made one-cycle), and figures
        like 3-3 count them as removed misses, not as hits.
        """
        return self.accesses - self.hits

    @property
    def removed_misses(self) -> int:
        return self.miss_cache_hits + self.victim_hits + self.stream_hits

    @property
    def miss_rate(self) -> float:
        return safe_div(self.demand_misses, self.accesses)

    @property
    def effective_miss_rate(self) -> float:
        """Miss rate counting removed misses as hits (post-helper rate)."""
        return safe_div(self.misses_to_next_level, self.accesses)

    def record(self, outcome: AccessOutcome) -> None:
        self.accesses += 1
        if outcome is _HIT:
            self.hits += 1
        elif outcome is _MISS:
            self.misses_to_next_level += 1
        elif outcome is _MISS_CACHE_HIT:
            self.miss_cache_hits += 1
        elif outcome is _VICTIM_HIT:
            self.victim_hits += 1
        elif outcome is _STREAM_HIT:
            self.stream_hits += 1
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown outcome {outcome!r}")

    def as_dict(self) -> Dict[str, int]:
        """Plain-int snapshot of every counter (plus derived demand misses).

        The shape telemetry run records and external consumers see; keys
        are the slot names plus ``demand_misses``.
        """
        snapshot = {slot: getattr(self, slot) for slot in self.__slots__}
        snapshot["demand_misses"] = self.demand_misses
        return snapshot

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LevelStats):
            return NotImplemented
        return all(getattr(self, slot) == getattr(other, slot) for slot in self.__slots__)

    def __hash__(self) -> int:
        """Value hash consistent with ``__eq__``.

        Defining ``__eq__`` alone sets ``__hash__`` to None, which made
        instances unhashable and broke set/dict membership of result
        summaries.  The hash is value-based over mutable counters — as
        with any mutable value type, do not mutate an instance while a
        hash-based container holds it.
        """
        return hash(tuple(getattr(self, slot) for slot in self.__slots__))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{slot}={getattr(self, slot)}" for slot in self.__slots__)
        return f"LevelStats({fields})"


class CacheLevel:
    """A direct-mapped cache level with optional augmentation/classifier."""

    __slots__ = (
        "name",
        "config",
        "cache",
        "augmentation",
        "classifier",
        "stats",
        "_line_shift",
        "_aug_is_null",
    )

    def __init__(
        self,
        config: CacheConfig,
        augmentation: Optional[L1Augmentation] = None,
        classify: bool = False,
        name: str = "L1",
    ):
        self.name = name
        self.config = config
        self.cache = DirectMappedCache(config)
        self.augmentation = augmentation if augmentation is not None else NullAugmentation()
        # The baseline (no helper structure) is the common configuration;
        # skipping the augmentation's no-op callbacks keeps it cheap.
        self._aug_is_null = type(self.augmentation) is NullAugmentation
        self.classifier: Optional[MissClassifier] = (
            MissClassifier(config.num_lines) if classify else None
        )
        self.stats = LevelStats()
        self._line_shift = config.offset_bits

    def access(self, byte_address: int, now: int = 0) -> AccessOutcome:
        """Access by byte address (computes the line address internally)."""
        return self.access_line(byte_address >> self._line_shift, now)

    def access_line(self, line_addr: int, now: int = 0) -> AccessOutcome:
        """Access by line address; returns where the access was satisfied."""
        stats = self.stats
        stats.accesses += 1
        classifier = self.classifier
        hit = self.cache.access(line_addr)
        if classifier is not None:
            classifier.observe(line_addr, hit)
        if hit:
            if not self._aug_is_null:
                self.augmentation.on_l1_hit(line_addr, now)
            stats.hits += 1
            return _HIT
        if self._aug_is_null:
            self.cache.fill(line_addr)
            stats.misses_to_next_level += 1
            return _MISS
        augmentation = self.augmentation
        lookup = augmentation.lookup_on_miss(line_addr, now)
        victim = self.cache.fill(line_addr)
        augmentation.on_l1_fill(line_addr, victim, now)
        if lookup.stall_cycles:
            stats.stream_stall_cycles += lookup.stall_cycles
        if not lookup.satisfied:
            stats.misses_to_next_level += 1
            return _MISS
        outcome = lookup.outcome
        if outcome is _VICTIM_HIT:
            stats.victim_hits += 1
        elif outcome is _STREAM_HIT:
            stats.stream_hits += 1
        else:
            stats.miss_cache_hits += 1
        return outcome

    def reset_stats(self) -> None:
        """Zero the counters while keeping all cache/helper state.

        The steady-state pattern: replay a warm-up prefix, call this,
        then measure the remainder without cold-start effects.
        """
        self.stats = LevelStats()
        if self.classifier is not None:
            self.classifier.reset_counts()

    def reset(self) -> None:
        self.cache.clear()
        self.augmentation.reset()
        if self.classifier is not None:
            self.classifier.reset()
        self.stats = LevelStats()

    def line_of(self, byte_address: int) -> int:
        return byte_address >> self._line_shift
