"""Two-level memory hierarchy simulator and performance model."""

from .bandwidth import (
    BandwidthPoint,
    FetchMechanism,
    PipelinedMemoryInterface,
    bandwidth_sweep,
    sequential_fetch_cpi,
)
from .level import CacheLevel, LevelStats
from .performance import SystemPerformance, evaluate_performance
from .system import L2Stats, MemorySystem, SystemResult
from .timeline import TimelineResult, TimelineSimulator
from .write_policy import CoalescingWriteBuffer, WritePolicy, WritePolicyCache, WriteTraffic

__all__ = [
    "CacheLevel",
    "LevelStats",
    "MemorySystem",
    "SystemResult",
    "L2Stats",
    "SystemPerformance",
    "evaluate_performance",
    "WritePolicy",
    "WritePolicyCache",
    "WriteTraffic",
    "CoalescingWriteBuffer",
    "FetchMechanism",
    "PipelinedMemoryInterface",
    "BandwidthPoint",
    "bandwidth_sweep",
    "sequential_fetch_cpi",
    "TimelineSimulator",
    "TimelineResult",
]
