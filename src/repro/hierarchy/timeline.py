"""Cycle-approximate timeline simulation.

The aggregate model (:mod:`repro.hierarchy.performance`) charges every
removed miss exactly one cycle — the paper's assumption.  That is only
true when the stream buffer's head has actually *returned* from the
pipelined second level by the time it is demanded (§4.1 is explicit
that it may not have).  The timeline simulator replays a trace with a
real cycle clock: instruction issue advances it, miss penalties advance
it, and stream buffers built with ``model_availability=True`` report
not-ready stalls against it.

Comparing the two models per benchmark
(:mod:`repro.experiments.ext_timing_fidelity`) quantifies how much the
one-cycle assumption flatters the results — the honest answer to "is a
stream-buffer hit really free?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..buffers.base import L1Augmentation
from ..caches.direct_mapped import DirectMappedCache
from ..common.config import SystemConfig, baseline_system
from ..common.stats import safe_div
from ..common.types import AccessKind, AccessOutcome
from .level import CacheLevel

__all__ = ["TimelineResult", "TimelineSimulator"]


@dataclass
class TimelineResult:
    """Cycle accounting from one timeline replay."""

    instructions: int = 0
    data_references: int = 0
    cycles: int = 0
    #: Cycles spent on full L1 miss penalties.
    l1_penalty_cycles: int = 0
    #: Additional cycles on demand L2 misses.
    l2_penalty_cycles: int = 0
    #: One-cycle reloads of removed misses.
    removed_miss_cycles: int = 0
    #: Not-yet-returned stream-buffer head stalls (the honest part).
    availability_stall_cycles: int = 0

    @property
    def cycles_per_instruction(self) -> float:
        return safe_div(self.cycles, self.instructions, default=1.0)

    @property
    def percent_of_potential(self) -> float:
        return 100.0 * safe_div(self.instructions, self.cycles, default=1.0)


class TimelineSimulator:
    """Replay a trace against a real cycle clock.

    The clock advances one cycle per issued instruction, plus the
    memory-system penalties of the access that instruction (or its data
    reference) makes.  Stream buffers attached to either side should be
    constructed with ``model_availability=True`` so their prefetch
    completion times are measured against this clock; the simulator
    works with any augmentation either way.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        iaugmentation: Optional[L1Augmentation] = None,
        daugmentation: Optional[L1Augmentation] = None,
    ):
        self.config = config if config is not None else baseline_system()
        self.ilevel = CacheLevel(self.config.icache, iaugmentation, name="L1I")
        self.dlevel = CacheLevel(self.config.dcache, daugmentation, name="L1D")
        self.l2 = DirectMappedCache(self.config.l2)
        self._ishift = self.config.icache.offset_bits
        self._dshift = self.config.dcache.offset_bits
        self._l2_shift = self.config.l2.offset_bits
        self.result = TimelineResult()
        self.now = 0
        # Stream-buffer prefetches ride the pipelined interface without
        # stalling the CPU, but they do fill the L2 — mirror the
        # MemorySystem wiring (including the drain-after-demand order)
        # so the two models see identical L2 contents.
        self._pending_prefetches: list = []
        self._wire_prefetch_sinks(iaugmentation, self._ishift)
        self._wire_prefetch_sinks(daugmentation, self._dshift)

    def _wire_prefetch_sinks(self, augmentation: Optional[L1Augmentation], l1_shift: int) -> None:
        from .system import MemorySystem

        shift_to_l2 = self._l2_shift - l1_shift

        def sink(l1_line: int) -> None:
            self._pending_prefetches.append(l1_line >> shift_to_l2)

        for buffer in MemorySystem._stream_buffers(augmentation):
            if buffer.fetch_sink is None:
                buffer.fetch_sink = sink

    def prewarm_l2(self, trace: Iterable[Tuple[int, int]]) -> None:
        """Preload the L2 footprint (see MemorySystem.prewarm_l2)."""
        for _, byte_address in trace:
            self.l2.access_and_fill(byte_address >> self._l2_shift)

    def run(self, trace: Iterable[Tuple[int, int]]) -> TimelineResult:
        timing = self.config.timing
        result = self.result
        for kind, byte_address in trace:
            if kind == AccessKind.IFETCH:
                result.instructions += 1
                self.now += 1
                level, shift = self.ilevel, self._ishift
            else:
                result.data_references += 1
                level, shift = self.dlevel, self._dshift
            stalls_before = level.stats.stream_stall_cycles
            outcome = level.access_line(byte_address >> shift, self.now)
            if outcome is AccessOutcome.MISS:
                penalty = timing.l1_miss_penalty
                result.l1_penalty_cycles += penalty
                if not self.l2.access_and_fill(byte_address >> self._l2_shift):
                    result.l2_penalty_cycles += timing.l2_miss_penalty
                    penalty += timing.l2_miss_penalty
                self.now += penalty
            elif outcome.is_removed_miss:
                stall = level.stats.stream_stall_cycles - stalls_before
                result.removed_miss_cycles += timing.removed_miss_penalty
                result.availability_stall_cycles += stall
                self.now += timing.removed_miss_penalty + stall
            if self._pending_prefetches:
                for l2_line in self._pending_prefetches:
                    self.l2.access_and_fill(l2_line)
                self._pending_prefetches.clear()
        result.cycles = self.now
        return result
