"""Write-policy modelling — the tradeoff the paper defers in §2.

"The data cache may be either write-through or write-back, but this
paper does not examine those tradeoffs."  The baseline discussion does
lean on it, though: §2's bandwidth argument ("stores typically occur at
an average rate of 1 in every 6 or 7 instructions, [so] an unpipelined
external cache would not have even enough bandwidth to handle the store
traffic") assumes a write-through L1 with a write buffer.  This module
makes both policies measurable:

* **write-through, no-write-allocate** — every store is sent below;
  a small FIFO *write buffer* coalesces stores to lines it already
  holds, which is what keeps §2's store bandwidth plausible.
* **write-back, write-allocate** — stores dirty the line; dirty victims
  cost one line-sized write-back transfer when evicted.

The simulator reports transaction and byte traffic to the next level so
the two policies can be compared per workload
(:mod:`repro.experiments.ext_write_policy`).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from ..caches.direct_mapped import DirectMappedCache
from ..common.config import CacheConfig
from ..common.errors import ConfigurationError
from ..common.stats import safe_div
from ..common.types import AccessKind

__all__ = ["WritePolicy", "WriteTraffic", "CoalescingWriteBuffer", "WritePolicyCache"]

#: Size of one store on the processor side, in bytes.
_WORD_BYTES = 4


class WritePolicy(enum.Enum):
    WRITE_THROUGH = "write_through"
    WRITE_BACK = "write_back"


@dataclass
class WriteTraffic:
    """Traffic to the next level, split by cause."""

    accesses: int = 0
    loads: int = 0
    stores: int = 0
    misses: int = 0
    #: Line fills from below (demand misses that allocate).
    fills: int = 0
    #: Dirty lines written back on eviction (write-back policy).
    writebacks: int = 0
    #: Write-buffer entries retired to the next level (write-through).
    buffer_drains: int = 0
    #: Stores merged into an existing write-buffer entry.
    coalesced_stores: int = 0

    def bytes_to_next_level(self, line_size: int) -> int:
        """Total bytes moved to/from the next level."""
        fill_bytes = self.fills * line_size
        writeback_bytes = self.writebacks * line_size
        # A drained buffer entry carries at most a line; counting a full
        # line is the conservative (bandwidth-pessimal) accounting.
        drain_bytes = self.buffer_drains * line_size
        return fill_bytes + writeback_bytes + drain_bytes

    @property
    def miss_rate(self) -> float:
        return safe_div(self.misses, self.accesses)


class CoalescingWriteBuffer:
    """A small FIFO of line addresses absorbing write-through stores.

    A store whose line is already buffered coalesces (no new traffic);
    otherwise it allocates an entry, retiring the oldest entry to the
    next level when full.  ``flush()`` retires everything.
    """

    def __init__(self, entries: int = 4):
        if entries < 1:
            raise ConfigurationError(f"entries must be >= 1, got {entries}")
        self.entries = entries
        self._lines: "OrderedDict[int, None]" = OrderedDict()
        self.drains = 0
        self.coalesced = 0

    def write(self, line_addr: int) -> None:
        if line_addr in self._lines:
            self.coalesced += 1
            return
        if len(self._lines) >= self.entries:
            self._lines.popitem(last=False)
            self.drains += 1
        self._lines[line_addr] = None

    def flush(self) -> None:
        self.drains += len(self._lines)
        self._lines.clear()

    def occupancy(self) -> int:
        return len(self._lines)


class WritePolicyCache:
    """A direct-mapped data cache under an explicit write policy."""

    def __init__(
        self,
        config: CacheConfig,
        policy: WritePolicy,
        write_buffer_entries: int = 4,
    ):
        self.config = config
        self.policy = policy
        self.cache = DirectMappedCache(config)
        self._dirty: List[bool] = [False] * config.num_lines
        self.write_buffer: Optional[CoalescingWriteBuffer] = (
            CoalescingWriteBuffer(write_buffer_entries)
            if policy is WritePolicy.WRITE_THROUGH
            else None
        )
        self.traffic = WriteTraffic()
        self._shift = config.offset_bits

    def access(self, kind: AccessKind, byte_address: int) -> bool:
        """One data reference; returns True on a cache hit."""
        if kind == AccessKind.IFETCH:
            raise ValueError("WritePolicyCache models the data cache only")
        line = byte_address >> self._shift
        is_store = kind == AccessKind.STORE
        self.traffic.accesses += 1
        if is_store:
            self.traffic.stores += 1
        else:
            self.traffic.loads += 1
        hit = self.cache.access(line)
        if self.policy is WritePolicy.WRITE_THROUGH:
            return self._access_write_through(line, is_store, hit)
        return self._access_write_back(line, is_store, hit)

    def _access_write_through(self, line: int, is_store: bool, hit: bool) -> bool:
        if is_store:
            # Every store goes below, through the write buffer.
            self.write_buffer.write(line)
        if hit:
            return True
        self.traffic.misses += 1
        if not is_store:
            # No-write-allocate: only load misses fill the cache.
            self.traffic.fills += 1
            self.cache.fill(line)
        return False

    def _access_write_back(self, line: int, is_store: bool, hit: bool) -> bool:
        index = self.cache.index_of(line)
        if hit:
            if is_store:
                self._dirty[index] = True
            return True
        self.traffic.misses += 1
        self.traffic.fills += 1
        victim = self.cache.fill(line)
        if victim is not None and self._dirty[index]:
            self.traffic.writebacks += 1
        self._dirty[index] = is_store
        return False

    def finish(self) -> WriteTraffic:
        """Drain buffers / count dirty residue and return the totals.

        Dirty lines still resident at the end of the run are counted as
        write-backs (they must reach memory eventually); the write
        buffer is flushed.  Call once, after the last access.
        """
        if self.write_buffer is not None:
            self.write_buffer.flush()
            self.traffic.buffer_drains = self.write_buffer.drains
            self.traffic.coalesced_stores = self.write_buffer.coalesced
        else:
            self.traffic.writebacks += sum(self._dirty)
        return self.traffic
