"""Miss caching (paper §3.1).

A miss cache is a small (2–5 entry) fully-associative cache between the
first-level cache and its refill path.  On an L1 miss the data returned
from the second level is written both into the direct-mapped array *and*
into the miss cache, replacing the least recently used entry.  An L1 miss
whose address hits in the miss cache is serviced in one cycle instead of
paying the full off-chip penalty.

Because the requested line is loaded into both structures, every line in
the miss cache is (initially) a duplicate of a line in the L1 cache —
the observation that motivates victim caching (§3.2).
"""

from __future__ import annotations

from typing import Optional

from ..caches.fully_associative import FullyAssociativeCache, ReplacementPolicy
from ..common.stats import Histogram
from ..common.types import AccessOutcome
from .base import L1Augmentation, MISS_LOOKUP, MissLookup

__all__ = ["MissCache"]

_SATISFIED = MissLookup(True, AccessOutcome.MISS_CACHE_HIT, 0)


class MissCache(L1Augmentation):
    """A fully-associative LRU miss cache of *entries* lines.

    The optional stack-depth histogram (:attr:`hit_depths`) records, for
    every hit, the LRU depth at which the line was found.  Fed the same
    miss stream, a miss cache of ``k`` entries hits exactly the lookups
    whose depth is ``< k``, so a single run with a large miss cache
    yields the whole Figure 3-3 size sweep (see
    :mod:`repro.experiments.sweeps`).
    """

    def __init__(
        self,
        entries: int,
        track_depths: bool = False,
        policy: ReplacementPolicy = ReplacementPolicy.LRU,
    ):
        self.name = f"miss_cache[{entries}]"
        self.entries = entries
        self._store = FullyAssociativeCache(entries, policy)
        self.hits = 0
        self.lookups = 0
        self.hit_depths: Optional[Histogram] = Histogram() if track_depths else None

    def lookup_on_miss(self, line_addr: int, now: int) -> MissLookup:
        self.lookups += 1
        if self.hit_depths is not None:
            depth = self._store.depth_of(line_addr)
            if depth is not None:
                self.hit_depths.add(depth)
        if self._store.access(line_addr):
            self.hits += 1
            return _SATISFIED
        return MISS_LOOKUP

    def on_l1_fill(self, line_addr: int, victim: Optional[int], now: int) -> None:
        # Miss caching loads the *requested* line; the L1 victim is
        # simply discarded.  fill() refreshes LRU state when the line is
        # already resident (the miss-cache-hit case).
        self._store.fill(line_addr)

    def reset(self) -> None:
        self._store.clear()
        self.hits = 0
        self.lookups = 0
        if self.hit_depths is not None:
            self.hit_depths = Histogram()

    def contains(self, line_addr: int) -> bool:
        """Probe without side effects (testing aid)."""
        return self._store.probe(line_addr)

    def occupancy(self) -> int:
        return self._store.occupancy()

    def describe(self):
        """Declarative spec for this miss cache (spec ⇄ object round trip)."""
        from ..specs.structures import MissCacheSpec

        return MissCacheSpec(
            entries=self.entries,
            policy=self._store.policy.value,
            track_depths=self.hit_depths is not None,
        )
