"""The paper's contribution: miss caches, victim caches, stream buffers,
and the classical prefetch baselines they are compared against."""

from .base import CompositeAugmentation, L1Augmentation, MissLookup, NullAugmentation
from .miss_cache import MissCache
from .prefetch import PrefetchingCache, PrefetchScheme, PrefetchStats
from .stream_buffer import MultiWayStreamBuffer, StreamBuffer
from .stride import MultiWayStrideBuffer, StrideStreamBuffer
from .victim_cache import VictimCache

__all__ = [
    "L1Augmentation",
    "MissLookup",
    "NullAugmentation",
    "CompositeAugmentation",
    "MissCache",
    "VictimCache",
    "StreamBuffer",
    "MultiWayStreamBuffer",
    "StrideStreamBuffer",
    "MultiWayStrideBuffer",
    "PrefetchingCache",
    "PrefetchScheme",
    "PrefetchStats",
]
