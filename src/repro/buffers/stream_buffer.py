"""Sequential stream buffers (paper §4.1).

A stream buffer is a FIFO queue of (tag, available-bit, data-line)
entries allocated on an L1 miss.  It prefetches successive lines starting
*after* the miss target; prefetched lines live in the buffer, not the
cache, so useless prefetches never pollute the cache.  Only the head of
the queue has a tag comparator, and entries must be consumed strictly in
sequence: an L1 miss that matches the head moves that line into the cache
in one cycle and the freed slot prefetches the next sequential line; an
L1 miss that does not match the head flushes the buffer and re-allocates
it at the new miss address — even if the requested line is further down
the queue.

Availability timing models the paper's pipelined second-level interface
(§4.1's example: a 12-cycle fill latency with a new request accepted
every 4 cycles).  When enabled, a head match whose line has not yet
returned stalls for the remaining cycles rather than counting as a free
hit; when disabled (the default, as in the paper's miss-removal figures)
a head match always supplies the line.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..common.errors import ConfigurationError
from ..common.stats import Histogram
from ..common.types import AccessOutcome
from .base import L1Augmentation, MISS_LOOKUP, MissLookup

__all__ = ["StreamBuffer", "MultiWayStreamBuffer"]


class StreamBuffer(L1Augmentation):
    """A single sequential stream buffer of *entries* slots.

    Parameters
    ----------
    entries:
        Queue depth (the paper uses four).
    max_run:
        Maximum number of lines the buffer may prefetch after the
        allocating miss, or None for unbounded.  Figures 4-3/4-5 plot
        miss removal as a function of this quantity; following the
        paper, the experiments run unbounded and read the whole sweep
        off :attr:`run_offsets`.
    track_run_offsets:
        Record, for each buffer hit, the line's offset from the
        allocating miss (1 = the first prefetched line).
    model_availability / fill_latency / issue_interval:
        Enable the pipelined-L2 timing model described above.
    fetch_sink:
        Optional callable invoked with each prefetched line address; the
        memory system uses it to route prefetches through the L2 cache.
    head_only:
        The paper's simple design matches the head slot only.  Setting
        this False gives every slot a comparator (hits may skip ahead,
        dropping earlier entries) — an ablation discussed as an obvious
        extension and measured in :mod:`repro.experiments.ablations`.
    allocation_filter:
        The paper allocates on *every* miss, so isolated misses waste a
        whole buffer's worth of prefetch bandwidth.  With the filter on,
        a miss only *arms* the buffer; allocation waits for a second
        miss to the next sequential line (the classic follow-up fix,
        later literature's "allocation filter").  Trades one extra
        unremoved miss per stream for far less useless traffic —
        measured in :mod:`repro.experiments.ext_prefetch_traffic`.
    """

    def __init__(
        self,
        entries: int = 4,
        max_run: Optional[int] = None,
        track_run_offsets: bool = False,
        model_availability: bool = False,
        fill_latency: int = 12,
        issue_interval: int = 4,
        fetch_sink: Optional[Callable[[int], None]] = None,
        head_only: bool = True,
        allocation_filter: bool = False,
    ):
        if entries < 1:
            raise ConfigurationError(f"entries must be >= 1, got {entries}")
        if max_run is not None and max_run < 0:
            raise ConfigurationError(f"max_run must be >= 0, got {max_run}")
        self.name = f"stream_buffer[{entries}]"
        self.entries = entries
        self.max_run = max_run
        self.model_availability = model_availability
        self.fill_latency = fill_latency
        self.issue_interval = issue_interval
        self.fetch_sink = fetch_sink
        self.head_only = head_only
        self.allocation_filter = allocation_filter
        #: Line that would confirm a sequential stream (filter armed).
        self._armed_at: Optional[int] = None
        # Queue of (line_addr, ready_time); ready_time is 0 when
        # availability is not modelled.
        self._queue: Deque[Tuple[int, int]] = deque()
        self._next_line = 0
        self._run_origin: Optional[int] = None
        self._prefetched_in_run = 0
        self._next_issue_time = 0
        self.hits = 0
        self.lookups = 0
        self.allocations = 0
        self.prefetches_issued = 0
        self.stall_cycles_total = 0
        self.run_offsets: Optional[Histogram] = Histogram() if track_run_offsets else None

    # -- L1Augmentation interface ------------------------------------------

    def lookup_on_miss(self, line_addr: int, now: int) -> MissLookup:
        self.lookups += 1
        hit_position = self._match(line_addr)
        if hit_position is None:
            if self.allocation_filter and line_addr != self._armed_at:
                # First miss of a potential stream: arm only.
                self._queue.clear()
                self._armed_at = line_addr + 1
                return MISS_LOOKUP
            self._armed_at = None
            self._allocate(line_addr, now)
            return MISS_LOOKUP
        # A full-comparator buffer may match below the head; the skipped
        # entries are discarded (they were for lines the stream jumped over).
        for _ in range(hit_position):
            self._queue.popleft()
        matched_line, ready_time = self._queue.popleft()
        assert matched_line == line_addr
        self.hits += 1
        if self.run_offsets is not None and self._run_origin is not None:
            self.run_offsets.add(line_addr - self._run_origin)
        stall = 0
        if self.model_availability and ready_time > now:
            stall = ready_time - now
            self.stall_cycles_total += stall
        self._top_up(now)
        return MissLookup(True, AccessOutcome.STREAM_HIT, stall)

    def reset(self) -> None:
        self._queue.clear()
        self._armed_at = None
        self._run_origin = None
        self._prefetched_in_run = 0
        self._next_issue_time = 0
        self.hits = 0
        self.lookups = 0
        self.allocations = 0
        self.prefetches_issued = 0
        self.stall_cycles_total = 0
        if self.run_offsets is not None:
            self.run_offsets = Histogram()

    # -- internals ----------------------------------------------------------

    def _match(self, line_addr: int) -> Optional[int]:
        """Position of *line_addr* in the queue, respecting head_only."""
        if not self._queue:
            return None
        if self.head_only:
            return 0 if self._queue[0][0] == line_addr else None
        for position, (line, _) in enumerate(self._queue):
            if line == line_addr:
                return position
        return None

    def _allocate(self, miss_line: int, now: int) -> None:
        """Flush and begin prefetching successive lines after *miss_line*.

        The missed line itself arrives through the normal refill path;
        the buffer starts at the next sequential line (§4.1: "lines
        after the line requested on the miss are placed in the buffer").
        """
        self._queue.clear()
        self._run_origin = miss_line
        self._next_line = miss_line + 1
        self._prefetched_in_run = 0
        self.allocations += 1
        # The demand miss itself occupies the first slot of the pipelined
        # interface; prefetch requests stream out behind it.
        self._next_issue_time = now + self.issue_interval
        while len(self._queue) < self.entries and self._run_allows_more():
            self._issue_prefetch()

    def _top_up(self, now: int) -> None:
        if self._next_issue_time < now + self.issue_interval:
            self._next_issue_time = now + self.issue_interval
        while len(self._queue) < self.entries and self._run_allows_more():
            self._issue_prefetch()

    def _run_allows_more(self) -> bool:
        return self.max_run is None or self._prefetched_in_run < self.max_run

    def _issue_prefetch(self) -> None:
        ready_time = 0
        if self.model_availability:
            ready_time = self._next_issue_time + self.fill_latency
            self._next_issue_time += self.issue_interval
        self._queue.append((self._next_line, ready_time))
        if self.fetch_sink is not None:
            self.fetch_sink(self._next_line)
        self._next_line += 1
        self._prefetched_in_run += 1
        self.prefetches_issued += 1

    # -- introspection (testing aids) ----------------------------------------

    def buffered_lines(self) -> List[int]:
        return [line for line, _ in self._queue]

    def head_line(self) -> Optional[int]:
        return self._queue[0][0] if self._queue else None

    def describe(self):
        """Declarative spec, or :class:`~repro.specs.SpecError` when the
        buffer holds a live ``fetch_sink`` callable (not serializable)."""
        from ..specs.structures import SpecError, StreamBufferSpec

        if self.fetch_sink is not None:
            raise SpecError(
                "StreamBuffer with a fetch_sink callable cannot be expressed "
                "as a declarative spec"
            )
        return StreamBufferSpec(
            entries=self.entries,
            max_run=self.max_run,
            track_run_offsets=self.run_offsets is not None,
            model_availability=self.model_availability,
            fill_latency=self.fill_latency,
            issue_interval=self.issue_interval,
            head_only=self.head_only,
            allocation_filter=self.allocation_filter,
        )


class MultiWayStreamBuffer(L1Augmentation):
    """Several stream buffers in parallel with LRU allocation (§4.2).

    On an L1 miss the heads of all ways are compared; a match consumes
    from that way and marks it most recently used.  A miss that hits in
    no way clears the least recently *hit* way and re-allocates it at the
    miss address, letting the structure follow several interleaved
    sequential streams (the paper uses four ways for the data side).
    """

    def __init__(
        self,
        ways: int = 4,
        entries: int = 4,
        max_run: Optional[int] = None,
        track_run_offsets: bool = False,
        model_availability: bool = False,
        fill_latency: int = 12,
        issue_interval: int = 4,
        fetch_sink: Optional[Callable[[int], None]] = None,
        head_only: bool = True,
        allocation_filter: bool = False,
    ):
        if ways < 1:
            raise ConfigurationError(f"ways must be >= 1, got {ways}")
        self.name = f"stream_buffer[{ways}x{entries}]"
        self.ways = ways
        self._buffers = [
            StreamBuffer(
                entries=entries,
                max_run=max_run,
                track_run_offsets=track_run_offsets,
                model_availability=model_availability,
                fill_latency=fill_latency,
                issue_interval=issue_interval,
                fetch_sink=fetch_sink,
                head_only=head_only,
                allocation_filter=allocation_filter,
            )
            for _ in range(ways)
        ]
        # LRU order of ways: index 0 is least recently used/hit.
        self._lru_order = list(range(ways))
        self.hits = 0
        self.lookups = 0

    def lookup_on_miss(self, line_addr: int, now: int) -> MissLookup:
        self.lookups += 1
        for way in self._lru_order:
            buffer = self._buffers[way]
            if buffer._match(line_addr) is not None:
                result = buffer.lookup_on_miss(line_addr, now)
                assert result.satisfied
                self.hits += 1
                self._touch(way)
                return result
        victim_way = self._lru_order[0]
        # With allocation filtering, a sequential miss must reach the way
        # that armed on its predecessor, or confirmation never happens.
        for way, buffer in enumerate(self._buffers):
            if buffer.allocation_filter and buffer._armed_at == line_addr:
                victim_way = way
                break
        # _allocate via a full lookup so the chosen way's counters stay
        # coherent with its own view of the miss stream.
        self._buffers[victim_way].lookup_on_miss(line_addr, now)
        self._touch(victim_way)
        return MISS_LOOKUP

    def reset(self) -> None:
        for buffer in self._buffers:
            buffer.reset()
        self._lru_order = list(range(self.ways))
        self.hits = 0
        self.lookups = 0

    def _touch(self, way: int) -> None:
        self._lru_order.remove(way)
        self._lru_order.append(way)

    # -- aggregated introspection ---------------------------------------------

    @property
    def run_offsets(self) -> Optional[Histogram]:
        """Merged run-offset histogram across all ways (or None)."""
        merged: Optional[Histogram] = None
        for buffer in self._buffers:
            if buffer.run_offsets is None:
                return None
            if merged is None:
                merged = Histogram()
            merged.merge(buffer.run_offsets)
        return merged

    @property
    def prefetches_issued(self) -> int:
        return sum(b.prefetches_issued for b in self._buffers)

    @property
    def stall_cycles_total(self) -> int:
        return sum(b.stall_cycles_total for b in self._buffers)

    def way_buffers(self) -> List[StreamBuffer]:
        """The underlying per-way buffers (testing aid)."""
        return list(self._buffers)

    def describe(self):
        """Declarative spec derived from way 0 (ways are built alike)."""
        from ..specs.structures import MultiWayStreamBufferSpec, SpecError

        template = self._buffers[0]
        if template.fetch_sink is not None:
            raise SpecError(
                "MultiWayStreamBuffer with a fetch_sink callable cannot be "
                "expressed as a declarative spec"
            )
        return MultiWayStreamBufferSpec(
            ways=self.ways,
            entries=template.entries,
            max_run=template.max_run,
            track_run_offsets=template.run_offsets is not None,
            model_availability=template.model_availability,
            fill_latency=template.fill_latency,
            issue_interval=template.issue_interval,
            head_only=template.head_only,
            allocation_filter=template.allocation_filter,
        )
