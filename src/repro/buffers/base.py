"""Interface between a first-level cache and its helper structures.

The paper's structures all live *behind* the L1 cache, outside the
critical path (§2): they are consulted only when the direct-mapped array
misses, and updated when it is refilled.  The :class:`L1Augmentation`
interface captures that contract.  The cache level
(:class:`repro.hierarchy.level.CacheLevel`) drives it as follows for each
access to line ``L`` at cycle ``now``:

1. L1 hit  → ``on_l1_hit(L, now)``; done.
2. L1 miss → ``lookup_on_miss(L, now)``; the augmentation reports whether
   it can supply the line in one cycle and how many extra stall cycles
   (if it models availability).
3. The L1 array is refilled with ``L`` regardless of where the data came
   from, evicting ``victim`` → ``on_l1_fill(L, victim, now)``.

Because step 3 happens on *every* miss, the direct-mapped array's state
evolution is completely independent of the augmentation — exactly the
property §3 relies on and which the single-pass sweeps exploit.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..common.types import AccessOutcome

__all__ = ["MissLookup", "L1Augmentation", "NullAugmentation", "CompositeAugmentation"]


@dataclass(frozen=True)
class MissLookup:
    """Result of consulting an augmentation about an L1 miss."""

    #: True when the structure supplies the line (a "removed" miss).
    satisfied: bool
    #: What the outcome should be recorded as when satisfied.
    outcome: AccessOutcome = AccessOutcome.MISS
    #: Extra stall cycles beyond the one-cycle reload (stream buffers
    #: whose head has been requested but not yet returned by the
    #: pipelined L2; zero when availability is not modelled).
    stall_cycles: int = 0


#: Shared "nothing helped" lookup result.
MISS_LOOKUP = MissLookup(False, AccessOutcome.MISS, 0)


class L1Augmentation(abc.ABC):
    """A structure attached to the refill path of a first-level cache."""

    #: Human-readable name used in reports.
    name: str = "augmentation"

    def on_l1_hit(self, line_addr: int, now: int) -> None:
        """Called for every L1 hit.  Most structures ignore hits."""

    @abc.abstractmethod
    def lookup_on_miss(self, line_addr: int, now: int) -> MissLookup:
        """Consult the structure about an L1 miss and update its state."""

    def on_l1_fill(self, line_addr: int, victim: Optional[int], now: int) -> None:
        """Called after the L1 array is refilled (victim may be None)."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Restore pristine state between simulation runs."""


class NullAugmentation(L1Augmentation):
    """The baseline: a bare direct-mapped cache with no helpers."""

    name = "none"

    def lookup_on_miss(self, line_addr: int, now: int) -> MissLookup:
        return MISS_LOOKUP

    def reset(self) -> None:
        pass


class CompositeAugmentation(L1Augmentation):
    """Several structures behind one cache, as in the §5 combined system.

    Every member observes every miss (so each keeps the state it would
    have alone), and the recorded outcome is the *first* member that
    satisfied the miss.  The number of misses satisfied by more than one
    member is tracked in :attr:`overlap_hits`, which is precisely the
    victim-cache/stream-buffer overlap statistic quoted in §5.
    """

    name = "composite"

    def __init__(self, members: Sequence[L1Augmentation]):
        if not members:
            raise ValueError("CompositeAugmentation needs at least one member")
        self.members: List[L1Augmentation] = list(members)
        self.overlap_hits = 0
        self.total_misses = 0

    def on_l1_hit(self, line_addr: int, now: int) -> None:
        for member in self.members:
            member.on_l1_hit(line_addr, now)

    def lookup_on_miss(self, line_addr: int, now: int) -> MissLookup:
        self.total_misses += 1
        results = [member.lookup_on_miss(line_addr, now) for member in self.members]
        satisfied = [r for r in results if r.satisfied]
        if len(satisfied) > 1:
            self.overlap_hits += 1
        if satisfied:
            return satisfied[0]
        return MISS_LOOKUP

    def on_l1_fill(self, line_addr: int, victim: Optional[int], now: int) -> None:
        for member in self.members:
            member.on_l1_fill(line_addr, victim, now)

    def reset(self) -> None:
        self.overlap_hits = 0
        self.total_misses = 0
        for member in self.members:
            member.reset()

    def describe(self):
        """Declarative spec: the member specs, in order.

        Raises :class:`~repro.specs.SpecError` (via the member) when any
        member cannot itself be described.
        """
        from ..specs.structures import CompositeSpec, describe

        return CompositeSpec(members=tuple(describe(member) for member in self.members))
