"""Stride stream buffers — the paper's §5 future work.

§4.1 concedes the limitation: "If an array is accessed in the
non-unit-stride direction (and the other dimensions have non-trivial
extents) then a stream buffer as presented here will be of little
benefit", and §5 lists non-unit and mixed stride access patterns as
future work.  This module implements the natural extension the paper
gestures at (later literature calls it a stride prefetcher): a stream
buffer that *learns its stride from the miss stream* instead of
assuming +1.

Allocation works in two steps.  A miss that matches no buffer records a
pending ``last_miss``; the next miss within ``max_stride`` lines of it
fixes the stride (which may be negative, and is 1 for ordinary
sequential streams), and the buffer starts prefetching ``miss + k*stride``.
After that it behaves exactly like the paper's FIFO buffer: only the
head is matched, entries are consumed strictly in sequence, and a
non-matching miss eventually steals the least recently used way.

With ``ways=1`` and unit stride this degenerates to §4.1's single
sequential buffer; the equivalence is pinned by tests.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from ..common.errors import ConfigurationError
from ..common.stats import Histogram
from ..common.types import AccessOutcome
from .base import L1Augmentation, MISS_LOOKUP, MissLookup

__all__ = ["StrideStreamBuffer", "MultiWayStrideBuffer"]

_SATISFIED = MissLookup(True, AccessOutcome.STREAM_HIT, 0)


class StrideStreamBuffer(L1Augmentation):
    """A single stream buffer with a learned (possibly non-unit) stride.

    Parameters
    ----------
    entries:
        Queue depth, as in the sequential buffer.
    max_stride:
        Largest |stride| (in lines) accepted when pairing two misses
        into a stream.  Misses further apart than this re-arm the
        detector instead of fixing a stride.
    min_stride:
        Smallest |stride| accepted; 1 accepts sequential streams.
    fetch_sink:
        Optional callable receiving each prefetched line address.
    """

    def __init__(
        self,
        entries: int = 4,
        max_stride: int = 256,
        min_stride: int = 1,
        track_run_offsets: bool = False,
        fetch_sink: Optional[Callable[[int], None]] = None,
    ):
        if entries < 1:
            raise ConfigurationError(f"entries must be >= 1, got {entries}")
        if min_stride < 1 or max_stride < min_stride:
            raise ConfigurationError(
                f"need 1 <= min_stride <= max_stride, got {min_stride}..{max_stride}"
            )
        self.name = f"stride_buffer[{entries}]"
        self.entries = entries
        self.max_stride = max_stride
        self.min_stride = min_stride
        self.fetch_sink = fetch_sink
        self._queue: Deque[int] = deque()
        self.stride: Optional[int] = None
        self._next_line = 0
        self._last_miss: Optional[int] = None
        self._hits_this_run = 0
        self.hits = 0
        self.lookups = 0
        self.allocations = 0
        self.prefetches_issued = 0
        self.run_offsets: Optional[Histogram] = Histogram() if track_run_offsets else None

    # -- L1Augmentation interface ------------------------------------------

    def lookup_on_miss(self, line_addr: int, now: int) -> MissLookup:
        self.lookups += 1
        if self._queue and self._queue[0] == line_addr:
            self._queue.popleft()
            self.hits += 1
            self._hits_this_run += 1
            if self.run_offsets is not None:
                self.run_offsets.add(self._hits_this_run)
            self._top_up()
            return _SATISFIED
        self._observe_miss(line_addr)
        return MISS_LOOKUP

    def reset(self) -> None:
        self._queue.clear()
        self.stride = None
        self._last_miss = None
        self._hits_this_run = 0
        self.hits = 0
        self.lookups = 0
        self.allocations = 0
        self.prefetches_issued = 0
        if self.run_offsets is not None:
            self.run_offsets = Histogram()

    # -- internals ------------------------------------------------------------

    def _observe_miss(self, line_addr: int) -> None:
        """Two-miss stride detection, then allocation.

        A repeat miss on the *same* line (delta 0 — a mapping conflict
        re-fetching a line the stream already passed) neither confirms
        nor refutes the stride, so an active stream is re-armed from the
        same point instead of being torn down.
        """
        self._queue.clear()
        self._hits_this_run = 0
        if self._last_miss is not None:
            delta = line_addr - self._last_miss
            if delta == 0 and self.stride is not None:
                self._allocate(line_addr, self.stride)
                return
            if self.min_stride <= abs(delta) <= self.max_stride:
                self._allocate(line_addr, delta)
                self._last_miss = line_addr
                return
        self.stride = None
        self._last_miss = line_addr

    def _allocate(self, miss_line: int, stride: int) -> None:
        self.stride = stride
        self._next_line = miss_line + stride
        self.allocations += 1
        self._top_up()

    def _top_up(self) -> None:
        if self.stride is None:
            return
        while len(self._queue) < self.entries:
            line = self._next_line
            if line < 0:
                # A negative stride walked off the bottom of memory.
                break
            self._queue.append(line)
            if self.fetch_sink is not None:
                self.fetch_sink(line)
            self._next_line += self.stride
            self.prefetches_issued += 1

    # -- introspection -----------------------------------------------------------

    def buffered_lines(self) -> List[int]:
        return list(self._queue)

    def head_line(self) -> Optional[int]:
        return self._queue[0] if self._queue else None

    def describe(self):
        """Declarative spec, or :class:`~repro.specs.SpecError` when the
        buffer holds a live ``fetch_sink`` callable (not serializable)."""
        from ..specs.structures import SpecError, StrideBufferSpec

        if self.fetch_sink is not None:
            raise SpecError(
                "StrideStreamBuffer with a fetch_sink callable cannot be "
                "expressed as a declarative spec"
            )
        return StrideBufferSpec(
            entries=self.entries,
            max_stride=self.max_stride,
            min_stride=self.min_stride,
            track_run_offsets=self.run_offsets is not None,
        )


class MultiWayStrideBuffer(L1Augmentation):
    """Several stride buffers in parallel with LRU allocation.

    The multi-way arrangement matters even more here than in §4.2: a
    column-major sweep of several matrices produces interleaved
    constant-stride miss streams, each of which needs its own detector.
    A miss that hits no head is fed to the least recently *hit* way,
    whose detector pairs it with that way's previous miss.
    """

    def __init__(
        self,
        ways: int = 4,
        entries: int = 4,
        max_stride: int = 256,
        min_stride: int = 1,
        track_run_offsets: bool = False,
        fetch_sink: Optional[Callable[[int], None]] = None,
    ):
        if ways < 1:
            raise ConfigurationError(f"ways must be >= 1, got {ways}")
        self.name = f"stride_buffer[{ways}x{entries}]"
        self.ways = ways
        self._buffers = [
            StrideStreamBuffer(
                entries=entries,
                max_stride=max_stride,
                min_stride=min_stride,
                track_run_offsets=track_run_offsets,
                fetch_sink=fetch_sink,
            )
            for _ in range(ways)
        ]
        self._lru_order = list(range(ways))
        self.hits = 0
        self.lookups = 0

    def lookup_on_miss(self, line_addr: int, now: int) -> MissLookup:
        self.lookups += 1
        for way in self._lru_order:
            buffer = self._buffers[way]
            if buffer.head_line() == line_addr:
                result = buffer.lookup_on_miss(line_addr, now)
                assert result.satisfied
                self.hits += 1
                self._touch(way)
                return result
        victim_way = self._pick_observer(line_addr)
        self._buffers[victim_way].lookup_on_miss(line_addr, now)
        self._touch(victim_way)
        return MISS_LOOKUP

    def _pick_observer(self, line_addr: int) -> int:
        """Choose which way should absorb an unmatched miss.

        Interleaved streams would defeat plain LRU allocation: each
        way's stride detector would pair misses from *different*
        streams.  Instead, the miss goes to the way whose previous miss
        is nearest (within the stride window) — almost certainly the
        same stream — and only falls back to the least recently used
        way when no way is plausibly related.
        """
        best_way: Optional[int] = None
        best_delta = 0
        for way, buffer in enumerate(self._buffers):
            if buffer._last_miss is None:
                continue
            delta = abs(line_addr - buffer._last_miss)
            if (delta == 0 or buffer.min_stride <= delta <= buffer.max_stride) and (
                best_way is None or delta < best_delta
            ):
                best_way = way
                best_delta = delta
        if best_way is not None:
            return best_way
        return self._lru_order[0]

    def reset(self) -> None:
        for buffer in self._buffers:
            buffer.reset()
        self._lru_order = list(range(self.ways))
        self.hits = 0
        self.lookups = 0

    def _touch(self, way: int) -> None:
        self._lru_order.remove(way)
        self._lru_order.append(way)

    def way_buffers(self) -> List[StrideStreamBuffer]:
        return list(self._buffers)

    @property
    def prefetches_issued(self) -> int:
        return sum(b.prefetches_issued for b in self._buffers)

    def describe(self):
        """Declarative spec derived from way 0 (ways are built alike)."""
        from ..specs.structures import MultiWayStrideBufferSpec, SpecError

        template = self._buffers[0]
        if template.fetch_sink is not None:
            raise SpecError(
                "MultiWayStrideBuffer with a fetch_sink callable cannot be "
                "expressed as a declarative spec"
            )
        return MultiWayStrideBufferSpec(
            ways=self.ways,
            entries=template.entries,
            max_stride=template.max_stride,
            min_stride=template.min_stride,
            track_run_offsets=template.run_offsets is not None,
        )
