"""Classical cache prefetching schemes (paper §4, after Smith [13]).

The paper contrasts stream buffers with the three prefetch techniques
analysed by Smith:

* **prefetch always** — every reference to line ``X`` prefetches ``X+1``;
  impractical at the paper's issue rates but an upper bound on lead time.
* **prefetch on miss** — a demand miss on ``X`` also fetches ``X+1``;
  halves the misses of a purely sequential stream.
* **tagged prefetch** — each block carries a tag bit, cleared when the
  block is prefetched and set on first use; a zero-to-one transition
  prefetches the successor.  Can drive sequential-stream misses to zero,
  *if the prefetch returns in time*.

Unlike stream buffers, these schemes place prefetched lines directly in
the cache (pollution) and have at most one prefetch in flight per
trigger.  :class:`PrefetchingCache` simulates a direct-mapped cache under
one of the schemes and records the *lead time* of every useful prefetch —
the number of instruction issues between launching a prefetch and the
first demand reference to that line — which is exactly the quantity
Figure 4-1 plots for ccom's instruction stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from ..caches.direct_mapped import DirectMappedCache
from ..common.config import CacheConfig
from ..common.stats import Histogram, percent

__all__ = ["PrefetchScheme", "PrefetchingCache", "PrefetchStats"]


class PrefetchScheme(enum.Enum):
    """Smith's three sequential-prefetch policies."""

    ALWAYS = "prefetch_always"
    ON_MISS = "prefetch_on_miss"
    TAGGED = "tagged_prefetch"


@dataclass
class PrefetchStats:
    """Counters accumulated by a :class:`PrefetchingCache` run."""

    accesses: int = 0
    hits: int = 0
    demand_misses: int = 0
    prefetches_issued: int = 0
    #: Prefetched lines that were demanded before eviction.
    useful_prefetches: int = 0
    #: Prefetched lines evicted (or overwritten) before any use.
    wasted_prefetches: int = 0
    #: Instruction issues between prefetch launch and first demand use.
    lead_times: Histogram = field(default_factory=Histogram)

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.demand_misses / self.accesses

    def percent_needed_within(self, budget: int) -> float:
        """Share of useful prefetches demanded within *budget* issues."""
        return percent(self.lead_times.count_at_most(budget), self.useful_prefetches)


class PrefetchingCache:
    """A direct-mapped cache running one classical prefetch scheme.

    The caller supplies a monotonically non-decreasing *now* (instruction
    issue count) with each access; lead times are measured in that unit.
    Prefetches are modelled as completing instantly — Figure 4-1 is about
    *how much time the machine would have had*, so the distribution of
    lead times is the result, not a stall count.
    """

    def __init__(self, config: CacheConfig, scheme: PrefetchScheme):
        self.config = config
        self.scheme = scheme
        self.cache = DirectMappedCache(config)
        #: Tag bit per cache slot for the tagged scheme: True once used.
        self._used_bit: List[bool] = [True] * self.cache.num_lines
        #: line -> issue time of its outstanding (unused) prefetch.
        self._outstanding: Dict[int, int] = {}
        self.stats = PrefetchStats()

    def access(self, line_addr: int, now: int) -> bool:
        """Perform one demand access; returns True on a cache hit."""
        self.stats.accesses += 1
        index = self.cache.index_of(line_addr)
        if self.cache.probe(line_addr):
            self.stats.hits += 1
            first_use = not self._used_bit[index]
            if first_use:
                self._used_bit[index] = True
                self._credit_prefetch(line_addr, now)
                if self.scheme is PrefetchScheme.TAGGED:
                    self._prefetch(line_addr + 1, now)
            if self.scheme is PrefetchScheme.ALWAYS:
                self._prefetch(line_addr + 1, now)
            return True
        # Demand miss: fetch the line; it arrives already "used".
        self.stats.demand_misses += 1
        self._install(line_addr, used=True)
        # Every scheme prefetches the successor on a demand miss: tagged
        # treats the demand fetch as the zero-to-one transition, and
        # prefetch-always subsumes on-miss behaviour.
        self._prefetch(line_addr + 1, now)
        return False

    def reset(self) -> None:
        self.cache.clear()
        self._used_bit = [True] * self.cache.num_lines
        self._outstanding.clear()
        self.stats = PrefetchStats()

    # -- internals ------------------------------------------------------------

    def _install(self, line_addr: int, used: bool) -> None:
        index = self.cache.index_of(line_addr)
        victim = self.cache.resident_at(index)
        if victim is not None and victim != line_addr and not self._used_bit[index]:
            # A never-used prefetched line is being overwritten.
            self.stats.wasted_prefetches += 1
            self._outstanding.pop(victim, None)
        self.cache.fill(line_addr)
        self._used_bit[index] = used

    def _prefetch(self, line_addr: int, now: int) -> None:
        if self.cache.probe(line_addr) or line_addr in self._outstanding:
            return
        self.stats.prefetches_issued += 1
        self._install(line_addr, used=False)
        self._outstanding[line_addr] = now

    def _credit_prefetch(self, line_addr: int, now: int) -> None:
        issued_at = self._outstanding.pop(line_addr, None)
        if issued_at is None:
            return
        self.stats.useful_prefetches += 1
        self.stats.lead_times.add(now - issued_at)
