"""Victim caching (paper §3.2).

Victim caching is miss caching with a better replacement rule, suggested
to Jouppi by Alan Eustace: instead of loading the small fully-associative
cache with the *requested* line, load it with the *victim* line evicted
from the direct-mapped cache.  On an L1 miss that hits in the victim
cache, the direct-mapped line and the victim-cache line are *swapped*.

The consequence is an exclusivity invariant — no line is ever resident in
both the direct-mapped cache and the victim cache — so even a one-entry
victim cache is useful, and a victim cache of ``k`` entries captures
twice the conflicting working set a miss cache of ``k`` entries can
(one set of conflicting lines lives in L1, the other in the victim
cache, trading places as execution alternates).
"""

from __future__ import annotations

from typing import Optional

from ..caches.fully_associative import FullyAssociativeCache, ReplacementPolicy
from ..common.stats import Histogram
from ..common.types import AccessOutcome
from .base import L1Augmentation, MISS_LOOKUP, MissLookup

__all__ = ["VictimCache"]

_SATISFIED = MissLookup(True, AccessOutcome.VICTIM_HIT, 0)


class VictimCache(L1Augmentation):
    """A fully-associative LRU victim cache of *entries* lines.

    With ``swap_on_hit=True`` (the paper's design) a hit removes the line
    from the victim cache — it moves into L1, and the displaced L1 line
    arrives via :meth:`on_l1_fill`.  Setting it to False keeps a copy in
    the victim cache instead, an ablation that breaks exclusivity and is
    measured in :mod:`repro.experiments.ablations`.

    As with :class:`~repro.buffers.miss_cache.MissCache`, the insertion
    stream (L1 victims) does not depend on the victim cache's size, so a
    depth histogram from one large run reproduces the whole Figure 3-5
    entry sweep.
    """

    def __init__(
        self,
        entries: int,
        track_depths: bool = False,
        swap_on_hit: bool = True,
        policy: ReplacementPolicy = ReplacementPolicy.LRU,
    ):
        self.name = f"victim_cache[{entries}]"
        self.entries = entries
        self.swap_on_hit = swap_on_hit
        self._store = FullyAssociativeCache(entries, policy)
        self.hits = 0
        self.lookups = 0
        self.hit_depths: Optional[Histogram] = Histogram() if track_depths else None

    def lookup_on_miss(self, line_addr: int, now: int) -> MissLookup:
        self.lookups += 1
        if self.hit_depths is not None:
            depth = self._store.depth_of(line_addr)
            if depth is not None:
                self.hit_depths.add(depth)
        if self._store.probe(line_addr):
            self.hits += 1
            if self.swap_on_hit:
                # The line migrates into the direct-mapped cache; the L1
                # victim will be inserted by on_l1_fill, completing the swap.
                self._store.invalidate(line_addr)
            else:
                self._store.access(line_addr)
            return _SATISFIED
        return MISS_LOOKUP

    def on_l1_fill(self, line_addr: int, victim: Optional[int], now: int) -> None:
        # Victim caching saves the line thrown out of the direct-mapped
        # cache.  A cold L1 set evicts nothing, so nothing is inserted.
        if victim is not None:
            self._store.fill(victim)

    def reset(self) -> None:
        self._store.clear()
        self.hits = 0
        self.lookups = 0
        if self.hit_depths is not None:
            self.hit_depths = Histogram()

    def contains(self, line_addr: int) -> bool:
        """Probe without side effects (testing aid)."""
        return self._store.probe(line_addr)

    def occupancy(self) -> int:
        return self._store.occupancy()

    def resident_lines(self):
        """Iterate resident lines (used by the exclusivity property test)."""
        return self._store.resident_lines()

    def describe(self):
        """Declarative spec for this victim cache (spec ⇄ object round trip)."""
        from ..specs.structures import VictimCacheSpec

        return VictimCacheSpec(
            entries=self.entries,
            policy=self._store.policy.value,
            swap_on_hit=self.swap_on_hit,
            track_depths=self.hit_depths is not None,
        )
