"""Structured per-run records, emitted as JSON Lines.

One :class:`RunRecord` describes one logical run — typically one
experiment module executed by ``repro-experiments --emit-metrics PATH``.
The record is a flat, schema-versioned JSON object so downstream tools
(dashboards, regression gates, ad-hoc ``jq``) can consume it without
importing this package:

.. code-block:: json

    {"schema_version": 2, "run": "figure_3_3", "trace": null,
     "scale": 1500, "seed": 0, "config_hash": "9f2c...",
     "spec": {"trace": null, "config": {"...": "..."}, "structure": null,
              "side": "d", "warmup": 0, "classify": false},
     "jobs": 4, "mode": "parallel", "wall_time_s": 1.93,
     "sim_wall_time_s": 1.81,
     "references": 612000, "references_per_sec": 338121.5,
     "system_runs": 0, "level_runs": 12,
     "l1i": {}, "l1d": {}, "l2": {}, "level": {"accesses": 612000},
     "engine": {"job_batches": [], "fallbacks": []}}

Schema version 2 embeds the run's :class:`~repro.specs.SystemSpec` (as
its canonical dict) and derives ``config_hash`` from the spec's
canonical JSON, so a record is replayable from itself:
``SystemSpec.from_dict(record.spec)`` rebuilds the exact configuration
that produced it, and equal hashes mean equal specs field-for-field.

Counter groups (``l1i``/``l1d``/``l2`` from full-system runs,
``level`` from single-level replays) aggregate every simulation executed
in the emitting process while the run's scope was active.  Parallel runs
execute their simulations in worker processes, so their counter groups
stay empty and the record's value is the timing plus the ``engine``
section — job batches and serial-fallback reasons.

:func:`validate_record` is the schema the tests pin; bump
:data:`SCHEMA_VERSION` when changing the shape.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional

from .core import MetricsScope

__all__ = [
    "SCHEMA_VERSION",
    "RunRecord",
    "build_run_record",
    "config_hash",
    "validate_record",
    "append_record",
    "read_records",
]

SCHEMA_VERSION = 2

#: Required top-level fields and the types their values must have.
_SCHEMA: Dict[str, tuple] = {
    "schema_version": (int,),
    "run": (str,),
    "trace": (str, type(None)),
    "scale": (int, type(None)),
    "seed": (int,),
    "config_hash": (str,),
    "spec": (dict, type(None)),
    "jobs": (int,),
    "mode": (str,),
    "wall_time_s": (int, float),
    "sim_wall_time_s": (int, float),
    "references": (int,),
    "references_per_sec": (int, float),
    "system_runs": (int,),
    "level_runs": (int,),
    "l1i": (dict,),
    "l1d": (dict,),
    "l2": (dict,),
    "level": (dict,),
    "engine": (dict,),
}

#: Optional top-level fields: validated when present, absent in records
#: written by older emitters.  Additive extensions land here so the
#: schema version (and every stored record) survives unchanged.
_OPTIONAL_SCHEMA: Dict[str, tuple] = {
    # Result-store traffic: {"hits": int, "misses": int, "bytes_read": int};
    # empty when no result store was active for the run.
    "store": (dict,),
    # Fault-recovery activity: {"retries": int, "timeouts": int,
    # "pool_rebuilds": int, "poisoned_jobs": int}; empty on healthy runs.
    "resilience": (dict,),
    # Simulation-kernel backend selection: backend name -> job count
    # (e.g. {"numpy": 12, "python": 3}); empty when the run dispatched
    # no backend-selected simulations.
    "backends": (dict,),
    # Serving-layer traffic from the repro-serve daemon: {"requests": int,
    # "warm_hits": int, "cold_misses": int, "coalesced": int,
    # "rejected": int, "failed": int, ...}; empty for non-serving runs.
    "serving": (dict,),
    # Replayable workload specs the run was driven with: a list of
    # kind-tagged dicts (repro.specs.workload_from_dict rebuilds each);
    # absent/empty when the run used the implicit benchmark suite.
    "workloads": (list,),
}

_MODES = ("serial", "parallel")


def config_hash(config: object) -> str:
    """Stable short hash of a configuration object.

    Objects with canonical JSON (:class:`~repro.specs.SystemSpec`,
    :class:`~repro.specs.StructureSpec`) hash that JSON, which is
    key-sorted and process/version independent — equal hashes mean
    field-for-field equal specs.  Plain dataclasses
    (``SystemConfig``, ``CacheConfig``, ...) hash their field dict;
    anything else hashes its ``repr``.  The hash identifies "same
    configuration" across runs and machines — it is not cryptographic
    provenance.
    """
    to_json = getattr(config, "to_json", None)
    if callable(to_json):
        payload = to_json()
    elif dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = json.dumps(dataclasses.asdict(config), sort_keys=True, default=repr)
    else:
        payload = repr(config)
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
    return digest[:16]


@dataclass
class RunRecord:
    """One run's telemetry, shaped for JSON Lines emission."""

    run: str
    seed: int
    config_hash: str
    jobs: int
    mode: str
    wall_time_s: float
    trace: Optional[str] = None
    scale: Optional[int] = None
    #: Canonical dict of the run's SystemSpec (schema v2); None when the
    #: emitter had no spec to attach.  ``SystemSpec.from_dict(spec)``
    #: rebuilds the exact configuration that produced the record.
    spec: Optional[Dict[str, object]] = None
    sim_wall_time_s: float = 0.0
    references: int = 0
    references_per_sec: float = 0.0
    system_runs: int = 0
    level_runs: int = 0
    l1i: Dict[str, int] = field(default_factory=dict)
    l1d: Dict[str, int] = field(default_factory=dict)
    l2: Dict[str, int] = field(default_factory=dict)
    level: Dict[str, int] = field(default_factory=dict)
    engine: Dict[str, list] = field(default_factory=lambda: {"job_batches": [], "fallbacks": []})
    #: Result-store traffic for the run (empty when no store was active).
    store: Dict[str, int] = field(default_factory=dict)
    #: Fault-recovery activity (empty when the run needed none).
    resilience: Dict[str, int] = field(default_factory=dict)
    #: Kernel-backend selection counts (empty when nothing dispatched).
    backends: Dict[str, int] = field(default_factory=dict)
    #: Serving-layer request counters (empty for non-serving runs).
    serving: Dict[str, int] = field(default_factory=dict)
    #: Replayable workload specs (kind-tagged dicts) the run was driven
    #: with; empty when the run used the implicit benchmark suite.
    workloads: list = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunRecord":
        validate_record(payload)
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})


def build_run_record(
    scope: MetricsScope,
    run: str,
    config: object,
    wall_time_s: float,
    jobs: int = 1,
    scale: Optional[int] = None,
    seed: int = 0,
    trace: Optional[str] = None,
    spec=None,
    workloads=None,
) -> RunRecord:
    """Fold a finished scope into a :class:`RunRecord`.

    When *spec* (a :class:`~repro.specs.SystemSpec`) is given, it is
    embedded in the record and the config hash is derived from its
    canonical JSON, superseding *config*.  *workloads* is an optional
    sequence of :class:`~repro.specs.WorkloadSpec` (or their dicts)
    naming the streams the run was driven with; each is embedded in
    replayable kind-tagged dict form.
    """
    return RunRecord(
        run=run,
        trace=trace,
        scale=scale,
        seed=seed,
        config_hash=config_hash(spec if spec is not None else config),
        spec=None if spec is None else spec.as_dict(),
        jobs=jobs,
        mode="parallel" if jobs > 1 else "serial",
        wall_time_s=round(wall_time_s, 6),
        sim_wall_time_s=round(scope.sim_wall_time, 6),
        references=scope.references,
        references_per_sec=round(scope.references_per_sec, 3),
        system_runs=scope.system_runs,
        level_runs=scope.level_runs,
        l1i=dict(scope.l1i),
        l1d=dict(scope.l1d),
        l2=dict(scope.l2),
        level=dict(scope.level),
        engine={
            "job_batches": [batch.as_dict() for batch in scope.job_batches],
            "fallbacks": [event.as_dict() for event in scope.fallbacks],
        },
        store=(
            {
                "hits": scope.store_hits,
                "misses": scope.store_misses,
                "bytes_read": scope.store_bytes_read,
            }
            if (scope.store_hits or scope.store_misses)
            else {}
        ),
        resilience=(
            {
                "retries": scope.job_retries,
                "timeouts": scope.job_timeouts,
                "pool_rebuilds": scope.pool_rebuilds,
                "poisoned_jobs": scope.poisoned_jobs,
            }
            if (
                scope.job_retries
                or scope.job_timeouts
                or scope.pool_rebuilds
                or scope.poisoned_jobs
            )
            else {}
        ),
        backends=dict(scope.backend_jobs),
        serving=dict(scope.serving),
        workloads=[
            w.as_dict() if hasattr(w, "as_dict") else dict(w) for w in (workloads or ())
        ],
    )


def validate_record(payload: Mapping) -> None:
    """Raise ``ValueError`` unless *payload* matches the run-record schema."""
    if not isinstance(payload, Mapping):
        raise ValueError(f"run record must be a JSON object, got {type(payload).__name__}")
    missing = [key for key in _SCHEMA if key not in payload]
    if missing:
        raise ValueError(f"run record missing fields: {', '.join(missing)}")
    for key, types in _SCHEMA.items():
        value = payload[key]
        # bool is an int subclass; reject it explicitly for counter fields.
        if isinstance(value, bool) or not isinstance(value, types):
            expected = "/".join(t.__name__ for t in types)
            raise ValueError(f"run record field {key!r} must be {expected}, got {value!r}")
    if payload["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"run record schema_version {payload['schema_version']} "
            f"not supported (expected {SCHEMA_VERSION})"
        )
    if payload["mode"] not in _MODES:
        raise ValueError(f"run record mode must be one of {_MODES}, got {payload['mode']!r}")
    engine = payload["engine"]
    for section in ("job_batches", "fallbacks"):
        if not isinstance(engine.get(section), list):
            raise ValueError(f"run record engine.{section} must be a list")
    for key, types in _OPTIONAL_SCHEMA.items():
        if key in payload and not isinstance(payload[key], types):
            expected = "/".join(t.__name__ for t in types)
            raise ValueError(f"run record field {key!r} must be {expected}, got {payload[key]!r}")
    for entry in payload.get("workloads", ()):
        if not isinstance(entry, dict):
            raise ValueError(f"run record workloads entries must be objects, got {entry!r}")
    groups = ("l1i", "l1d", "l2", "level") + tuple(
        key for key in ("store", "resilience", "backends", "serving") if key in payload
    )
    for group in groups:
        for name, count in payload[group].items():
            if not isinstance(name, str) or isinstance(count, bool) or not isinstance(count, int):
                raise ValueError(f"run record {group} must map str -> int, got {name!r}: {count!r}")


def append_record(path: str, record: RunRecord) -> None:
    """Append one record to a JSON Lines file (creating it if needed)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(record.to_json())
        handle.write("\n")


def read_records(path: str) -> Iterator[RunRecord]:
    """Read and validate every record of a JSON Lines file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: not valid JSON: {exc}") from None
            yield RunRecord.from_dict(payload)
