"""Benchmark regression comparison against a committed baseline.

``BENCH_core.json`` (pytest-benchmark's ``--benchmark-json`` output for
the core-throughput microbenchmarks) is committed at the repo root as
the performance baseline.  :func:`diff_benchmarks` compares a freshly
generated file against it benchmark-by-benchmark and flags every one
whose timing grew by more than a configurable tolerance — the CI gate
that turns "the simulator got slower" from an artifact someone might
inspect into a red build.

Semantics:

* Benchmarks are matched by ``name``; comparison uses one statistic of
  pytest-benchmark's ``stats`` block (``mean`` by default — ``min`` is
  less noisy on quiet machines, ``median`` a compromise).
* A benchmark *regresses* when ``current > baseline * (1 + tolerance)``;
  lower is always better (timings in seconds).
* Benchmarks present on only one side never fail the diff — they are
  reported so a renamed benchmark is visible, but a regression gate
  should not block adding benchmarks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

__all__ = [
    "BenchDelta",
    "BenchDiff",
    "load_benchmark_stats",
    "diff_benchmarks",
    "SUPPORTED_METRICS",
]

SUPPORTED_METRICS = ("mean", "median", "min", "max")


def load_benchmark_stats(path: str, metric: str = "mean") -> Dict[str, float]:
    """``{benchmark name: metric seconds}`` from a pytest-benchmark JSON file."""
    if metric not in SUPPORTED_METRICS:
        raise ValueError(f"unsupported metric {metric!r}; expected one of {SUPPORTED_METRICS}")
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, Mapping) or "benchmarks" not in payload:
        raise ValueError(f"{path}: not a pytest-benchmark JSON file (no 'benchmarks' key)")
    stats: Dict[str, float] = {}
    for bench in payload["benchmarks"]:
        name = bench.get("name")
        value = bench.get("stats", {}).get(metric)
        if name is None or not isinstance(value, (int, float)):
            raise ValueError(f"{path}: benchmark entry without name/stats.{metric}: {bench!r}")
        stats[name] = float(value)
    return stats


@dataclass(frozen=True)
class BenchDelta:
    """One benchmark's baseline-vs-current comparison."""

    name: str
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        """current / baseline; > 1.0 means slower than the baseline."""
        if self.baseline == 0.0:
            return float("inf") if self.current > 0.0 else 1.0
        return self.current / self.baseline

    @property
    def percent_change(self) -> float:
        return 100.0 * (self.ratio - 1.0)

    def regressed(self, tolerance: float) -> bool:
        return self.current > self.baseline * (1.0 + tolerance)


@dataclass
class BenchDiff:
    """Full result of one baseline-vs-current comparison."""

    metric: str
    tolerance: float
    deltas: List[BenchDelta]
    #: In the baseline but not the current file (renamed/removed).
    missing: Sequence[str]
    #: In the current file but not the baseline (new benchmarks).
    added: Sequence[str]

    @property
    def regressions(self) -> List[BenchDelta]:
        return [delta for delta in self.deltas if delta.regressed(self.tolerance)]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Human-readable comparison table, worst ratio first."""
        lines = [
            f"benchmark {self.metric} vs. baseline "
            f"(tolerance {self.tolerance:.0%}, {len(self.deltas)} compared)"
        ]
        width = max((len(d.name) for d in self.deltas), default=4)
        for delta in sorted(self.deltas, key=lambda d: d.ratio, reverse=True):
            flag = "REGRESSED" if delta.regressed(self.tolerance) else "ok"
            lines.append(
                f"  {delta.name:<{width}}  {delta.baseline:>12.6f}s -> "
                f"{delta.current:>12.6f}s  {delta.percent_change:+7.1f}%  {flag}"
            )
        for name in self.missing:
            lines.append(f"  {name:<{width}}  missing from current run (baseline only)")
        for name in self.added:
            lines.append(f"  {name:<{width}}  new benchmark (no baseline)")
        lines.append(
            f"{len(self.regressions)} regression(s) beyond tolerance"
            if self.regressions
            else "no regressions beyond tolerance"
        )
        return "\n".join(lines)


def diff_benchmarks(
    baseline_path: str,
    current_path: str,
    tolerance: float = 0.25,
    metric: str = "mean",
) -> BenchDiff:
    """Compare two pytest-benchmark JSON files; see the module docstring."""
    if tolerance < 0.0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    baseline = load_benchmark_stats(baseline_path, metric)
    current = load_benchmark_stats(current_path, metric)
    shared = [name for name in baseline if name in current]
    deltas = [BenchDelta(name, baseline[name], current[name]) for name in shared]
    return BenchDiff(
        metric=metric,
        tolerance=tolerance,
        deltas=deltas,
        missing=[name for name in baseline if name not in current],
        added=[name for name in current if name not in baseline],
    )
