"""Command-line entry point for benchmark regression checks.

Usage::

    repro-bench diff FRESH.json                       # vs. BENCH_core.json
    repro-bench diff FRESH.json --baseline OLD.json --tolerance 0.25
    repro-bench diff FRESH.json --metric min

``diff`` exits 0 when every shared benchmark is within tolerance, 1 when
at least one regressed, and 2 on usage or file errors — so it slots
directly into CI after a ``pytest --benchmark-json=FRESH.json`` run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench import SUPPORTED_METRICS, diff_benchmarks

DEFAULT_BASELINE = "BENCH_core.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark telemetry tools for the repro package.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    diff = sub.add_parser(
        "diff",
        help="compare a fresh pytest-benchmark JSON against the committed baseline",
    )
    diff.add_argument("current", metavar="CURRENT_JSON", help="freshly generated benchmark JSON")
    diff.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="BASELINE_JSON",
        help=f"baseline benchmark JSON (default: {DEFAULT_BASELINE})",
    )
    diff.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before a benchmark counts as "
        "regressed (default: 0.25 = 25%%)",
    )
    diff.add_argument(
        "--metric",
        choices=SUPPORTED_METRICS,
        default="mean",
        help="which stats field to compare (default: mean)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        diff = diff_benchmarks(
            args.baseline, args.current, tolerance=args.tolerance, metric=args.metric
        )
    except (OSError, ValueError) as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return 2
    print(diff.render())
    return 0 if diff.ok else 1


if __name__ == "__main__":
    sys.exit(main())
