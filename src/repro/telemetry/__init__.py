"""Run telemetry: counters/timers, structured run records, bench diffs.

Three layers, importable with no dependency on the rest of the package:

* :mod:`repro.telemetry.core` — :class:`Counter`/:class:`Timer`
  primitives and the active :class:`MetricsScope`.  Disabled by default;
  instrumented code checks once per *run* (never per simulated
  reference) whether a scope is active.
* :mod:`repro.telemetry.record` — the schema-versioned per-run
  :class:`RunRecord` emitted as JSON Lines by
  ``repro-experiments --emit-metrics PATH``.
* :mod:`repro.telemetry.bench` — ``repro-bench diff``'s comparison of a
  fresh pytest-benchmark JSON against the committed ``BENCH_core.json``.
"""

from .bench import BenchDelta, BenchDiff, diff_benchmarks, load_benchmark_stats
from .core import (
    Counter,
    FallbackEvent,
    JobBatchStats,
    JobProgress,
    MetricsScope,
    ParallelFallbackWarning,
    Timer,
    activate,
    current,
    deactivate,
    enabled,
    record_fallback,
    scoped,
)
from .record import (
    SCHEMA_VERSION,
    RunRecord,
    append_record,
    build_run_record,
    config_hash,
    read_records,
    validate_record,
)

__all__ = [
    "Counter",
    "Timer",
    "MetricsScope",
    "FallbackEvent",
    "JobBatchStats",
    "JobProgress",
    "ParallelFallbackWarning",
    "activate",
    "deactivate",
    "current",
    "enabled",
    "scoped",
    "record_fallback",
    "SCHEMA_VERSION",
    "RunRecord",
    "build_run_record",
    "config_hash",
    "validate_record",
    "append_record",
    "read_records",
    "BenchDelta",
    "BenchDiff",
    "diff_benchmarks",
    "load_benchmark_stats",
]
