"""Lightweight run telemetry: counters, timers, and an active scope.

Observability for the simulator follows the same wiring-time pattern as
``MemorySystem._has_prefetch_sinks``: instrumented code checks *once per
run* (never per simulated reference) whether a :class:`MetricsScope` is
active, and does nothing at all when none is.  A scope is activated for
the duration of one logical run — one experiment, one CLI invocation —
and collects:

* **counters** and **timers** (:class:`Counter`, :class:`Timer`) bumped
  by instrumented call sites;
* **simulation observations** — every :meth:`MemorySystem.run
  <repro.hierarchy.system.MemorySystem.run>` and
  :func:`~repro.experiments.runner.run_level` executed while the scope
  is active reports its counters and wall time;
* **engine events** — parallel job-batch statistics and, crucially, the
  reasons a requested parallel run *fell back to serial*
  (:func:`record_fallback`), which previously vanished silently.

Fallback surfacing is independent of telemetry being enabled: the
warning (:class:`ParallelFallbackWarning`) always fires so an ignored
``--jobs`` flag is visible even without ``--emit-metrics``; the scope
additionally records the reason for the run record when active.

Thread-safety: scopes are process-local and activation is not
re-entrant by design — one logical run per process at a time, matching
how the CLI and the experiment modules use it.  Worker processes of the
parallel engine never inherit an active scope (it is not picklable
state), so simulations running inside workers report into the engine's
job statistics instead.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Dict, List, Optional

__all__ = [
    "Counter",
    "Timer",
    "FallbackEvent",
    "JobBatchStats",
    "JobProgress",
    "MetricsScope",
    "ParallelFallbackWarning",
    "activate",
    "deactivate",
    "current",
    "enabled",
    "scoped",
    "record_fallback",
]


class ParallelFallbackWarning(UserWarning):
    """A run that requested ``jobs > 1`` silently executed serially."""


class Counter:
    """A named monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Timer:
    """A named accumulating wall-clock timer (context manager).

    ::

        with scope.timer("materialize"):
            ...

    Accumulates across uses, so one timer can cover a loop body.
    """

    __slots__ = ("name", "elapsed", "calls", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.elapsed = 0.0
        self.calls = 0
        self._started: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._started is not None
        self.elapsed += time.perf_counter() - self._started
        self.calls += 1
        self._started = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer({self.name}={self.elapsed:.6f}s/{self.calls})"


class FallbackEvent:
    """One serial fallback of a run that requested parallel execution."""

    __slots__ = ("component", "reason")

    def __init__(self, component: str, reason: str) -> None:
        self.component = component
        self.reason = reason

    def as_dict(self) -> Dict[str, str]:
        return {"component": self.component, "reason": self.reason}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FallbackEvent({self.component}: {self.reason})"


class JobBatchStats:
    """Statistics of one parallel-engine batch (``run_jobs`` call)."""

    __slots__ = ("kind", "n_jobs", "workers", "elapsed")

    def __init__(self, kind: str, n_jobs: int, workers: int, elapsed: float) -> None:
        self.kind = kind
        self.n_jobs = n_jobs
        self.workers = workers
        self.elapsed = elapsed

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "n_jobs": self.n_jobs,
            "workers": self.workers,
            "elapsed_s": round(self.elapsed, 6),
        }


class JobProgress:
    """One heartbeat of a running parallel batch (for progress callbacks).

    ``store_hits`` counts jobs of the batch satisfied from the result
    store instead of simulated; they are included in ``done``.
    ``retries`` and ``recoveries`` (re-run job attempts and worker-pool
    rebuilds so far) stay zero on a healthy batch; ``note`` carries a
    degradation reason — e.g. why packed shared-memory trace delivery
    was unavailable — when the batch is running in a reduced mode.
    ``backend`` names the simulation kernel backend(s) executing the
    batch ("numpy", "python", or a mixed "numpy:3 python:5" split);
    empty when the batch runs no backend-dispatched simulations.
    """

    __slots__ = (
        "done", "total", "elapsed", "store_hits", "retries", "recoveries", "note",
        "backend",
    )

    def __init__(
        self,
        done: int,
        total: int,
        elapsed: float,
        store_hits: int = 0,
        retries: int = 0,
        recoveries: int = 0,
        note: str = "",
        backend: str = "",
    ) -> None:
        self.done = done
        self.total = total
        self.elapsed = elapsed
        self.store_hits = store_hits
        self.retries = retries
        self.recoveries = recoveries
        self.note = note
        self.backend = backend

    def __str__(self) -> str:
        base = f"{self.done}/{self.total} jobs done after {self.elapsed:.1f}s"
        if self.store_hits:
            base += f" ({self.store_hits} from store)"
        if self.backend:
            base += f" [{self.backend}]"
        if self.retries:
            base += f" [{self.retries} retried]"
        if self.recoveries:
            base += f" [{self.recoveries} pool rebuilds]"
        if self.note:
            base += f" [{self.note}]"
        return base


ProgressCallback = Callable[[JobProgress], None]


class MetricsScope:
    """Collector for one logical run.

    Everything is plain mutable state; the scope is read once at the end
    of the run (``repro.telemetry.record.build_run_record``) and then
    discarded.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.timers: Dict[str, Timer] = {}
        self.fallbacks: List[FallbackEvent] = []
        self.job_batches: List[JobBatchStats] = []
        # Aggregated simulation observations.
        self.sim_wall_time = 0.0
        self.system_runs = 0
        self.level_runs = 0
        self.references = 0
        self.l1i: Dict[str, int] = {}
        self.l1d: Dict[str, int] = {}
        self.l2: Dict[str, int] = {}
        self.level: Dict[str, int] = {}
        # Result-store traffic (content-addressed memoization).
        self.store_hits = 0
        self.store_misses = 0
        self.store_bytes_read = 0
        # Resilience events (retries, timeouts, pool recoveries).
        self.job_retries = 0
        self.job_timeouts = 0
        self.pool_rebuilds = 0
        self.poisoned_jobs = 0
        # Simulation-kernel backend selection (backend name -> job count).
        self.backend_jobs: Dict[str, int] = {}
        # Serving-layer traffic (counter name -> count), folded in by the
        # repro-serve daemon: requests, warm_hits, cold_misses, coalesced,
        # rejected, failed, streams.
        self.serving: Dict[str, int] = {}

    # -- counters/timers ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def timer(self, name: str) -> Timer:
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = Timer(name)
        return timer

    # -- engine events --------------------------------------------------------

    def record_fallback(self, component: str, reason: str) -> None:
        self.fallbacks.append(FallbackEvent(component, reason))

    def record_job_batch(self, kind: str, n_jobs: int, workers: int, elapsed: float) -> None:
        self.job_batches.append(JobBatchStats(kind, n_jobs, workers, elapsed))

    def record_store(self, hits: int, misses: int, bytes_read: int) -> None:
        """Accumulate one batch's result-store traffic."""
        self.store_hits += hits
        self.store_misses += misses
        self.store_bytes_read += bytes_read

    def record_resilience(
        self, retries: int, timeouts: int, pool_rebuilds: int, poisoned: int
    ) -> None:
        """Accumulate one batch's fault-recovery activity."""
        self.job_retries += retries
        self.job_timeouts += timeouts
        self.pool_rebuilds += pool_rebuilds
        self.poisoned_jobs += poisoned

    def record_backends(self, counts: Dict[str, int]) -> None:
        """Accumulate one batch's kernel-backend selection counts."""
        for backend, count in counts.items():
            self.backend_jobs[backend] = self.backend_jobs.get(backend, 0) + count

    def record_serving(self, counts: Dict[str, int]) -> None:
        """Accumulate serving-layer request counters (repro-serve)."""
        for name, count in counts.items():
            self.serving[name] = self.serving.get(name, 0) + count

    # -- simulation observations ----------------------------------------------

    @staticmethod
    def _merge(into: Dict[str, int], counters: Dict[str, int]) -> None:
        for key, value in counters.items():
            into[key] = into.get(key, 0) + value

    def observe_system_run(self, result, elapsed: float) -> None:
        """Aggregate one :class:`~repro.hierarchy.system.SystemResult`."""
        self.system_runs += 1
        self.sim_wall_time += elapsed
        self.references += result.total_references
        self._merge(self.l1i, result.istats.as_dict())
        self._merge(self.l1d, result.dstats.as_dict())
        self._merge(self.l2, result.l2stats.as_dict())

    def observe_level_run(self, stats, elapsed: float) -> None:
        """Aggregate one single-level replay's :class:`LevelStats`."""
        self.level_runs += 1
        self.sim_wall_time += elapsed
        self.references += stats.accesses
        self._merge(self.level, stats.as_dict())

    @property
    def references_per_sec(self) -> float:
        if self.sim_wall_time <= 0.0:
            return 0.0
        return self.references / self.sim_wall_time


# -- the active scope ---------------------------------------------------------

_SCOPE: Optional[MetricsScope] = None


def current() -> Optional[MetricsScope]:
    """The active scope, or None when telemetry is disabled (the default)."""
    return _SCOPE


def enabled() -> bool:
    return _SCOPE is not None


def activate(scope: Optional[MetricsScope] = None) -> MetricsScope:
    """Make *scope* (or a fresh one) the active collector."""
    global _SCOPE
    scope = scope if scope is not None else MetricsScope()
    _SCOPE = scope
    return scope


def deactivate() -> None:
    global _SCOPE
    _SCOPE = None


class scoped:
    """Context manager: activate a fresh scope for one logical run.

    ::

        with telemetry.scoped() as scope:
            run_experiment(...)
        record = build_run_record(scope, ...)
    """

    def __init__(self) -> None:
        self.scope = MetricsScope()

    def __enter__(self) -> MetricsScope:
        activate(self.scope)
        return self.scope

    def __exit__(self, *exc_info) -> None:
        deactivate()


def record_fallback(component: str, reason: str, stacklevel: int = 3) -> None:
    """Surface one serial fallback: warn always, record when a scope is active.

    Called by the parallel engine's entry points when a run that asked
    for ``jobs > 1`` cannot be expressed as picklable jobs and silently
    degrading to serial execution would otherwise hide the ignored flag.
    """
    warnings.warn(
        f"{component}: requested parallel execution fell back to serial ({reason})",
        ParallelFallbackWarning,
        stacklevel=stacklevel,
    )
    scope = _SCOPE
    if scope is not None:
        scope.record_fallback(component, reason)
