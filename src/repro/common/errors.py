"""Exception hierarchy for the repro package.

All library-specific failures derive from :class:`ReproError` so callers
can catch one base class; configuration mistakes additionally derive from
``ValueError`` because they are programming errors at construction time.
"""

from __future__ import annotations

__all__ = ["ReproError", "ConfigurationError", "TraceFormatError", "UnknownWorkloadError"]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid simulator or structure configuration."""


class TraceFormatError(ReproError):
    """A trace file or stream could not be decoded."""


class UnknownWorkloadError(ReproError, KeyError):
    """A workload name was not found in the registry."""
