"""Core value types shared by every layer of the simulator.

The simulator is trace driven: a *trace* is an iterable of memory accesses,
each of which is an instruction fetch, a data load, or a data store at a
byte address.  For speed the hot simulation loops treat accesses as plain
``(kind, address)`` integer pairs, but the public API exposes a small
:class:`Access` record with named fields and helper predicates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "AccessKind",
    "Access",
    "IFETCH",
    "LOAD",
    "STORE",
    "AccessOutcome",
    "MissKind",
]


class AccessKind(enum.IntEnum):
    """The three kinds of memory reference found in a trace.

    The integer values are stable and used directly in compact trace
    encodings (see :mod:`repro.traces.io`), so they must never change.
    """

    IFETCH = 0
    LOAD = 1
    STORE = 2

    @property
    def is_instruction(self) -> bool:
        """True for instruction fetches (routed to the I-cache)."""
        return self is AccessKind.IFETCH

    @property
    def is_data(self) -> bool:
        """True for loads and stores (routed to the D-cache)."""
        return self is not AccessKind.IFETCH

    @property
    def is_write(self) -> bool:
        """True only for stores."""
        return self is AccessKind.STORE


#: Convenient module-level aliases matching the paper's terminology.
IFETCH = AccessKind.IFETCH
LOAD = AccessKind.LOAD
STORE = AccessKind.STORE


@dataclass(frozen=True)
class Access:
    """A single memory reference: *kind* plus a byte *address*.

    Addresses are non-negative integers; the simulator does not impose a
    word size, though the synthetic workloads stay within 32 bits.
    """

    kind: AccessKind
    address: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")

    @property
    def is_instruction(self) -> bool:
        return self.kind.is_instruction

    @property
    def is_data(self) -> bool:
        return self.kind.is_data

    @property
    def is_write(self) -> bool:
        return self.kind.is_write

    def line(self, line_size: int) -> int:
        """Return the cache-line address for a given power-of-two line size."""
        return self.address // line_size

    def as_pair(self) -> tuple:
        """Compact ``(kind, address)`` integer pair used by the hot loops."""
        return (int(self.kind), self.address)


class AccessOutcome(enum.IntEnum):
    """Where an access was satisfied inside one cache level.

    These mirror the cost classes in the paper: a plain hit is free, a hit
    in one of the small fully-associative helper structures costs one
    cycle, and everything else pays the full next-level penalty.
    """

    HIT = 0
    #: L1 miss satisfied by the miss cache (one-cycle reload; §3.1).
    MISS_CACHE_HIT = 1
    #: L1 miss satisfied by the victim cache (one-cycle swap; §3.2).
    VICTIM_HIT = 2
    #: L1 miss satisfied by a stream buffer head (one-cycle reload; §4.1).
    STREAM_HIT = 3
    #: L1 miss that goes to the next level of the hierarchy.
    MISS = 4

    @property
    def is_l1_miss(self) -> bool:
        """True for every outcome the paper counts as a first-level miss.

        Note the paper counts miss-cache / victim-cache / stream-buffer
        hits as *removed* misses: they are still misses of the
        direct-mapped array but cost one cycle instead of the full
        penalty.
        """
        return self is not AccessOutcome.HIT

    @property
    def is_removed_miss(self) -> bool:
        """True when a helper structure turned a long miss into one cycle."""
        return self in (
            AccessOutcome.MISS_CACHE_HIT,
            AccessOutcome.VICTIM_HIT,
            AccessOutcome.STREAM_HIT,
        )

    @property
    def goes_to_next_level(self) -> bool:
        """True when the access must be serviced by the next level."""
        return self is AccessOutcome.MISS


class MissKind(enum.IntEnum):
    """Hill's 3C miss classification used throughout the paper (§3).

    Coherence misses are part of the taxonomy but never occur in this
    uniprocessor reproduction; the value exists so reports can show an
    explicit zero rather than silently omitting the class.
    """

    COMPULSORY = 0
    CAPACITY = 1
    CONFLICT = 2
    COHERENCE = 3
