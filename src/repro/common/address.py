"""Address arithmetic helpers.

Every cache in the simulator identifies a memory block by its *line
address*: the byte address shifted right by ``log2(line_size)``.  The
functions here centralise that arithmetic and validate the power-of-two
constraints the hardware structures rely on.
"""

from __future__ import annotations

__all__ = [
    "is_power_of_two",
    "log2_exact",
    "line_address",
    "line_base",
    "line_index",
    "align_down",
    "align_up",
]


def is_power_of_two(value: int) -> bool:
    """Return True when *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_exact(value: int, what: str = "value") -> int:
    """Return ``log2(value)``, raising ValueError unless it is exact.

    *what* names the offending parameter in the error message so that
    configuration mistakes are reported in the caller's vocabulary
    ("line_size must be a power of two", not "value must ...").
    """
    if not is_power_of_two(value):
        raise ValueError(f"{what} must be a positive power of two, got {value}")
    return value.bit_length() - 1


def line_address(byte_address: int, line_size: int) -> int:
    """Map a byte address to its cache-line address."""
    return byte_address >> log2_exact(line_size, "line_size")


def line_base(line_addr: int, line_size: int) -> int:
    """Return the first byte address covered by a line address."""
    return line_addr << log2_exact(line_size, "line_size")


def line_index(line_addr: int, num_lines: int) -> int:
    """Map a line address to a direct-mapped set index."""
    return line_addr & (num_lines - 1)


def align_down(byte_address: int, alignment: int) -> int:
    """Round *byte_address* down to a multiple of *alignment*."""
    return byte_address & ~(alignment - 1)


def align_up(byte_address: int, alignment: int) -> int:
    """Round *byte_address* up to a multiple of *alignment*."""
    return (byte_address + alignment - 1) & ~(alignment - 1)
