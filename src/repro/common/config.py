"""Configuration dataclasses for the baseline system of the paper (§2).

The paper's baseline: a 1,000-MIPS-class processor with on-chip 4KB
direct-mapped split instruction and data caches with 16-byte lines, a
three-stage pipelined 1MB direct-mapped second-level cache with 128-byte
lines, a 24-instruction-time L1 miss penalty and a 320-instruction-time
L2 miss penalty.  :func:`baseline_system` returns exactly that
configuration; experiments derive variants with ``dataclasses.replace``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping

from .address import log2_exact
from .errors import ConfigurationError

__all__ = [
    "CacheConfig",
    "TimingConfig",
    "SystemConfig",
    "baseline_system",
    "BASELINE_L1_SIZE",
    "BASELINE_L1_LINE",
    "BASELINE_L2_SIZE",
    "BASELINE_L2_LINE",
    "BASELINE_L1_MISS_PENALTY",
    "BASELINE_L2_MISS_PENALTY",
]

BASELINE_L1_SIZE = 4 * 1024
BASELINE_L1_LINE = 16
BASELINE_L2_SIZE = 1024 * 1024
BASELINE_L2_LINE = 128
BASELINE_L1_MISS_PENALTY = 24
BASELINE_L2_MISS_PENALTY = 320


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache: total size and line size, both powers of two."""

    size_bytes: int
    line_size: int

    def __post_init__(self) -> None:
        log2_exact(self.size_bytes, "size_bytes")
        log2_exact(self.line_size, "line_size")
        if self.line_size > self.size_bytes:
            raise ConfigurationError(
                f"line_size {self.line_size} exceeds cache size {self.size_bytes}"
            )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def offset_bits(self) -> int:
        return log2_exact(self.line_size, "line_size")

    def with_size(self, size_bytes: int) -> "CacheConfig":
        return replace(self, size_bytes=size_bytes)

    def with_line_size(self, line_size: int) -> "CacheConfig":
        return replace(self, line_size=line_size)

    def as_dict(self) -> Dict[str, int]:
        return {"size_bytes": self.size_bytes, "line_size": self.line_size}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CacheConfig":
        return cls(size_bytes=payload["size_bytes"], line_size=payload["line_size"])


@dataclass(frozen=True)
class TimingConfig:
    """Instruction-time costs of the memory hierarchy (paper §2, §5).

    All costs are in *instruction times* — the paper normalises every
    latency to the instruction issue rate, which is what lets it speak of
    a 24-instruction-time first-level miss on a 1,000 MIPS machine.
    """

    #: Full penalty of an L1 miss serviced by the L2 cache.
    l1_miss_penalty: int = BASELINE_L1_MISS_PENALTY
    #: Additional penalty when the access also misses in the L2 cache.
    l2_miss_penalty: int = BASELINE_L2_MISS_PENALTY
    #: Cost of an L1 miss removed by a miss cache / victim cache / stream
    #: buffer (the paper's "one cycle miss penalty").
    removed_miss_penalty: int = 1
    #: Pipelined L2 interface: a new request can issue every N cycles.
    l2_issue_interval: int = 4
    #: Latency of one pipelined L2 line fill, used for stream-buffer
    #: availability modelling (the paper's 12-cycle example in §4.1).
    l2_fill_latency: int = 12

    def __post_init__(self) -> None:
        for name in ("l1_miss_penalty", "l2_miss_penalty", "removed_miss_penalty"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.l2_issue_interval < 1:
            raise ConfigurationError("l2_issue_interval must be at least 1")
        if self.l2_fill_latency < 1:
            raise ConfigurationError("l2_fill_latency must be at least 1")

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TimingConfig":
        return cls(**{f.name: payload[f.name] for f in fields(cls) if f.name in payload})


@dataclass(frozen=True)
class SystemConfig:
    """The full two-level baseline system of Figure 2-1."""

    icache: CacheConfig = field(default_factory=lambda: CacheConfig(BASELINE_L1_SIZE, BASELINE_L1_LINE))
    dcache: CacheConfig = field(default_factory=lambda: CacheConfig(BASELINE_L1_SIZE, BASELINE_L1_LINE))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(BASELINE_L2_SIZE, BASELINE_L2_LINE))
    timing: TimingConfig = field(default_factory=TimingConfig)

    def __post_init__(self) -> None:
        if self.l2.line_size < self.icache.line_size or self.l2.line_size < self.dcache.line_size:
            raise ConfigurationError("L2 line size must be >= L1 line sizes")

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        return {
            "icache": self.icache.as_dict(),
            "dcache": self.dcache.as_dict(),
            "l2": self.l2.as_dict(),
            "timing": self.timing.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SystemConfig":
        return cls(
            icache=CacheConfig.from_dict(payload["icache"]),
            dcache=CacheConfig.from_dict(payload["dcache"]),
            l2=CacheConfig.from_dict(payload["l2"]),
            timing=TimingConfig.from_dict(payload["timing"]),
        )


def baseline_system() -> SystemConfig:
    """The exact baseline parameters assumed throughout the paper."""
    return SystemConfig()
