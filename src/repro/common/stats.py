"""Statistics helpers shared by the experiments.

The paper is explicit about its headline metric (footnote 1, §3.1): the
*average reduction in miss rate* is computed by taking the percent
reduction for each benchmark individually and then averaging those
percentages, so that a benchmark with a tiny miss rate counts as much as
one with a huge miss rate.  :func:`average_percent_reduction` implements
exactly that, and the experiment modules use it everywhere the paper
reports an "average" improvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = [
    "percent",
    "percent_reduction",
    "average_percent_reduction",
    "safe_div",
    "cumulative",
    "RatioStat",
    "Histogram",
]


def safe_div(numerator: float, denominator: float, default: float = 0.0) -> float:
    """Divide, returning *default* when the denominator is zero.

    Zero denominators are routine here (a benchmark with no instruction
    misses has no instruction conflict misses to remove), and the paper's
    plots simply show such points at zero.
    """
    if denominator == 0:
        return default
    return numerator / denominator


def percent(part: float, whole: float) -> float:
    """Return ``part / whole`` as a percentage, 0.0 when *whole* is zero."""
    return 100.0 * safe_div(part, whole)


def percent_reduction(baseline: float, improved: float) -> float:
    """Percent reduction from *baseline* down to *improved*.

    A negative result means the "improved" configuration got worse, which
    the experiments deliberately do not clamp — a structure that hurts
    should show as hurting.
    """
    return 100.0 * safe_div(baseline - improved, baseline)


def average_percent_reduction(pairs: Iterable) -> float:
    """The paper's averaging metric over ``(baseline, improved)`` pairs.

    Each pair contributes its own percent reduction; the result is the
    unweighted mean of those percentages.  Pairs whose baseline is zero
    are skipped entirely (no misses means nothing to reduce), matching
    how the paper handles linpack/liver instruction caches.
    """
    reductions: List[float] = []
    for baseline, improved in pairs:
        if baseline == 0:
            continue
        reductions.append(percent_reduction(baseline, improved))
    if not reductions:
        return 0.0
    return sum(reductions) / len(reductions)


def cumulative(values: Sequence) -> List[float]:
    """Running sum of a sequence, used for the stream-buffer run plots."""
    total = 0.0
    out: List[float] = []
    for value in values:
        total += value
        out.append(total)
    return out


@dataclass
class RatioStat:
    """A hits/total style counter with convenient rate accessors."""

    events: int = 0
    total: int = 0

    def record(self, happened: bool) -> None:
        self.total += 1
        if happened:
            self.events += 1

    @property
    def rate(self) -> float:
        return safe_div(self.events, self.total)

    @property
    def as_percent(self) -> float:
        return 100.0 * self.rate

    def merged_with(self, other: "RatioStat") -> "RatioStat":
        return RatioStat(self.events + other.events, self.total + other.total)


@dataclass
class Histogram:
    """A sparse integer-keyed histogram with cumulative queries.

    Used for LRU stack-depth profiles (single-pass multi-size victim and
    miss cache evaluation) and stream-buffer run-offset profiles.
    """

    counts: Dict[int, int] = field(default_factory=dict)

    def add(self, key: int, amount: int = 1) -> None:
        self.counts[key] = self.counts.get(key, 0) + amount

    def total(self) -> int:
        return sum(self.counts.values())

    def count_at_most(self, key: int) -> int:
        """Total weight at keys ``<= key`` — e.g. hits a cache of that depth captures."""
        return sum(c for k, c in self.counts.items() if k <= key)

    def as_series(self, keys: Iterable[int]) -> List[int]:
        """Dense per-key counts for the requested keys (missing keys are 0)."""
        return [self.counts.get(k, 0) for k in keys]

    def cumulative_series(self, keys: Sequence) -> List[int]:
        """Cumulative counts evaluated at each of the (sorted) *keys*."""
        return [self.count_at_most(k) for k in keys]

    def merge(self, other: "Histogram") -> None:
        for key, count in other.counts.items():
            self.add(key, count)


def weighted_mean(values: Mapping, weights: Mapping) -> float:
    """Mean of ``values`` weighted by ``weights`` over their shared keys."""
    total_weight = 0.0
    acc = 0.0
    for key, value in values.items():
        weight = weights.get(key, 0.0)
        acc += value * weight
        total_weight += weight
    return safe_div(acc, total_weight)


__all__.append("weighted_mean")
