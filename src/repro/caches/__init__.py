"""Cache tag-store models: direct-mapped, fully-associative, set-associative."""

from .base import Cache
from .direct_mapped import DirectMappedCache
from .fully_associative import FullyAssociativeCache, ReplacementPolicy
from .set_associative import SetAssociativeCache

__all__ = [
    "Cache",
    "DirectMappedCache",
    "FullyAssociativeCache",
    "ReplacementPolicy",
    "SetAssociativeCache",
]
