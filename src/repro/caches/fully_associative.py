"""Fully-associative cache with pluggable replacement.

This is the building block of everything the paper adds: miss caches,
victim caches, and the shadow cache used to classify conflict misses are
all small fully-associative structures.  LRU is the paper's policy
throughout; FIFO and random are provided for the ablation experiments.

The LRU implementation keeps lines in an ``OrderedDict`` ordered from LRU
(front) to MRU (back).  Besides the standard cache interface it exposes
:meth:`depth_of`, the line's LRU *stack depth* (0 = MRU).  The stack
property of LRU makes single-pass multi-size evaluation possible: a hit
at depth ``d`` in a large structure is a hit in every structure with more
than ``d`` entries fed the same insertion stream (see
:mod:`repro.experiments.sweeps`).
"""

from __future__ import annotations

import enum
import random
from collections import OrderedDict
from typing import Iterator, List, Optional

from ..common.errors import ConfigurationError
from .base import Cache

__all__ = ["ReplacementPolicy", "FullyAssociativeCache"]


class ReplacementPolicy(enum.Enum):
    """Victim-selection policy for a fully-associative cache."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


class FullyAssociativeCache(Cache):
    """A fully-associative tag store of *capacity* lines."""

    __slots__ = ("capacity", "policy", "_rng", "_lines", "_is_lru")

    def __init__(
        self,
        capacity: int,
        policy: ReplacementPolicy = ReplacementPolicy.LRU,
        seed: int = 0,
    ):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.policy = policy
        self._is_lru = policy is ReplacementPolicy.LRU
        self._rng = random.Random(seed)
        # Ordered LRU -> MRU for LRU; insertion order for FIFO/RANDOM.
        self._lines: "OrderedDict[int, None]" = OrderedDict()

    # -- Cache interface --------------------------------------------------

    def probe(self, line_addr: int) -> bool:
        return line_addr in self._lines

    def access(self, line_addr: int) -> bool:
        lines = self._lines
        if line_addr not in lines:
            return False
        if self._is_lru:
            lines.move_to_end(line_addr)
        return True

    def fill(self, line_addr: int) -> Optional[int]:
        lines = self._lines
        if line_addr in lines:
            if self._is_lru:
                lines.move_to_end(line_addr)
            return None
        victim: Optional[int] = None
        if len(lines) >= self.capacity:
            victim = self._choose_victim()
            del lines[victim]
        lines[line_addr] = None
        return victim

    def access_and_fill(self, line_addr: int) -> bool:
        lines = self._lines
        if line_addr in lines:
            if self._is_lru:
                lines.move_to_end(line_addr)
            return True
        if len(lines) >= self.capacity:
            del lines[self._choose_victim()]
        lines[line_addr] = None
        return False

    def invalidate(self, line_addr: int) -> bool:
        if line_addr in self._lines:
            del self._lines[line_addr]
            return True
        return False

    def resident_lines(self) -> Iterator[int]:
        return iter(self._lines)

    def clear(self) -> None:
        self._lines.clear()

    def occupancy(self) -> int:
        return len(self._lines)

    # -- fully-associative specifics ---------------------------------------

    def depth_of(self, line_addr: int) -> Optional[int]:
        """LRU stack depth of a resident line (0 = most recently used).

        Only meaningful under LRU; returns None when the line is absent.
        This is an O(capacity) scan, fine for the handful-of-entries
        structures the paper studies.
        """
        if line_addr not in self._lines:
            return None
        # OrderedDict is LRU -> MRU, so depth counts from the back.
        for depth, resident in enumerate(reversed(self._lines)):
            if resident == line_addr:
                return depth
        raise AssertionError("unreachable: membership checked above")

    def lru_line(self) -> Optional[int]:
        """The line that would be evicted next under LRU, or None if empty."""
        if not self._lines:
            return None
        return next(iter(self._lines))

    def mru_line(self) -> Optional[int]:
        """The most recently used resident line, or None if empty."""
        if not self._lines:
            return None
        return next(reversed(self._lines))

    def lines_lru_to_mru(self) -> List[int]:
        """Snapshot of resident lines ordered LRU first (testing aid)."""
        return list(self._lines)

    def _choose_victim(self) -> int:
        if self.policy is ReplacementPolicy.RANDOM:
            return self._rng.choice(list(self._lines))
        # LRU and FIFO both evict the front of the ordered dict: under
        # LRU the front is least recently used; under FIFO entries are
        # never reordered so the front is oldest.
        return next(iter(self._lines))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FullyAssociativeCache(capacity={self.capacity}, "
            f"policy={self.policy.value}, occupied={len(self._lines)})"
        )
