"""Direct-mapped cache tag store.

The paper's first- and second-level caches are all direct mapped, since
"this results in the fastest effective access time" (§2): each line
address maps to exactly one slot, so a lookup is a single tag compare.
The tag array stores the *full* line address of the resident line (rather
than the upper tag bits only), which is equivalent and keeps the code
free of tag/index reassembly.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..common.address import log2_exact
from ..common.config import CacheConfig
from .base import Cache

__all__ = ["DirectMappedCache"]

#: Sentinel for an invalid (empty) slot.  ``None`` keeps the hot path a
#: single comparison (``tags[idx] == line_addr`` is False for None).
_EMPTY = None


class DirectMappedCache(Cache):
    """A direct-mapped cache of ``size_bytes / line_size`` one-line sets."""

    __slots__ = ("config", "num_lines", "_index_mask", "_tags")

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_lines = config.num_lines
        self._index_mask = self.num_lines - 1
        log2_exact(self.num_lines, "number of lines")
        self._tags: List[Optional[int]] = [_EMPTY] * self.num_lines

    # -- Cache interface --------------------------------------------------

    def probe(self, line_addr: int) -> bool:
        return self._tags[line_addr & self._index_mask] == line_addr

    def access(self, line_addr: int) -> bool:
        # Direct-mapped caches keep no replacement state, so access and
        # probe coincide.
        return self._tags[line_addr & self._index_mask] == line_addr

    def fill(self, line_addr: int) -> Optional[int]:
        index = line_addr & self._index_mask
        victim = self._tags[index]
        self._tags[index] = line_addr
        if victim == line_addr:
            return None
        return victim

    def access_and_fill(self, line_addr: int) -> bool:
        # Single-dispatch version of the base-class access()+fill() pair:
        # one index computation and no extra method calls, since this is
        # the innermost operation of every plain miss-rate simulation.
        tags = self._tags
        index = line_addr & self._index_mask
        if tags[index] == line_addr:
            return True
        tags[index] = line_addr
        return False

    def invalidate(self, line_addr: int) -> bool:
        index = line_addr & self._index_mask
        if self._tags[index] == line_addr:
            self._tags[index] = _EMPTY
            return True
        return False

    def resident_lines(self) -> Iterator[int]:
        return (tag for tag in self._tags if tag is not _EMPTY)

    def clear(self) -> None:
        self._tags = [_EMPTY] * self.num_lines

    # -- direct-mapped specifics ------------------------------------------

    def index_of(self, line_addr: int) -> int:
        """The unique set index a line address maps to."""
        return line_addr & self._index_mask

    def resident_at(self, index: int) -> Optional[int]:
        """Line currently held by set *index*, or None when invalid."""
        return self._tags[index]

    def conflicts_with(self, a: int, b: int) -> bool:
        """Whether two distinct lines map to the same set (a mapping conflict)."""
        return a != b and self.index_of(a) == self.index_of(b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirectMappedCache(size={self.config.size_bytes}B, "
            f"line={self.config.line_size}B, lines={self.num_lines})"
        )
