"""Abstract cache interface shared by every cache organisation.

All caches in this package operate on *line addresses* (byte address
shifted right by the line-offset bits) and model tags only — the
simulator is miss-rate and timing oriented, so line *contents* are never
stored.  This is the standard trace-driven methodology the paper uses.

The interface deliberately separates :meth:`probe` (lookup without side
effects), :meth:`access` (lookup that updates replacement state), and
:meth:`fill` (insertion that may evict a victim).  The helper structures
of the paper need this split: a victim cache, for instance, must know the
victim of an L1 fill, and a shadow classifier must probe without
perturbing its own LRU order.
"""

from __future__ import annotations

import abc
from typing import Iterator, Optional

__all__ = ["Cache"]


class Cache(abc.ABC):
    """Tag store of one cache level, addressed by line address."""

    # Empty so subclasses may opt into __slots__ (the hot tag stores do);
    # subclasses that declare no __slots__ keep a __dict__ as usual.
    __slots__ = ()

    @abc.abstractmethod
    def probe(self, line_addr: int) -> bool:
        """Return True when the line is resident; never changes state."""

    @abc.abstractmethod
    def access(self, line_addr: int) -> bool:
        """Look up a line, updating replacement state. Returns hit/miss."""

    @abc.abstractmethod
    def fill(self, line_addr: int) -> Optional[int]:
        """Insert a line, returning the evicted victim line (or None).

        Filling a line that is already resident refreshes its replacement
        state and evicts nothing.
        """

    @abc.abstractmethod
    def invalidate(self, line_addr: int) -> bool:
        """Remove a line if present; returns whether it was resident."""

    @abc.abstractmethod
    def resident_lines(self) -> Iterator[int]:
        """Iterate over the line addresses currently resident."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Empty the cache (used between independent simulation runs)."""

    # -- conveniences with a shared default implementation ---------------

    def __contains__(self, line_addr: int) -> bool:
        return self.probe(line_addr)

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(1 for _ in self.resident_lines())

    def access_and_fill(self, line_addr: int) -> bool:
        """Common demand-access pattern: look up, fill on a miss.

        Returns True on a hit.  The victim (if any) is discarded, which
        is fine for plain miss-rate simulation; levels that feed a victim
        cache call :meth:`access` and :meth:`fill` separately.
        """
        if self.access(line_addr):
            return True
        self.fill(line_addr)
        return False
