"""Set-associative cache with per-set LRU.

The paper argues (citing Hill) that direct-mapped caches beat
set-associative ones once hit *time* is accounted for, and uses
associativity only as the reference point that defines conflict misses.
We provide a general N-way set-associative model so that (a) the
direct-mapped and fully-associative caches fall out as the 1-way and
all-way special cases, which the property tests exploit, and (b) the
ablation experiments can compare a victim cache against simply making
the cache 2-way.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

from ..common.address import log2_exact
from ..common.config import CacheConfig
from ..common.errors import ConfigurationError
from .base import Cache

__all__ = ["SetAssociativeCache"]


class SetAssociativeCache(Cache):
    """An N-way set-associative cache with LRU replacement per set."""

    def __init__(self, config: CacheConfig, ways: int):
        if ways < 1:
            raise ConfigurationError(f"ways must be >= 1, got {ways}")
        if config.num_lines % ways != 0:
            raise ConfigurationError(
                f"{config.num_lines} lines not divisible by {ways} ways"
            )
        self.config = config
        self.ways = ways
        self.num_sets = config.num_lines // ways
        log2_exact(self.num_sets, "number of sets")
        self._set_mask = self.num_sets - 1
        # Each set is an OrderedDict ordered LRU -> MRU.
        self._sets: List["OrderedDict[int, None]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    # -- Cache interface --------------------------------------------------

    def probe(self, line_addr: int) -> bool:
        return line_addr in self._sets[line_addr & self._set_mask]

    def access(self, line_addr: int) -> bool:
        target = self._sets[line_addr & self._set_mask]
        if line_addr not in target:
            return False
        target.move_to_end(line_addr)
        return True

    def fill(self, line_addr: int) -> Optional[int]:
        target = self._sets[line_addr & self._set_mask]
        if line_addr in target:
            target.move_to_end(line_addr)
            return None
        victim: Optional[int] = None
        if len(target) >= self.ways:
            victim = next(iter(target))
            del target[victim]
        target[line_addr] = None
        return victim

    def invalidate(self, line_addr: int) -> bool:
        target = self._sets[line_addr & self._set_mask]
        if line_addr in target:
            del target[line_addr]
            return True
        return False

    def resident_lines(self) -> Iterator[int]:
        for cache_set in self._sets:
            yield from cache_set

    def clear(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    # -- set-associative specifics -----------------------------------------

    def set_index_of(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    def set_contents_lru_to_mru(self, index: int) -> List[int]:
        """Snapshot of one set ordered LRU first (testing aid)."""
        return list(self._sets[index])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache(size={self.config.size_bytes}B, "
            f"line={self.config.line_size}B, ways={self.ways})"
        )
