"""Declarative specs for the paper's helper structures.

A :class:`StructureSpec` is a frozen, picklable, hashable dataclass that
names one helper-structure configuration *completely*: kind, geometry,
and every behavioural option (replacement policy, ablation flags,
instrumentation).  Specs are the currency of the parallel engine — a
worker process rebuilds the exact structure from the spec — and of the
telemetry layer, whose run records embed the spec so a run is replayable
from the record alone.

The contract, pinned by ``tests/test_specs.py``:

* ``build(spec)`` constructs the live structure the spec names;
* ``describe(structure)`` recovers the spec from a live structure, and
  ``describe(build(spec)) == spec`` for every registered spec;
* ``StructureSpec.from_dict(spec.as_dict()) == spec`` and the JSON
  rendering (:meth:`StructureSpec.to_json`) is canonical — key-sorted,
  so equal specs serialize to equal strings.

Structures carrying state that cannot be rebuilt from data — a
``fetch_sink`` callable wired to a live L2 — are *undescribable*;
:func:`describe` raises :class:`SpecError` for those, and callers that
need to fan out fall back to serial execution.

The legacy string codes (``"mc4"``, ``"vc4"``, ``"sb4"``, ``"sb4x4"``)
parse into specs via :func:`parse_structure_code`;
:func:`structure_code` is the partial inverse, returning the short code
for default-option specs and None otherwise.
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass
from typing import ClassVar, Dict, Mapping, Optional, Tuple, Type

from ..common.errors import ConfigurationError

__all__ = [
    "SpecError",
    "StructureSpec",
    "MissCacheSpec",
    "VictimCacheSpec",
    "StreamBufferSpec",
    "MultiWayStreamBufferSpec",
    "StrideBufferSpec",
    "MultiWayStrideBufferSpec",
    "CompositeSpec",
    "register_structure",
    "registered_kinds",
    "build",
    "describe",
    "structure_from_dict",
    "parse_structure_code",
    "structure_code",
]


class SpecError(ConfigurationError):
    """A structure/spec pair that cannot round-trip declaratively."""


#: kind tag -> spec class, populated by :func:`register_structure`.
_KINDS: Dict[str, Type["StructureSpec"]] = {}


def register_structure(cls: Type["StructureSpec"]) -> Type["StructureSpec"]:
    """Class decorator: make a spec class reachable by its ``kind`` tag."""
    if not cls.kind:
        raise SpecError(f"{cls.__name__} must define a non-empty kind tag")
    if cls.kind in _KINDS:
        raise SpecError(f"duplicate structure kind {cls.kind!r}")
    _KINDS[cls.kind] = cls
    return cls


def registered_kinds() -> Dict[str, Type["StructureSpec"]]:
    """Kind tag -> spec class for every registered structure."""
    return dict(_KINDS)


@dataclass(frozen=True)
class StructureSpec:
    """Base of all structure specs: canonical (de)serialization."""

    #: Tag identifying the spec class in serialized form.
    kind: ClassVar[str] = ""

    def build(self):
        """Construct the live structure this spec names."""
        raise NotImplementedError

    def as_dict(self) -> Dict[str, object]:
        """Kind-tagged plain-data dict (JSON-safe, recursively)."""
        payload: Dict[str, object] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, StructureSpec):
                value = value.as_dict()
            elif isinstance(value, tuple):
                value = [
                    member.as_dict() if isinstance(member, StructureSpec) else member
                    for member in value
                ]
            payload[field.name] = value
        return payload

    def to_json(self) -> str:
        """Canonical JSON: key-sorted, no whitespace variance."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StructureSpec":
        """Rebuild any registered spec from its :meth:`as_dict` form."""
        return structure_from_dict(payload)

    @classmethod
    def from_json(cls, text: str) -> "StructureSpec":
        return structure_from_dict(json.loads(text))


def structure_from_dict(payload: Mapping) -> StructureSpec:
    """Spec instance from a kind-tagged dict (inverse of ``as_dict``)."""
    if not isinstance(payload, Mapping):
        raise SpecError(f"structure spec payload must be a mapping, got {payload!r}")
    try:
        kind = payload["kind"]
    except KeyError:
        raise SpecError(f"structure spec payload has no 'kind' tag: {payload!r}") from None
    spec_cls = _KINDS.get(kind)
    if spec_cls is None:
        known = ", ".join(sorted(_KINDS))
        raise SpecError(f"unknown structure kind {kind!r}; known: {known}")
    field_names = {field.name for field in dataclasses.fields(spec_cls)}
    unknown = set(payload) - field_names - {"kind"}
    if unknown:
        raise SpecError(f"{kind} spec has unknown fields: {sorted(unknown)}")
    kwargs: Dict[str, object] = {}
    for name in field_names:
        if name not in payload:
            continue
        value = payload[name]
        if name == "members":
            value = tuple(structure_from_dict(member) for member in value)
        elif isinstance(value, list):
            value = tuple(value)
        kwargs[name] = value
    return spec_cls(**kwargs)


def build(spec: Optional[StructureSpec]):
    """Live structure from a spec (None stays None: the bare baseline)."""
    if spec is None:
        return None
    if not isinstance(spec, StructureSpec):
        raise SpecError(
            f"expected a StructureSpec or None, got {type(spec).__name__}: {spec!r}"
        )
    return spec.build()


def describe(structure) -> Optional[StructureSpec]:
    """Spec for a live structure (None for None): the inverse of :func:`build`.

    Every registered structure class implements ``describe()`` returning
    its spec; anything else — unknown classes, structures holding live
    callables — raises :class:`SpecError`.
    """
    if structure is None:
        return None
    describer = getattr(structure, "describe", None)
    if describer is None:
        raise SpecError(
            f"{type(structure).__name__} has no describe(): it cannot be "
            "expressed as a declarative spec"
        )
    spec = describer()
    if spec is not None and not isinstance(spec, StructureSpec):
        raise SpecError(
            f"{type(structure).__name__}.describe() returned {type(spec).__name__}, "
            "not a StructureSpec"
        )
    return spec


# -- the registered spec classes ----------------------------------------------


@register_structure
@dataclass(frozen=True)
class MissCacheSpec(StructureSpec):
    """§3.1 miss cache: caches the *requested* line on every L1 miss."""

    kind: ClassVar[str] = "miss_cache"

    entries: int
    policy: str = "lru"
    track_depths: bool = False

    def build(self):
        from ..buffers.miss_cache import MissCache
        from ..caches.fully_associative import ReplacementPolicy

        return MissCache(
            self.entries,
            track_depths=self.track_depths,
            policy=ReplacementPolicy(self.policy),
        )


@register_structure
@dataclass(frozen=True)
class VictimCacheSpec(StructureSpec):
    """§3.2 victim cache: caches the L1 *victim*, swapping on a hit."""

    kind: ClassVar[str] = "victim_cache"

    entries: int
    policy: str = "lru"
    swap_on_hit: bool = True
    track_depths: bool = False

    def build(self):
        from ..buffers.victim_cache import VictimCache
        from ..caches.fully_associative import ReplacementPolicy

        return VictimCache(
            self.entries,
            track_depths=self.track_depths,
            swap_on_hit=self.swap_on_hit,
            policy=ReplacementPolicy(self.policy),
        )


@register_structure
@dataclass(frozen=True)
class StreamBufferSpec(StructureSpec):
    """§4.1 sequential stream buffer (single way)."""

    kind: ClassVar[str] = "stream_buffer"

    entries: int = 4
    max_run: Optional[int] = None
    track_run_offsets: bool = False
    model_availability: bool = False
    fill_latency: int = 12
    issue_interval: int = 4
    head_only: bool = True
    allocation_filter: bool = False

    def build(self):
        from ..buffers.stream_buffer import StreamBuffer

        return StreamBuffer(
            entries=self.entries,
            max_run=self.max_run,
            track_run_offsets=self.track_run_offsets,
            model_availability=self.model_availability,
            fill_latency=self.fill_latency,
            issue_interval=self.issue_interval,
            head_only=self.head_only,
            allocation_filter=self.allocation_filter,
        )


@register_structure
@dataclass(frozen=True)
class MultiWayStreamBufferSpec(StructureSpec):
    """§4.2 multi-way stream buffer: parallel ways, LRU allocation."""

    kind: ClassVar[str] = "multi_way_stream_buffer"

    ways: int = 4
    entries: int = 4
    max_run: Optional[int] = None
    track_run_offsets: bool = False
    model_availability: bool = False
    fill_latency: int = 12
    issue_interval: int = 4
    head_only: bool = True
    allocation_filter: bool = False

    def build(self):
        from ..buffers.stream_buffer import MultiWayStreamBuffer

        return MultiWayStreamBuffer(
            ways=self.ways,
            entries=self.entries,
            max_run=self.max_run,
            track_run_offsets=self.track_run_offsets,
            model_availability=self.model_availability,
            fill_latency=self.fill_latency,
            issue_interval=self.issue_interval,
            head_only=self.head_only,
            allocation_filter=self.allocation_filter,
        )


@register_structure
@dataclass(frozen=True)
class StrideBufferSpec(StructureSpec):
    """§5-extension stride prefetch buffer (single way)."""

    kind: ClassVar[str] = "stride_buffer"

    entries: int = 4
    max_stride: int = 256
    min_stride: int = 1
    track_run_offsets: bool = False

    def build(self):
        from ..buffers.stride import StrideStreamBuffer

        return StrideStreamBuffer(
            entries=self.entries,
            max_stride=self.max_stride,
            min_stride=self.min_stride,
            track_run_offsets=self.track_run_offsets,
        )


@register_structure
@dataclass(frozen=True)
class MultiWayStrideBufferSpec(StructureSpec):
    """§5-extension multi-way stride prefetcher."""

    kind: ClassVar[str] = "multi_way_stride_buffer"

    ways: int = 4
    entries: int = 4
    max_stride: int = 256
    min_stride: int = 1
    track_run_offsets: bool = False

    def build(self):
        from ..buffers.stride import MultiWayStrideBuffer

        return MultiWayStrideBuffer(
            ways=self.ways,
            entries=self.entries,
            max_stride=self.max_stride,
            min_stride=self.min_stride,
            track_run_offsets=self.track_run_offsets,
        )


@register_structure
@dataclass(frozen=True)
class CompositeSpec(StructureSpec):
    """§5 combined system: several structures behind one cache."""

    kind: ClassVar[str] = "composite"

    members: Tuple[StructureSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.members:
            raise SpecError("CompositeSpec needs at least one member")
        if not all(isinstance(member, StructureSpec) for member in self.members):
            raise SpecError("CompositeSpec members must be StructureSpecs")

    def build(self):
        from ..buffers.base import CompositeAugmentation

        return CompositeAugmentation([member.build() for member in self.members])


# -- legacy short codes --------------------------------------------------------

_CODE_PATTERNS: Tuple[Tuple[re.Pattern, str], ...] = (
    (re.compile(r"^mc(\d+)$"), "mc"),
    (re.compile(r"^vc(\d+)$"), "vc"),
    (re.compile(r"^sb(\d+)$"), "sb"),
    (re.compile(r"^sb(\d+)x(\d+)$"), "msb"),
)


def parse_structure_code(code: Optional[str]) -> Optional[StructureSpec]:
    """Spec for a legacy string code (``"none"``/None -> None).

    Codes name only the paper's default-option structures: ``mc<N>``,
    ``vc<N>``, ``sb<N>``, and ``sb<W>x<N>``.
    """
    if code is None or code == "none":
        return None
    for pattern, tag in _CODE_PATTERNS:
        match = pattern.match(code)
        if match is None:
            continue
        if tag == "mc":
            return MissCacheSpec(int(match.group(1)))
        if tag == "vc":
            return VictimCacheSpec(int(match.group(1)))
        if tag == "sb":
            return StreamBufferSpec(int(match.group(1)))
        return MultiWayStreamBufferSpec(int(match.group(1)), int(match.group(2)))
    raise ConfigurationError(
        f"unknown structure spec {code!r}; expected none/mc<N>/vc<N>/sb<N>/sb<W>x<N>"
    )


def structure_code(spec: Optional[StructureSpec]) -> Optional[str]:
    """Short legacy code for a default-option spec, else None.

    The partial inverse of :func:`parse_structure_code`: only the spec
    points the old string scheme could name get a code back.
    """
    if spec is None:
        return "none"
    if isinstance(spec, MissCacheSpec) and spec == MissCacheSpec(spec.entries):
        return f"mc{spec.entries}"
    if isinstance(spec, VictimCacheSpec) and spec == VictimCacheSpec(spec.entries):
        return f"vc{spec.entries}"
    if isinstance(spec, StreamBufferSpec) and spec == StreamBufferSpec(spec.entries):
        return f"sb{spec.entries}"
    if isinstance(spec, MultiWayStreamBufferSpec) and spec == MultiWayStreamBufferSpec(
        spec.ways, spec.entries
    ):
        return f"sb{spec.ways}x{spec.entries}"
    return None
