"""Declarative workload specs: trace identity beyond the name registry.

Until PR 8 a trace's identity was a *registry name*: ``TraceSpec``
was ``(name, scale, seed)``, and anything not built through
:mod:`repro.traces.registry` was invisible to the parallel engine, the
result store, and the serve daemon.  This module refactors trace
identity into the same shape structures got in PR 3 — a kind-tagged
hierarchy of frozen, hashable, picklable specs with canonical JSON:

* :class:`NamedWorkloadSpec` (kind ``"named"``) wraps the registry
  losslessly — it *is* the old ``TraceSpec``, field for field, and
  legacy kind-less ``{"name", "scale", "seed"}`` payloads still parse;
* the parameterized pattern specs (:class:`ZipfianSpec`,
  :class:`HotspotSpec`, :class:`BurstySpec`, :class:`PointerChaseSpec`,
  :class:`SequentialSpec`, :class:`UniformRandomSpec`) build finite
  data-reference traces from the generators in
  :mod:`repro.traces.patterns` — the access classes a cache in front of
  many users actually sees;
* :class:`TenantMixSpec` composes N tenant sub-specs into one stream
  with Zipfian tenant popularity, deterministic phase changes, and
  per-tenant address spaces (the multi-tenant traffic mixer).

The contract mirrors ``StructureSpec``, pinned by
``tests/test_workload_specs.py``:

* ``spec.build()`` constructs the :class:`~repro.traces.trace.Trace`
  the spec names, and stamps the spec's canonical JSON into
  ``TraceMeta.source`` so :func:`workload_spec_of` recovers the spec
  from any materialized trace built through a spec (or through
  :func:`repro.traces.registry.build_trace`);
* ``workload_from_dict(spec.as_dict()) == spec`` and ``to_json`` is
  canonical — key-sorted, so equal specs serialize to equal strings;
* ``spec.trace()`` materializes through the per-process memo in
  :mod:`repro.experiments.workloads` and ``spec.fingerprint()`` is the
  content hash the result store keys on — equal reference streams share
  a fingerprint no matter which spec produced them.

Every pattern stream is driven by an explicit :class:`random.Random`
seeded from a *string* (stable across processes and Python versions),
so a spec's trace is exactly reproducible anywhere.
"""

from __future__ import annotations

import bisect
import dataclasses
import itertools
import json
import random
from dataclasses import dataclass
from typing import ClassVar, Dict, Iterator, Mapping, Optional, Tuple, Type

from ..common.errors import ConfigurationError, UnknownWorkloadError
from ..common.types import AccessKind
from .structures import SpecError

__all__ = [
    "WorkloadSpec",
    "NamedWorkloadSpec",
    "SequentialSpec",
    "UniformRandomSpec",
    "ZipfianSpec",
    "HotspotSpec",
    "BurstySpec",
    "PointerChaseSpec",
    "TenantMixSpec",
    "register_workload",
    "registered_workload_kinds",
    "workload_from_dict",
    "workload_from_json",
    "workload_spec_of",
    "unkeyed_reason",
    "parse_workload",
    "WORKLOAD_PRESETS",
]

Pair = Tuple[int, int]

_IFETCH = int(AccessKind.IFETCH)
_LOAD = int(AccessKind.LOAD)
_STORE = int(AccessKind.STORE)

#: kind tag -> spec class, populated by :func:`register_workload`.
_KINDS: Dict[str, Type["WorkloadSpec"]] = {}


def register_workload(cls: Type["WorkloadSpec"]) -> Type["WorkloadSpec"]:
    """Class decorator: make a workload spec reachable by its ``kind`` tag."""
    if not cls.kind:
        raise SpecError(f"{cls.__name__} must define a non-empty kind tag")
    if cls.kind in _KINDS:
        raise SpecError(f"duplicate workload kind {cls.kind!r}")
    _KINDS[cls.kind] = cls
    return cls


def registered_workload_kinds() -> Dict[str, Type["WorkloadSpec"]]:
    """Kind tag -> spec class for every registered workload."""
    return dict(_KINDS)


# -- validation helpers --------------------------------------------------------


def _positive_int(kind: str, name: str, value) -> None:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise SpecError(f"{kind} spec: {name} must be a positive integer, got {value!r}")


def _fraction(kind: str, name: str, value) -> None:
    if not isinstance(value, (int, float)) or not 0.0 <= float(value) <= 1.0:
        raise SpecError(f"{kind} spec: {name} must be in [0, 1], got {value!r}")


@dataclass(frozen=True)
class WorkloadSpec:
    """Base of all workload specs: canonical (de)serialization + identity.

    A workload spec names a reference stream *completely*: two equal
    specs build byte-identical traces in any process.  Subclasses
    implement :meth:`build` (or the :meth:`_stream` hook plus a
    ``length`` field for finite pattern traces).
    """

    #: Tag identifying the spec class in serialized form.
    kind: ClassVar[str] = ""

    # -- identity -------------------------------------------------------------

    @property
    def label(self) -> str:
        """Short human-readable name (heartbeats, fallback messages)."""
        return self.kind

    def resolve(self) -> "WorkloadSpec":
        """The spec with ambient defaults pinned — the trace-memo key.

        Pattern specs are already fully explicit; the named spec
        resolves ``scale=None`` against ``REPRO_SCALE`` the way the
        engine's per-worker memo always has.
        """
        return self

    @classmethod
    def of(cls, trace) -> Optional["WorkloadSpec"]:
        """Spec for a materialized trace, or None when it has none.

        Any trace built through a spec (or the registry) carries its
        spec's canonical JSON in ``meta.source`` and round-trips; see
        :func:`workload_spec_of` for the recovery rules and
        :func:`unkeyed_reason` for the per-trace fallback reasons.
        """
        return workload_spec_of(trace)

    # -- materialization ------------------------------------------------------

    def build(self):
        """Construct the :class:`~repro.traces.trace.Trace` this spec names.

        The default implementation covers finite pattern specs: a
        ``length``-reference replay of :meth:`pairs`, with the spec's
        canonical JSON stamped into ``TraceMeta.source``.
        """
        from ..traces.trace import Trace, TraceMeta

        length = getattr(self, "length", None)
        if length is None:
            raise SpecError(f"{type(self).__name__} does not define build()")
        resolved = self.resolve()
        meta = TraceMeta(
            name=self.kind,
            program_type="synthetic access pattern",
            description=self.label,
            seed=getattr(self, "seed", 0),
            scale=length,
            source=resolved.to_json(),
        )
        return Trace(meta, lambda: itertools.islice(resolved.pairs(), length))

    def trace(self):
        """Materialize (memoized per process) the referenced trace."""
        from ..experiments.workloads import materialized_workload

        return materialized_workload(self)

    def fingerprint(self) -> str:
        """Content hash of the spec's reference stream.

        Materializes the trace (through the process memo) on first use;
        the hash itself is cached on the materialized trace.  This is
        the content half of the result store's key: the spec hash pins
        the *reference*, the fingerprint pins what the reference
        actually resolved to.
        """
        return self.trace().fingerprint()

    def pairs(self, salt: str = "") -> Iterator[Pair]:
        """Infinite ``(kind, address)`` stream, reproducible from the seed.

        *salt* decorrelates multiple independent draws of the same spec
        (the tenant mixer feeds each tenant slot its own salt).  String
        seeding keeps the stream stable across processes.
        """
        rng = random.Random(f"workload:{self.kind}:{getattr(self, 'seed', 0)}:{salt}")
        return self._stream(rng)

    def _stream(self, rng: random.Random) -> Iterator[Pair]:
        raise NotImplementedError

    def _data_pairs(self, rng: random.Random, addresses: Iterator[int]) -> Iterator[Pair]:
        """Tag an address stream with LOAD/STORE kinds by ``store_fraction``."""
        store_fraction = getattr(self, "store_fraction", 0.0)
        for address in addresses:
            kind = _STORE if rng.random() < store_fraction else _LOAD
            yield (kind, address)

    # -- serialization --------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Kind-tagged plain-data dict (JSON-safe, recursively)."""
        payload: Dict[str, object] = {"kind": self.kind}
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, WorkloadSpec):
                value = value.as_dict()
            elif isinstance(value, tuple):
                value = [
                    member.as_dict() if isinstance(member, WorkloadSpec) else member
                    for member in value
                ]
            payload[field.name] = value
        return payload

    def to_json(self) -> str:
        """Canonical JSON: key-sorted, no whitespace variance."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping) -> "WorkloadSpec":
        """Rebuild any registered spec from its :meth:`as_dict` form."""
        return workload_from_dict(payload)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        return workload_from_dict(json.loads(text))


def workload_from_dict(payload: Mapping) -> WorkloadSpec:
    """Spec instance from a kind-tagged dict (inverse of ``as_dict``).

    Legacy kind-less payloads with a ``"name"`` key — the old
    ``TraceSpec`` wire shape, still present in stored telemetry records
    — parse as :class:`NamedWorkloadSpec`.
    """
    if not isinstance(payload, Mapping):
        raise SpecError(f"workload spec payload must be a mapping, got {payload!r}")
    kind = payload.get("kind")
    if kind is None:
        if "name" in payload:
            kind = NamedWorkloadSpec.kind
        else:
            raise SpecError(f"workload spec payload has no 'kind' tag: {payload!r}")
    spec_cls = _KINDS.get(kind)
    if spec_cls is None:
        known = ", ".join(sorted(_KINDS))
        raise SpecError(f"unknown workload kind {kind!r}; known: {known}")
    field_names = {field.name for field in dataclasses.fields(spec_cls)}
    unknown = set(payload) - field_names - {"kind"}
    if unknown:
        raise SpecError(f"{kind} workload spec has unknown fields: {sorted(unknown)}")
    kwargs: Dict[str, object] = {}
    for name in field_names:
        if name not in payload:
            continue
        value = payload[name]
        if name == "tenants":
            value = tuple(workload_from_dict(member) for member in value)
        elif isinstance(value, list):
            value = tuple(value)
        kwargs[name] = value
    return spec_cls(**kwargs)


def workload_from_json(text: str) -> WorkloadSpec:
    """Spec instance from canonical (or any) JSON text."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"workload spec is not valid JSON: {exc}") from None
    return workload_from_dict(payload)


# -- trace -> spec recovery ----------------------------------------------------


def workload_spec_of(trace) -> Optional[WorkloadSpec]:
    """The workload spec of a materialized trace, or None for hand-made ones.

    Recovery order:

    1. ``meta.source`` — every trace built through a spec or through
       :func:`repro.traces.registry.build_trace` carries its spec's
       canonical JSON (any scale, including 0);
    2. legacy registry provenance — a trace whose meta predates the
       ``source`` field but names a registry benchmark at a nonzero
       recorded scale is still rebuildable by reference;
    3. anything else (hand-made traces, foreign metas) has no spec.
    """
    meta = getattr(trace, "meta", None)
    if meta is None:
        return None
    source = getattr(meta, "source", "")
    if source:
        try:
            return workload_from_json(source)
        except SpecError:
            return None
    if not getattr(meta, "scale", 0):
        return None
    from ..traces.registry import get_workload

    try:
        get_workload(meta.name)
    except UnknownWorkloadError:
        return None
    return NamedWorkloadSpec(name=meta.name, scale=meta.scale, seed=getattr(meta, "seed", 0))


def unkeyed_reason(trace) -> str:
    """Why :func:`workload_spec_of` returned None for *trace*.

    Used by the serial-fallback warnings so "hand-made trace" and
    "registry trace built at scale 0 without provenance" are reported
    as the distinct situations they are.
    """
    meta = getattr(trace, "meta", None)
    name = getattr(trace, "name", "<unnamed>")
    if meta is None:
        return f"{name!r} has no trace metadata"
    if getattr(meta, "source", ""):
        return f"{name!r} carries unparseable workload provenance"
    from ..traces.registry import get_workload

    try:
        get_workload(meta.name)
    except UnknownWorkloadError:
        return f"{name!r} is hand-made (no workload spec provenance)"
    if not getattr(meta, "scale", 0):
        return (
            f"{name!r} is a registry trace built at scale 0 without recorded "
            "provenance (rebuild it via build_trace to key it)"
        )
    return f"{name!r} unexpectedly has no workload spec"


# -- the registered spec classes ----------------------------------------------


@register_workload
@dataclass(frozen=True)
class NamedWorkloadSpec(WorkloadSpec):
    """Reference to a registry workload trace: (name, scale, seed).

    This is the old ``TraceSpec``, field for field — ``scale=None``
    means "the ambient default scale", resolved against ``REPRO_SCALE``
    by :meth:`resolve` exactly like the engine's per-worker memo key.
    """

    kind: ClassVar[str] = "named"

    name: str
    scale: Optional[int] = None
    seed: int = 0

    @property
    def label(self) -> str:
        return self.name

    def resolve(self) -> "NamedWorkloadSpec":
        if self.scale is not None:
            return self
        from ..experiments.workloads import default_scale

        scale = default_scale()
        if scale is None:
            return self
        return NamedWorkloadSpec(name=self.name, scale=scale, seed=self.seed)

    def build(self):
        from ..traces.registry import build_trace

        return build_trace(self.name, self.scale, self.seed)

    def _stream(self, rng: random.Random) -> Iterator[Pair]:
        # Tenant-mix hook: cycle the materialized replay endlessly.
        trace = self.trace()
        if not len(trace):
            raise SpecError(f"named workload {self.name!r} produced an empty trace")
        while True:
            yield from trace


@register_workload
@dataclass(frozen=True)
class SequentialSpec(WorkloadSpec):
    """Wrap-around unit-or-larger-stride sweep (bcopy / streaming scans)."""

    kind: ClassVar[str] = "sequential"

    length: int = 50_000
    extent: int = 256 * 1024
    stride: int = 16
    base: int = 0x10_0000
    store_fraction: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        _positive_int(self.kind, "length", self.length)
        _positive_int(self.kind, "extent", self.extent)
        _positive_int(self.kind, "stride", self.stride)
        _fraction(self.kind, "store_fraction", self.store_fraction)

    def _stream(self, rng: random.Random) -> Iterator[Pair]:
        from ..traces.patterns import stride_stream

        return self._data_pairs(rng, stride_stream(self.base, self.extent, self.stride))


@register_workload
@dataclass(frozen=True)
class UniformRandomSpec(WorkloadSpec):
    """Uniform random references within a working set (capacity traffic)."""

    kind: ClassVar[str] = "uniform_random"

    length: int = 50_000
    working_set: int = 256 * 1024
    granule: int = 16
    base: int = 0x20_0000
    store_fraction: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        _positive_int(self.kind, "length", self.length)
        _positive_int(self.kind, "working_set", self.working_set)
        _positive_int(self.kind, "granule", self.granule)
        _fraction(self.kind, "store_fraction", self.store_fraction)

    def _stream(self, rng: random.Random) -> Iterator[Pair]:
        from ..traces.patterns import random_working_set

        return self._data_pairs(
            rng, random_working_set(rng, self.base, self.working_set, self.granule)
        )


@register_workload
@dataclass(frozen=True)
class ZipfianSpec(WorkloadSpec):
    """Zipf-distributed key popularity over a shuffled key layout.

    Key rank r is drawn with probability proportional to
    ``1 / (r + 1) ** alpha``; ranks are shuffled across the address
    range once per build so popularity is decorrelated from spatial
    layout, the way hot keys scatter across a real heap.
    """

    kind: ClassVar[str] = "zipfian"

    length: int = 50_000
    keys: int = 1_024
    alpha: float = 1.1
    granule: int = 64
    base: int = 0x40_0000
    store_fraction: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        _positive_int(self.kind, "length", self.length)
        _positive_int(self.kind, "keys", self.keys)
        _positive_int(self.kind, "granule", self.granule)
        _fraction(self.kind, "store_fraction", self.store_fraction)
        if self.keys > 1 << 24:
            raise SpecError(f"{self.kind} spec: keys capped at 2^24, got {self.keys}")
        if not isinstance(self.alpha, (int, float)) or self.alpha <= 0:
            raise SpecError(f"{self.kind} spec: alpha must be positive, got {self.alpha!r}")

    def _addresses(self, rng: random.Random) -> Iterator[int]:
        cumulative = []
        total = 0.0
        for rank in range(self.keys):
            total += (rank + 1) ** -self.alpha
            cumulative.append(total)
        slots = list(range(self.keys))
        rng.shuffle(slots)
        while True:
            rank = bisect.bisect_left(cumulative, rng.random() * total)
            rank = min(rank, self.keys - 1)
            yield self.base + slots[rank] * self.granule

    def _stream(self, rng: random.Random) -> Iterator[Pair]:
        return self._data_pairs(rng, self._addresses(rng))


@register_workload
@dataclass(frozen=True)
class HotspotSpec(WorkloadSpec):
    """A hot region absorbing most references over a larger cold set."""

    kind: ClassVar[str] = "hotspot"

    length: int = 50_000
    working_set: int = 64 * 1024
    hot_fraction: float = 0.05
    hot_prob: float = 0.95
    granule: int = 16
    base: int = 0x60_0000
    store_fraction: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        _positive_int(self.kind, "length", self.length)
        _positive_int(self.kind, "working_set", self.working_set)
        _positive_int(self.kind, "granule", self.granule)
        _fraction(self.kind, "hot_fraction", self.hot_fraction)
        _fraction(self.kind, "hot_prob", self.hot_prob)
        _fraction(self.kind, "store_fraction", self.store_fraction)
        if self.working_set < 2 * self.granule:
            raise SpecError(
                f"{self.kind} spec: working_set must hold at least two granules"
            )

    def _addresses(self, rng: random.Random) -> Iterator[int]:
        hot_slots = max(1, int(self.working_set * self.hot_fraction) // self.granule)
        total_slots = max(hot_slots + 1, self.working_set // self.granule)
        cold_slots = total_slots - hot_slots
        while True:
            if rng.random() < self.hot_prob:
                slot = rng.randrange(hot_slots)
            else:
                slot = hot_slots + rng.randrange(cold_slots)
            yield self.base + slot * self.granule

    def _stream(self, rng: random.Random) -> Iterator[Pair]:
        return self._data_pairs(rng, self._addresses(rng))


@register_workload
@dataclass(frozen=True)
class BurstySpec(WorkloadSpec):
    """Random background traffic punctuated by sequential bursts.

    The background is uniform traffic over ``working_set``; with
    probability ``burst_prob`` per reference a ``burst_bytes``-long
    unit-stride burst sweeps through a separate ``region``-byte segment
    — the widely spaced sequential miss runs a single stream buffer can
    follow (§4.1).
    """

    kind: ClassVar[str] = "bursty"

    length: int = 50_000
    working_set: int = 64 * 1024
    region: int = 256 * 1024
    burst_prob: float = 0.02
    burst_bytes: int = 512
    stride: int = 16
    granule: int = 16
    base: int = 0x80_0000
    store_fraction: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        _positive_int(self.kind, "length", self.length)
        _positive_int(self.kind, "working_set", self.working_set)
        _positive_int(self.kind, "region", self.region)
        _positive_int(self.kind, "burst_bytes", self.burst_bytes)
        _positive_int(self.kind, "stride", self.stride)
        _positive_int(self.kind, "granule", self.granule)
        _fraction(self.kind, "burst_prob", self.burst_prob)
        _fraction(self.kind, "store_fraction", self.store_fraction)

    def _stream(self, rng: random.Random) -> Iterator[Pair]:
        from ..traces.patterns import bursty, random_working_set

        background = random_working_set(rng, self.base, self.working_set, self.granule)
        addresses = bursty(
            rng,
            background,
            burst_region_base=self.base + self.working_set,
            burst_region_bytes=self.region,
            burst_prob=self.burst_prob,
            burst_bytes=self.burst_bytes,
            stride=self.stride,
        )
        return self._data_pairs(rng, addresses)


@register_workload
@dataclass(frozen=True)
class PointerChaseSpec(WorkloadSpec):
    """Linked-data-structure walk: poor spatial locality, few fields/node."""

    kind: ClassVar[str] = "pointer_chase"

    length: int = 50_000
    nodes: int = 4_096
    node_size: int = 64
    fields_per_visit: int = 2
    base: int = 0xA0_0000
    store_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        _positive_int(self.kind, "length", self.length)
        _positive_int(self.kind, "nodes", self.nodes)
        _positive_int(self.kind, "node_size", self.node_size)
        _positive_int(self.kind, "fields_per_visit", self.fields_per_visit)
        _fraction(self.kind, "store_fraction", self.store_fraction)

    def _stream(self, rng: random.Random) -> Iterator[Pair]:
        from ..traces.patterns import pointer_chase

        addresses = pointer_chase(
            rng, self.base, self.nodes, self.node_size, self.fields_per_visit
        )
        return self._data_pairs(rng, addresses)


@register_workload
@dataclass(frozen=True)
class TenantMixSpec(WorkloadSpec):
    """N tenant sub-specs interleaved with Zipfian popularity and phases.

    Each reference picks a tenant by Zipf(alpha) over the current
    popularity ranking and takes the tenant's next reference, offset
    into a private ``tenant_span``-byte address space (distinct tenants
    never alias).  Every ``phase_length`` references (0 = never) the
    rank-to-tenant assignment rotates deterministically, modelling the
    popularity churn a long-lived cache serves through.
    """

    kind: ClassVar[str] = "tenant_mix"

    tenants: Tuple[WorkloadSpec, ...] = ()
    length: int = 60_000
    alpha: float = 0.9
    phase_length: int = 0
    tenant_span: int = 1 << 40
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.tenants, list):
            object.__setattr__(self, "tenants", tuple(self.tenants))
        if not self.tenants:
            raise SpecError("tenant_mix spec needs at least one tenant")
        if not all(isinstance(tenant, WorkloadSpec) for tenant in self.tenants):
            raise SpecError("tenant_mix tenants must be WorkloadSpecs")
        _positive_int(self.kind, "length", self.length)
        _positive_int(self.kind, "tenant_span", self.tenant_span)
        if not isinstance(self.alpha, (int, float)) or self.alpha <= 0:
            raise SpecError(f"{self.kind} spec: alpha must be positive, got {self.alpha!r}")
        if isinstance(self.phase_length, bool) or not isinstance(self.phase_length, int) \
                or self.phase_length < 0:
            raise SpecError(
                f"{self.kind} spec: phase_length must be a non-negative integer, "
                f"got {self.phase_length!r}"
            )

    @property
    def label(self) -> str:
        return f"tenant_mix[{len(self.tenants)}]"

    def _stream(self, rng: random.Random) -> Iterator[Pair]:
        count = len(self.tenants)
        streams = [
            iter(tenant.pairs(salt=f"tenant{index}:{self.seed}"))
            for index, tenant in enumerate(self.tenants)
        ]
        cumulative = []
        total = 0.0
        for rank in range(count):
            total += (rank + 1) ** -self.alpha
            cumulative.append(total)
        drawn = 0
        while True:
            phase = 0 if not self.phase_length else drawn // self.phase_length
            rank = bisect.bisect_left(cumulative, rng.random() * total)
            rank = min(rank, count - 1)
            # Deterministic phase change: the popularity ranking rotates
            # across tenants, so every phase has a different hot tenant.
            tenant = (rank + phase) % count
            kind, address = next(streams[tenant])
            yield (kind, address + tenant * self.tenant_span)
            drawn += 1


# -- CLI / serve parsing -------------------------------------------------------

#: Preset names accepted by ``--workload`` and :func:`parse_workload`:
#: each is one default-parameter spec per access class, plus a
#: four-tenant mixer with phase churn.
WORKLOAD_PRESETS: Dict[str, WorkloadSpec] = {
    "zipfian": ZipfianSpec(),
    "hotspot": HotspotSpec(),
    "bursty": BurstySpec(),
    "pointer_chase": PointerChaseSpec(),
    "sequential": SequentialSpec(),
    "uniform": UniformRandomSpec(),
    "tenant_mix": TenantMixSpec(
        tenants=(
            ZipfianSpec(length=20_000),
            PointerChaseSpec(length=20_000),
            SequentialSpec(length=20_000),
            HotspotSpec(length=20_000),
        ),
        length=60_000,
        phase_length=15_000,
    ),
}


def parse_workload(text: str) -> WorkloadSpec:
    """Workload spec from CLI text: inline JSON, preset, or registry name.

    Raises :class:`~repro.common.errors.ConfigurationError` (of which
    :class:`SpecError` is a subclass) for anything unparsable, so CLI
    boundaries report exit code 2 the way ``--jobs`` validation does.
    """
    text = text.strip()
    if text.startswith("{"):
        return workload_from_json(text)
    if text in WORKLOAD_PRESETS:
        return WORKLOAD_PRESETS[text]
    from ..traces.registry import get_workload

    try:
        get_workload(text)
    except UnknownWorkloadError:
        presets = ", ".join(sorted(WORKLOAD_PRESETS))
        raise ConfigurationError(
            f"unknown workload {text!r}: not inline spec JSON, not a preset "
            f"({presets}), and not a registry benchmark"
        ) from None
    return NamedWorkloadSpec(name=text)
