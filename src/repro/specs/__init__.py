"""Declarative spec layer: frozen, picklable descriptions of runs.

``StructureSpec`` variants name every helper structure the paper
studies (miss cache, victim cache, stream buffers, stride buffers,
composites); ``WorkloadSpec`` variants name every reference stream —
registry traces (``NamedWorkloadSpec``, the old ``TraceSpec``),
parameterized access patterns (Zipfian, hotspot, bursty, pointer-chase,
sequential, uniform-random), and the multi-tenant ``TenantMixSpec``
mixer; ``SystemSpec`` binds workload +
:class:`~repro.common.config.SystemConfig` + structure into one value
that fully determines a simulation point.  ``build``/``describe`` give
a lossless spec ⇄ live-object round trip, and canonical JSON makes
specs the stable currency of the parallel engine, the result store, the
serve daemon, and telemetry records.
"""

from .structures import (
    CompositeSpec,
    MissCacheSpec,
    MultiWayStreamBufferSpec,
    MultiWayStrideBufferSpec,
    SpecError,
    StreamBufferSpec,
    StrideBufferSpec,
    StructureSpec,
    VictimCacheSpec,
    build,
    describe,
    parse_structure_code,
    register_structure,
    registered_kinds,
    structure_code,
    structure_from_dict,
)
from .system import SystemSpec, TraceSpec, spec_hash
from .workloads import (
    WORKLOAD_PRESETS,
    BurstySpec,
    HotspotSpec,
    NamedWorkloadSpec,
    PointerChaseSpec,
    SequentialSpec,
    TenantMixSpec,
    UniformRandomSpec,
    WorkloadSpec,
    ZipfianSpec,
    parse_workload,
    register_workload,
    registered_workload_kinds,
    unkeyed_reason,
    workload_from_dict,
    workload_from_json,
    workload_spec_of,
)

__all__ = [
    "SpecError",
    "StructureSpec",
    "MissCacheSpec",
    "VictimCacheSpec",
    "StreamBufferSpec",
    "MultiWayStreamBufferSpec",
    "StrideBufferSpec",
    "MultiWayStrideBufferSpec",
    "CompositeSpec",
    "register_structure",
    "registered_kinds",
    "build",
    "describe",
    "structure_from_dict",
    "parse_structure_code",
    "structure_code",
    "WorkloadSpec",
    "NamedWorkloadSpec",
    "SequentialSpec",
    "UniformRandomSpec",
    "ZipfianSpec",
    "HotspotSpec",
    "BurstySpec",
    "PointerChaseSpec",
    "TenantMixSpec",
    "register_workload",
    "registered_workload_kinds",
    "workload_from_dict",
    "workload_from_json",
    "workload_spec_of",
    "unkeyed_reason",
    "parse_workload",
    "WORKLOAD_PRESETS",
    "TraceSpec",
    "SystemSpec",
    "spec_hash",
]
