"""Declarative spec layer: frozen, picklable descriptions of runs.

``StructureSpec`` variants name every helper structure the paper
studies (miss cache, victim cache, stream buffers, stride buffers,
composites); ``TraceSpec`` names a registry trace; ``SystemSpec`` binds
trace + :class:`~repro.common.config.SystemConfig` + structure into one
value that fully determines a simulation point.  ``build``/``describe``
give a lossless spec ⇄ live-object round trip, and canonical JSON makes
specs the stable currency of the parallel engine and telemetry records.
"""

from .structures import (
    CompositeSpec,
    MissCacheSpec,
    MultiWayStreamBufferSpec,
    MultiWayStrideBufferSpec,
    SpecError,
    StreamBufferSpec,
    StrideBufferSpec,
    StructureSpec,
    VictimCacheSpec,
    build,
    describe,
    parse_structure_code,
    register_structure,
    registered_kinds,
    structure_code,
    structure_from_dict,
)
from .system import SystemSpec, TraceSpec, spec_hash

__all__ = [
    "SpecError",
    "StructureSpec",
    "MissCacheSpec",
    "VictimCacheSpec",
    "StreamBufferSpec",
    "MultiWayStreamBufferSpec",
    "StrideBufferSpec",
    "MultiWayStrideBufferSpec",
    "CompositeSpec",
    "register_structure",
    "registered_kinds",
    "build",
    "describe",
    "structure_from_dict",
    "parse_structure_code",
    "structure_code",
    "TraceSpec",
    "SystemSpec",
    "spec_hash",
]
