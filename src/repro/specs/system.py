"""System-level specs: workload reference + system config + structure.

A :class:`~repro.specs.workloads.WorkloadSpec` (named registry trace,
parameterized pattern, or tenant mix) names the reference stream — the
same key the parallel engine uses to memoize materialized traces in
worker processes.  :class:`SystemSpec` combines a workload spec, a
:class:`~repro.common.config.SystemConfig`, and an optional
:class:`~repro.specs.structures.StructureSpec` into one frozen,
picklable value that fully determines a simulation run.  Canonical JSON
via :meth:`SystemSpec.to_json` is what telemetry hashes and embeds, so a
run record carries everything needed to replay the run.

``TraceSpec`` — the old name-keyed trace reference — is now an alias of
:class:`~repro.specs.workloads.NamedWorkloadSpec`, field for field
compatible (``(name, scale, seed)``), and its ``of`` classmethod now
recovers *any* spec-built trace, not just registry ones.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional

from ..common.config import BASELINE_L2_LINE, CacheConfig, SystemConfig, baseline_system
from ..common.errors import ConfigurationError
from .structures import SpecError, StructureSpec, describe, structure_from_dict
from .workloads import NamedWorkloadSpec, WorkloadSpec, workload_from_dict, workload_spec_of

__all__ = ["TraceSpec", "SystemSpec", "spec_hash"]

_SIDES = ("i", "d")

#: Backward-compatible name: the registry-trace reference is now one
#: kind ("named") in the workload-spec hierarchy.
TraceSpec = NamedWorkloadSpec


@dataclass(frozen=True)
class SystemSpec:
    """One fully-determined simulation point.

    ``trace`` may be None for specs that describe configuration only
    (e.g. the CLI's run-record spec, where the trace varies per
    experiment); such specs still hash canonically but cannot be
    materialized into a run.
    """

    trace: Optional[WorkloadSpec] = None
    config: SystemConfig = field(default_factory=baseline_system)
    structure: Optional[StructureSpec] = None
    side: str = "d"
    warmup: int = 0
    classify: bool = False

    def __post_init__(self) -> None:
        if self.side not in _SIDES:
            raise ConfigurationError(f"side must be one of {_SIDES}, got {self.side!r}")
        if self.warmup < 0:
            raise ConfigurationError("warmup must be non-negative")
        if self.trace is not None and not isinstance(self.trace, WorkloadSpec):
            raise SpecError(
                f"trace must be a WorkloadSpec or None, got {type(self.trace).__name__}"
            )
        if self.structure is not None and not isinstance(self.structure, StructureSpec):
            raise SpecError(
                f"structure must be a StructureSpec or None, got {type(self.structure).__name__}"
            )

    @property
    def cache_config(self) -> CacheConfig:
        """The L1 geometry this spec's side replays against."""
        return self.config.icache if self.side == "i" else self.config.dcache

    @classmethod
    def for_level(
        cls,
        trace,
        cache_config: CacheConfig,
        side: str = "d",
        structure=None,
        warmup: int = 0,
        classify: bool = False,
    ) -> Optional["SystemSpec"]:
        """Spec for a single-level replay, or None for an unkeyed trace.

        ``trace`` may be any :class:`WorkloadSpec` (named, pattern, or
        mix), or a materialized trace whose spec is recovered via
        :func:`~repro.specs.workloads.workload_spec_of`.  ``structure``
        may be a live structure (described on the spot) or already a
        spec.  The L2 line size is widened to the L1 line when the
        sweep's geometry exceeds the baseline L2 line — single-level
        replays never touch the L2, so only the config invariant
        (L2 line >= L1 line) matters.
        """
        trace_spec = trace if isinstance(trace, WorkloadSpec) else workload_spec_of(trace)
        if trace_spec is None:
            return None
        structure_spec = (
            structure if structure is None or isinstance(structure, StructureSpec)
            else describe(structure)
        )
        base = baseline_system()
        config = replace(
            base,
            icache=cache_config,
            dcache=cache_config,
            l2=base.l2.with_line_size(max(BASELINE_L2_LINE, cache_config.line_size)),
        )
        return cls(
            trace=trace_spec,
            config=config,
            structure=structure_spec,
            side=side,
            warmup=warmup,
            classify=classify,
        )

    def build_structure(self):
        """Live structure for this point (None for the bare baseline)."""
        from .structures import build

        return build(self.structure)

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace": None if self.trace is None else self.trace.as_dict(),
            "config": self.config.as_dict(),
            "structure": None if self.structure is None else self.structure.as_dict(),
            "side": self.side,
            "warmup": self.warmup,
            "classify": self.classify,
        }

    def to_json(self) -> str:
        """Canonical JSON: key-sorted, minimal separators."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SystemSpec":
        trace = payload.get("trace")
        structure = payload.get("structure")
        return cls(
            trace=None if trace is None else workload_from_dict(trace),
            config=SystemConfig.from_dict(payload["config"]),
            structure=None if structure is None else structure_from_dict(structure),
            side=payload.get("side", "d"),
            warmup=payload.get("warmup", 0),
            classify=payload.get("classify", False),
        )

    @classmethod
    def from_json(cls, text: str) -> "SystemSpec":
        return cls.from_dict(json.loads(text))


def spec_hash(spec: SystemSpec) -> str:
    """Short stable hash of a spec's canonical JSON.

    Unlike hashing ``repr(config)``, this is independent of field
    declaration order and Python version, and every spec field — trace,
    geometry, structure options, side, warmup — perturbs it.
    """
    return hashlib.sha256(spec.to_json().encode("utf-8")).hexdigest()[:16]
