"""System-level specs: trace reference + system config + structure.

:class:`TraceSpec` names a registered workload trace by (name, scale,
seed) — the same key the parallel engine uses to memoize materialized
traces in worker processes.  :class:`SystemSpec` combines a trace
reference, a :class:`~repro.common.config.SystemConfig`, and an optional
:class:`~repro.specs.structures.StructureSpec` into one frozen,
picklable value that fully determines a simulation run.  Canonical JSON
via :meth:`SystemSpec.to_json` is what telemetry hashes and embeds, so a
run record carries everything needed to replay the run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional

from ..common.config import BASELINE_L2_LINE, CacheConfig, SystemConfig, baseline_system
from ..common.errors import ConfigurationError
from .structures import SpecError, StructureSpec, describe, structure_from_dict

__all__ = ["TraceSpec", "SystemSpec", "spec_hash"]

_SIDES = ("i", "d")


@dataclass(frozen=True)
class TraceSpec:
    """Reference to a registry workload trace: (name, scale, seed).

    ``scale=None`` means "the ambient default scale" — resolved by
    :func:`repro.experiments.workloads.default_scale` at materialization
    time, exactly like the engine's per-worker memo key.
    """

    name: str
    scale: Optional[int] = None
    seed: int = 0

    @classmethod
    def of(cls, trace) -> Optional["TraceSpec"]:
        """TraceSpec for a materialized trace, or None if it is hand-made.

        Only traces built through the workload registry can be renamed
        by reference; ad-hoc traces (e.g. in unit tests) return None and
        force callers onto the serial path.
        """
        meta = getattr(trace, "meta", None)
        if meta is None or not getattr(meta, "scale", 0):
            return None
        from ..common.errors import UnknownWorkloadError
        from ..traces.registry import get_workload

        try:
            get_workload(meta.name)
        except UnknownWorkloadError:
            return None
        return cls(name=meta.name, scale=meta.scale, seed=getattr(meta, "seed", 0))

    def trace(self):
        """Materialize (memoized per process) the referenced trace."""
        from ..experiments.workloads import materialized_trace

        return materialized_trace(self.name, scale=self.scale, seed=self.seed)

    def fingerprint(self) -> str:
        """Content hash of the referenced trace's reference stream.

        Materializes the trace (through the process memo) on first use;
        the hash itself is cached on the materialized trace.  This is
        the content half of the result store's key: the spec hash pins
        the *reference*, the fingerprint pins what the reference
        actually resolved to.
        """
        return self.trace().fingerprint()

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "scale": self.scale, "seed": self.seed}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "TraceSpec":
        return cls(
            name=payload["name"],
            scale=payload.get("scale"),
            seed=payload.get("seed", 0),
        )


@dataclass(frozen=True)
class SystemSpec:
    """One fully-determined simulation point.

    ``trace`` may be None for specs that describe configuration only
    (e.g. the CLI's run-record spec, where the trace varies per
    experiment); such specs still hash canonically but cannot be
    materialized into a run.
    """

    trace: Optional[TraceSpec] = None
    config: SystemConfig = field(default_factory=baseline_system)
    structure: Optional[StructureSpec] = None
    side: str = "d"
    warmup: int = 0
    classify: bool = False

    def __post_init__(self) -> None:
        if self.side not in _SIDES:
            raise ConfigurationError(f"side must be one of {_SIDES}, got {self.side!r}")
        if self.warmup < 0:
            raise ConfigurationError("warmup must be non-negative")
        if self.structure is not None and not isinstance(self.structure, StructureSpec):
            raise SpecError(
                f"structure must be a StructureSpec or None, got {type(self.structure).__name__}"
            )

    @property
    def cache_config(self) -> CacheConfig:
        """The L1 geometry this spec's side replays against."""
        return self.config.icache if self.side == "i" else self.config.dcache

    @classmethod
    def for_level(
        cls,
        trace,
        cache_config: CacheConfig,
        side: str = "d",
        structure=None,
        warmup: int = 0,
        classify: bool = False,
    ) -> Optional["SystemSpec"]:
        """Spec for a single-level replay, or None for an unkeyed trace.

        ``structure`` may be a live structure (described on the spot) or
        already a spec.  The L2 line size is widened to the L1 line when
        the sweep's geometry exceeds the baseline L2 line — single-level
        replays never touch the L2, so only the config invariant
        (L2 line >= L1 line) matters.
        """
        trace_spec = trace if isinstance(trace, TraceSpec) else TraceSpec.of(trace)
        if trace_spec is None:
            return None
        structure_spec = (
            structure if structure is None or isinstance(structure, StructureSpec)
            else describe(structure)
        )
        base = baseline_system()
        config = replace(
            base,
            icache=cache_config,
            dcache=cache_config,
            l2=base.l2.with_line_size(max(BASELINE_L2_LINE, cache_config.line_size)),
        )
        return cls(
            trace=trace_spec,
            config=config,
            structure=structure_spec,
            side=side,
            warmup=warmup,
            classify=classify,
        )

    def build_structure(self):
        """Live structure for this point (None for the bare baseline)."""
        from .structures import build

        return build(self.structure)

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace": None if self.trace is None else self.trace.as_dict(),
            "config": self.config.as_dict(),
            "structure": None if self.structure is None else self.structure.as_dict(),
            "side": self.side,
            "warmup": self.warmup,
            "classify": self.classify,
        }

    def to_json(self) -> str:
        """Canonical JSON: key-sorted, minimal separators."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SystemSpec":
        trace = payload.get("trace")
        structure = payload.get("structure")
        return cls(
            trace=None if trace is None else TraceSpec.from_dict(trace),
            config=SystemConfig.from_dict(payload["config"]),
            structure=None if structure is None else structure_from_dict(structure),
            side=payload.get("side", "d"),
            warmup=payload.get("warmup", 0),
            classify=payload.get("classify", False),
        )

    @classmethod
    def from_json(cls, text: str) -> "SystemSpec":
        return cls.from_dict(json.loads(text))


def spec_hash(spec: SystemSpec) -> str:
    """Short stable hash of a spec's canonical JSON.

    Unlike hashing ``repr(config)``, this is independent of field
    declaration order and Python version, and every spec field — trace,
    geometry, structure options, side, warmup — perturbs it.
    """
    return hashlib.sha256(spec.to_json().encode("utf-8")).hexdigest()[:16]
