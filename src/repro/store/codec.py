"""JSON codec for the result types the engine memoizes.

Each cacheable job result — :class:`~repro.experiments.engine.LevelSummary`,
:class:`~repro.experiments.sweeps.EntrySweep`,
:class:`~repro.experiments.sweeps.RunLengthSweep` — is an all-integer
dataclass, so JSON round trips are *exact*: a decoded result compares
equal to the original, which is what lets a warm store reproduce every
output row bit-for-bit.

Imports of the result types are deferred into the codec functions:
``repro.experiments.engine`` imports the store, so importing engine
types at module level here would close a cycle.

:class:`BadQuery` lives here rather than in the serve layer for the
same reason — it is a *storable* type (the daemon's negative cache
memoizes request rejections), and the codec is the one module every
storable type must be visible from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

__all__ = ["BadQuery", "encode_result", "decode_result"]


@dataclass(frozen=True)
class BadQuery:
    """A memoized request rejection: the 400 message for one exact body.

    Stored by the serving layer's negative cache, keyed by the hash of
    the raw request bytes, so a client retrying the same malformed or
    unsatisfiable query is answered from disk without re-parsing.
    """

    error: str


def _result_types() -> Dict[str, type]:
    from ..experiments.engine import LevelSummary
    from ..experiments.sweeps import EntrySweep, RunLengthSweep

    return {
        "LevelSummary": LevelSummary,
        "EntrySweep": EntrySweep,
        "RunLengthSweep": RunLengthSweep,
        "BadQuery": BadQuery,
    }


def encode_result(result: object) -> Dict[str, object]:
    """``{"type": ..., "fields": ...}`` for a supported result object."""
    types = _result_types()
    for name, cls in types.items():
        if type(result) is cls:
            fields = dict(vars(result))
            return {"type": name, "fields": fields}
    raise TypeError(f"result type {type(result).__name__} is not storable")


def _int_list(value: object) -> list:
    if not isinstance(value, list):
        raise TypeError("expected a list")
    return [int(item) for item in value]


def _decode_level_summary(cls: type, fields: Dict[str, object]):
    conflicts = fields.get("conflict_misses")
    return cls(
        accesses=int(fields["accesses"]),
        demand_misses=int(fields["demand_misses"]),
        removed_misses=int(fields["removed_misses"]),
        misses_to_next_level=int(fields["misses_to_next_level"]),
        stream_stall_cycles=int(fields.get("stream_stall_cycles", 0)),
        conflict_misses=None if conflicts is None else int(conflicts),
    )


def _decode_entry_sweep(cls: type, fields: Dict[str, object]):
    return cls(
        total_misses=int(fields["total_misses"]),
        conflict_misses=int(fields["conflict_misses"]),
        hits_by_entries=_int_list(fields["hits_by_entries"]),
    )


def _decode_run_sweep(cls: type, fields: Dict[str, object]):
    return cls(
        total_misses=int(fields["total_misses"]),
        removed_by_run=_int_list(fields["removed_by_run"]),
    )


def _decode_bad_query(cls: type, fields: Dict[str, object]):
    error = fields["error"]
    if not isinstance(error, str):
        raise TypeError("BadQuery.error must be a string")
    return cls(error=error)


_DECODERS: Dict[str, Callable] = {
    "LevelSummary": _decode_level_summary,
    "EntrySweep": _decode_entry_sweep,
    "RunLengthSweep": _decode_run_sweep,
    "BadQuery": _decode_bad_query,
}


def decode_result(payload: object) -> object:
    """Rebuild a result object from its :func:`encode_result` form.

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
    payloads — :meth:`ResultStore.get` turns any of those into a miss.
    """
    if not isinstance(payload, dict):
        raise TypeError("result payload must be a mapping")
    name = payload["type"]
    fields = payload["fields"]
    if not isinstance(fields, dict):
        raise TypeError("result fields must be a mapping")
    decoder = _DECODERS[name]
    return decoder(_result_types()[name], fields)
