"""Content-addressed, persistent memoization of simulation results."""

from .core import (
    ENV_RESULT_STORE,
    RESULT_SCHEMA_VERSION,
    ResultKey,
    ResultStore,
    StoreStats,
    StoreWriteWarning,
    current_store,
    set_store,
)

__all__ = [
    "ENV_RESULT_STORE",
    "RESULT_SCHEMA_VERSION",
    "ResultKey",
    "ResultStore",
    "StoreStats",
    "StoreWriteWarning",
    "current_store",
    "set_store",
]
