"""Persistent, content-addressed result store for simulation points.

Every engine job is a pure function of its inputs: a frozen
:class:`~repro.specs.SystemSpec` (trace reference, geometry, structure,
side, warmup, classify) plus a handful of job parameters, replayed over
a deterministic trace.  That makes simulation results memoizable by
*configuration identity* — the software analogue of way-memoization in
hardware caches — and this module is the memo: a directory of one JSON
file per ``(spec hash, trace fingerprint, job parameters)`` key.

Design points:

* **Content addressing.**  The key hashes the spec's canonical JSON
  *and* the trace's content fingerprint, so a changed generator, scale
  resolution, or seed can never serve a stale result — the key simply
  differs.  The result-schema version is part of the key, so bumping
  :data:`RESULT_SCHEMA_VERSION` invalidates every old entry at once.
* **Atomic writes.**  Entries are written to a temp file in the target
  directory and ``os.replace``-d into place, so concurrent writers
  (parallel engines sharing one store) can never interleave bytes; the
  worst case is both simulating the same point and one rename winning.
* **Corruption-tolerant reads.**  A truncated, hand-edited, or
  wrong-schema entry is a *miss*, never a crash: :meth:`ResultStore.get`
  swallows decode errors and the engine recomputes (and rewrites) the
  point.

The active store is resolved from the ``REPRO_RESULT_STORE`` environment
variable (or ``repro-experiments --result-store``, which sets it so
worker processes inherit the store too); with neither set, the engine
runs exactly as before — no store reads, no store writes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from .codec import decode_result, encode_result

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "ENV_RESULT_STORE",
    "ResultKey",
    "StoreStats",
    "StoreWriteWarning",
    "ResultStore",
    "current_store",
    "set_store",
]


class StoreWriteWarning(UserWarning):
    """The result store could not persist an entry (run continues uncached)."""

#: Version of the stored-result schema: part of every key, so bumping it
#: orphans (and :meth:`ResultStore.gc` later removes) all older entries.
RESULT_SCHEMA_VERSION = 1

ENV_RESULT_STORE = "REPRO_RESULT_STORE"


@dataclass(frozen=True)
class ResultKey:
    """Identity of one cacheable simulation point.

    ``spec_hash`` pins the full :class:`~repro.specs.SystemSpec`
    (including the trace *reference*), ``trace_fingerprint`` pins the
    trace *content*, and ``extras`` carries job parameters outside the
    spec (sweep kind, entry counts, run lengths).
    """

    job_kind: str
    spec_hash: str
    trace_fingerprint: str
    extras: Mapping = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "job_kind": self.job_kind,
            "spec_hash": self.spec_hash,
            "trace_fingerprint": self.trace_fingerprint,
            "extras": dict(self.extras),
            "result_schema": RESULT_SCHEMA_VERSION,
        }

    def digest(self) -> str:
        payload = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


@dataclass
class StoreStats:
    """One walk of the store tree, for ``repro-experiments store stats``."""

    root: str
    entries: int = 0
    total_bytes: int = 0
    #: Entries under version directories other than the current schema.
    stale_entries: int = 0
    #: ``.tmp-*`` files orphaned by writers that died mid-insert.
    orphaned_tmp: int = 0

    def render(self) -> str:
        lines = [
            f"result store at {self.root}",
            f"  schema version:  {RESULT_SCHEMA_VERSION}",
            f"  current entries: {self.entries}",
            f"  stale entries:   {self.stale_entries}",
            f"  orphaned tmp:    {self.orphaned_tmp}",
            f"  total size:      {self.total_bytes} bytes",
        ]
        return "\n".join(lines)


class ResultStore:
    """JSON-per-key result store under one root directory.

    Layout: ``<root>/v<schema>/<digest[:2]>/<digest>.json`` — the
    two-character fan-out keeps directories small for stores holding the
    tens of thousands of points a full design-space sweep produces.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._warned_write = False

    # -- paths ----------------------------------------------------------------

    def _version_dir(self) -> Path:
        return self.root / f"v{RESULT_SCHEMA_VERSION}"

    def _entry_path(self, key: ResultKey) -> Path:
        digest = key.digest()
        return self._version_dir() / digest[:2] / f"{digest}.json"

    # -- read/write -----------------------------------------------------------

    def get(self, key: ResultKey) -> Tuple[Optional[object], int]:
        """``(result, bytes_read)`` for a key, or ``(None, 0)`` on a miss.

        *Any* failure — missing file, truncated JSON, schema mismatch,
        unknown result type, wrong field types — degrades to a miss so a
        damaged store can only cost recomputation, never correctness.
        """
        path = self._entry_path(key)
        try:
            raw = path.read_bytes()
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                return None, 0
            if payload.get("result_schema") != RESULT_SCHEMA_VERSION:
                return None, 0
            if payload.get("key") != key.as_dict():
                # Digest collision or tampered entry: treat as absent.
                return None, 0
            return decode_result(payload["result"]), len(raw)
        except (OSError, ValueError, KeyError, TypeError):
            return None, 0

    def put(self, key: ResultKey, result: object) -> None:
        """Insert (or overwrite) one result atomically.

        Serialization failures for unknown result types propagate (a
        programming error); filesystem races lose benignly because the
        final ``os.replace`` is atomic.

        Filesystem failures — ``ENOSPC``, a read-only store directory,
        permission loss mid-sweep — must never take a long run down when
        the store is a pure accelerator: the first one triggers a single
        :class:`StoreWriteWarning` and every insert after it degrades to
        a silent no-op (reads keep working).
        """
        # Encode before touching the filesystem so unknown-result-type
        # errors (programming bugs) still propagate loudly.
        payload = {
            "result_schema": RESULT_SCHEMA_VERSION,
            "key": key.as_dict(),
            "result": encode_result(result),
        }
        try:
            path = self._entry_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                mode="w",
                encoding="utf-8",
                dir=path.parent,
                prefix=".tmp-",
                suffix=".json",
                delete=False,
            )
            try:
                with handle:
                    json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
                os.replace(handle.name, path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            if not self._warned_write:
                self._warned_write = True
                warnings.warn(
                    f"result store at {self.root} is not writable "
                    f"({exc}); continuing without persisting results",
                    StoreWriteWarning,
                    stacklevel=2,
                )

    # -- maintenance ----------------------------------------------------------

    def _iter_entries(self):
        """Yield ``(path, is_current_version)`` for every stored entry."""
        if not self.root.is_dir():
            return
        current = self._version_dir().name
        for version_dir in sorted(self.root.iterdir()):
            if not version_dir.is_dir() or not version_dir.name.startswith("v"):
                continue
            for path in sorted(version_dir.glob("*/*.json")):
                yield path, version_dir.name == current

    def _iter_tmp_files(self):
        """Yield ``.tmp-*`` files orphaned by writers that died mid-insert.

        (``glob("*/*.json")`` above never matches them: pathlib's ``*``
        skips dotfiles, which is exactly why in-flight writes are
        invisible to :meth:`stats` and entry iteration.)
        """
        if not self.root.is_dir():
            return
        yield from sorted(self.root.rglob(".tmp-*.json"))

    def stats(self) -> StoreStats:
        stats = StoreStats(root=str(self.root))
        for path, is_current in self._iter_entries():
            size = path.stat().st_size
            stats.total_bytes += size
            if is_current:
                stats.entries += 1
            else:
                stats.stale_entries += 1
        stats.orphaned_tmp = sum(1 for _ in self._iter_tmp_files())
        return stats

    def gc(self) -> int:
        """Remove superseded-schema entries and orphaned temp files.

        Returns the number of files removed.  Temp files are left behind
        only by writers that died between creating one and the atomic
        ``os.replace`` (a kill -9, an injected worker crash), so they
        are always garbage by the time ``gc`` runs.
        """
        removed = 0
        for path, is_current in self._iter_entries():
            if not is_current:
                path.unlink(missing_ok=True)
                removed += 1
        for path in self._iter_tmp_files():
            path.unlink(missing_ok=True)
            removed += 1
        self._prune_empty_dirs()
        return removed

    def clear(self) -> int:
        """Remove every entry, current schema included; return count."""
        removed = 0
        for path, _ in self._iter_entries():
            path.unlink(missing_ok=True)
            removed += 1
        self._prune_empty_dirs()
        return removed

    def _prune_empty_dirs(self) -> None:
        if not self.root.is_dir():
            return
        for version_dir in self.root.iterdir():
            if not version_dir.is_dir():
                continue
            for fan_dir in list(version_dir.iterdir()):
                if fan_dir.is_dir() and not any(fan_dir.iterdir()):
                    fan_dir.rmdir()
            if not any(version_dir.iterdir()):
                version_dir.rmdir()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r})"


# -- the active store ---------------------------------------------------------

_CACHED: Optional[ResultStore] = None


def current_store() -> Optional[ResultStore]:
    """The active result store, or None when memoization is off (default).

    Resolved from ``REPRO_RESULT_STORE`` on every call (cheap: one env
    read plus a cached object), so worker processes and late
    ``--result-store`` flags all see the same answer.
    """
    global _CACHED
    path = os.environ.get(ENV_RESULT_STORE, "")
    if not path:
        return None
    if _CACHED is None or str(_CACHED.root) != path:
        _CACHED = ResultStore(path)
    return _CACHED


def set_store(path: Optional[str]) -> Optional[ResultStore]:
    """Point the active store at *path* (None disables it).

    Sets the environment variable, so engine worker processes — fork or
    spawn — inherit the same store.
    """
    if path:
        os.environ[ENV_RESULT_STORE] = str(path)
    else:
        os.environ.pop(ENV_RESULT_STORE, None)
    return current_store()
