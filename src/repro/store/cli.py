"""Maintenance subcommand for the result store.

Invoked as ``repro-experiments store {stats|gc|clear}`` (the experiments
CLI dispatches here when the first positional is ``store``).  The store
root comes from ``--result-store`` or the ``REPRO_RESULT_STORE``
environment variable, same as the engine's memoization path.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .core import ENV_RESULT_STORE, ResultStore, current_store

__all__ = ["run_store_command"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments store",
        description="Inspect or clean the content-addressed result store.",
    )
    parser.add_argument(
        "action",
        choices=["stats", "gc", "clear"],
        help=(
            "stats: entry counts and size; gc: drop entries from superseded "
            "schema versions plus orphaned temp files; clear: drop every entry"
        ),
    )
    parser.add_argument(
        "--result-store",
        metavar="DIR",
        default=None,
        help=f"store root (default: ${ENV_RESULT_STORE})",
    )
    return parser


def run_store_command(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro-experiments store ...``; returns exit code."""
    args = _build_parser().parse_args(argv)
    if args.result_store:
        store: Optional[ResultStore] = ResultStore(args.result_store)
    else:
        store = current_store()
    if store is None:
        print(
            "error: no result store configured "
            f"(pass --result-store or set ${ENV_RESULT_STORE})"
        )
        return 2

    if args.action == "stats":
        print(store.stats().render())
    elif args.action == "gc":
        removed = store.gc()
        print(f"removed {removed} stale entries/tmp files from {store.root}")
    else:
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
    return 0
