"""Figure 4-7: stream buffer performance vs. line size.

Average percent of misses removed by single and four-way stream buffers
behind 4KB caches as the line size grows from 4B to 256B.  Paper
landmarks: data-side benefit collapses with line size (a single buffer
falls ~6.8x from 8B to 128B lines, a four-way buffer ~4.5x) because
widely distributed data make the *next* 128 bytes unlikely to be wanted;
instruction-side buffers hold up far better (still 40%+ at 128B), since
procedures are long and code is fetched sequentially.
"""

from __future__ import annotations

from typing import Optional

from ..buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from ..common.config import CacheConfig
from .base import FigureResult, Series
from .figure_4_6 import _average_removal
from .workloads import suite

__all__ = ["run", "LINE_SIZES"]

LINE_SIZES = [4, 8, 16, 32, 64, 128, 256]
CACHE_BYTES = 4096


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> FigureResult:
    traces = traces if traces is not None else suite(scale, seed)
    curves = {
        "single, I-cache": [],
        "single, D-cache": [],
        "4-way, I-cache": [],
        "4-way, D-cache": [],
    }
    for line_size in LINE_SIZES:
        config = CacheConfig(CACHE_BYTES, line_size)
        curves["single, I-cache"].append(
            _average_removal(traces, "i", config, lambda: StreamBuffer(4))
        )
        curves["single, D-cache"].append(
            _average_removal(traces, "d", config, lambda: StreamBuffer(4))
        )
        curves["4-way, I-cache"].append(
            _average_removal(traces, "i", config, lambda: MultiWayStreamBuffer(4, 4))
        )
        curves["4-way, D-cache"].append(
            _average_removal(traces, "d", config, lambda: MultiWayStreamBuffer(4, 4))
        )
    return FigureResult(
        experiment_id="figure_4_7",
        title="Stream buffer performance vs. line size (4KB caches)",
        xlabel="line size (bytes)",
        ylabel="percent of misses removed (avg over benchmarks)",
        series=[Series(label, LINE_SIZES, values) for label, values in curves.items()],
        notes=[
            "paper: D-side falls steeply with line size (6.8x single / 4.5x 4-way",
            "from 8B to 128B); I-side still removes 40%+ at 128B lines",
        ],
    )
