"""Figure 3-1: percentage of misses due to conflicts (4KB I and D, 16B).

Runs the 3C classifier alongside each baseline L1 and reports, per
benchmark and per side, the share of misses that a fully-associative
equal-capacity cache would have avoided.  The paper's suite averages are
29% for the instruction cache and 39% for the data cache; met shows "by
far the highest ratio" on the data side.
"""

from __future__ import annotations

from typing import Optional

from ..common.config import CacheConfig
from ..common.stats import percent
from .base import FigureResult, Series, level_point_specs, run_point_specs
from .runner import run_level
from .workloads import suite

__all__ = ["run"]

PAPER_AVERAGE_I = 29.0
PAPER_AVERAGE_D = 39.0


def run(
    traces=None,
    scale: Optional[int] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
    resilience=None,
) -> FigureResult:
    traces = list(traces) if traces is not None else suite(scale, seed)
    config = CacheConfig(4096, 16)
    names = [trace.name for trace in traces]
    specs = level_point_specs(traces, config, classify=True)
    if specs is not None:
        # Declarative points through the engine (parallel with jobs > 1).
        summaries = run_point_specs(specs, jobs=jobs, resilience=resilience)
        i_pct = [percent(s.conflict_misses, s.demand_misses) for s in summaries[: len(traces)]]
        d_pct = [percent(s.conflict_misses, s.demand_misses) for s in summaries[len(traces):]]
    else:
        # Hand-made traces carry no rebuild recipe: replay them inline.
        i_pct, d_pct = [], []
        for trace in traces:
            irun = run_level(trace.instruction_addresses, config, classify=True)
            drun = run_level(trace.data_addresses, config, classify=True)
            i_pct.append(irun.classifier.percent_conflict)
            d_pct.append(drun.classifier.percent_conflict)
    names.append("average")
    i_pct.append(sum(i_pct) / len(i_pct))
    d_pct.append(sum(d_pct) / len(d_pct))
    return FigureResult(
        experiment_id="figure_3_1",
        title="Conflict misses, 4KB I and D caches, 16B lines",
        xlabel="benchmark",
        ylabel="percent of misses due to conflicts",
        series=[
            Series("L1 I-cache", names, i_pct),
            Series("L1 D-cache", names, d_pct),
        ],
        notes=[
            f"paper averages: I {PAPER_AVERAGE_I:.0f}%, D {PAPER_AVERAGE_D:.0f}%",
            "paper: met has by far the highest data conflict ratio",
        ],
    )
