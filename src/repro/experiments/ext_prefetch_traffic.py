"""Prefetch bandwidth accounting — the cost the paper leaves implicit.

§4.1 is careful about cache *pollution* (prefetched lines stay in the
buffer) but silent about *bandwidth*: every buffer allocation launches
``entries`` second-level fetches whether or not the stream continues,
and the paper's own data shows most data streams die within a few
lines.  This experiment measures the traffic amplification — prefetches
issued per miss actually removed — for the paper's 4-way data buffer,
and evaluates the classic remedy: an **allocation filter** that waits
for a second sequential miss before committing a buffer
(``StreamBuffer(allocation_filter=True)``).

Expected shape: on streaming codes (linpack, liver) the paper's design
is already efficient (~1.1 fetches per removed miss) and the filter is
free; on pointer/conflict codes (ccom, met) the unfiltered buffer
wastes an order of magnitude more bandwidth, and the filter trades a
little removal for most of that waste — except where the "streams" are
themselves conflict artifacts (met), which the filter rightly refuses
to chase.
"""

from __future__ import annotations

from typing import Optional

from ..buffers.stream_buffer import MultiWayStreamBuffer
from ..common.config import CacheConfig
from ..common.stats import percent, safe_div
from .base import TableResult
from .runner import run_level
from .workloads import suite

__all__ = ["run"]

CONFIG = CacheConfig(4096, 16)


def _measure(addresses, allocation_filter: bool):
    buffer = MultiWayStreamBuffer(ways=4, entries=4, allocation_filter=allocation_filter)
    run = run_level(addresses, CONFIG, buffer)
    removed = run.stats.removed_misses
    return (
        percent(removed, run.stats.demand_misses),
        buffer.prefetches_issued,
        safe_div(buffer.prefetches_issued, removed, default=float("inf")),
    )


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    rows = []
    for trace in traces:
        addresses = trace.data_addresses
        base_removed, base_issued, base_ratio = _measure(addresses, False)
        filt_removed, filt_issued, filt_ratio = _measure(addresses, True)
        rows.append(
            [
                trace.name,
                round(base_removed, 1),
                round(base_ratio, 1) if base_ratio != float("inf") else "inf",
                round(filt_removed, 1),
                round(filt_ratio, 1) if filt_ratio != float("inf") else "inf",
                round(100.0 * safe_div(base_issued - filt_issued, base_issued), 1),
            ]
        )
    return TableResult(
        experiment_id="ext_prefetch_traffic",
        title="Prefetch bandwidth: 4-way data stream buffer, with/without allocation filter",
        headers=[
            "program",
            "removed % (paper)",
            "fetches/removed",
            "removed % (filtered)",
            "fetches/removed",
            "traffic saved %",
        ],
        rows=rows,
        notes=[
            "the paper allocates on every miss; the filter waits for a second",
            "sequential miss, trading a little removal for most of the wasted",
            "second-level fetch bandwidth on non-streaming codes",
        ],
    )
