"""§5 overlap statistic: victim cache vs. stream buffer orthogonality.

The paper argues the two mechanisms are nearly orthogonal for data
references: over the suite, only 2.5% of 4KB data-cache misses that hit
in a four-entry victim cache also hit in a four-way stream buffer — for
every benchmark except linpack, whose sequential access patterns push
the overlap to 50% of its victim-cache hits (and even then only 4% of
linpack's misses hit in the victim cache at all).

The composite augmentation counts, for every miss, how many members
could have satisfied it; that's exactly the overlap measure.
"""

from __future__ import annotations

from typing import Optional

from ..buffers.base import CompositeAugmentation
from ..buffers.stream_buffer import MultiWayStreamBuffer
from ..buffers.victim_cache import VictimCache
from ..common.config import CacheConfig
from ..common.stats import percent
from .base import TableResult
from .runner import run_level
from .workloads import suite

__all__ = ["run"]


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    config = CacheConfig(4096, 16)
    rows = []
    for trace in traces:
        victim = VictimCache(entries=4)
        stream = MultiWayStreamBuffer(ways=4, entries=4)
        composite = CompositeAugmentation([victim, stream])
        run_result = run_level(trace.data_addresses, config, composite)
        misses = run_result.misses
        overlap = composite.overlap_hits
        rows.append(
            [
                trace.name,
                misses,
                victim.hits,
                stream.hits,
                overlap,
                round(percent(overlap, misses), 2),
                round(percent(overlap, victim.hits), 1),
            ]
        )
    return TableResult(
        experiment_id="overlap_5",
        title="Victim-cache / stream-buffer overlap on data misses (VC4 + 4-way SB)",
        headers=[
            "program",
            "D misses",
            "VC hits",
            "SB hits",
            "both hit",
            "% of misses",
            "% of VC hits",
        ],
        rows=rows,
        notes=[
            "paper: overlap is ~2.5% of misses for ccom/met/yacc/grr/liver;",
            "linpack's sequential data pushes 50% of its (few) VC hits into the SB too",
        ],
    )
