"""Figure 5-1: improved system performance.

The paper's combined system: the baseline plus a four-entry data victim
cache, a (single, four-entry) instruction stream buffer, and a four-way
data stream buffer.  Reports, per benchmark, the percent of potential
performance for the base and improved systems, the speedup, and the
L1 miss-rate ratio.  Paper landmarks: the combination cuts the
first-level miss rate to less than half of baseline and yields an
average 143% performance improvement over the six benchmarks.
"""

from __future__ import annotations

from typing import Optional

from ..buffers.base import CompositeAugmentation
from ..buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from ..buffers.victim_cache import VictimCache
from ..common.config import baseline_system
from ..common.stats import safe_div
from ..hierarchy.performance import evaluate_performance
from .base import TableResult
from .runner import run_system
from .workloads import suite

__all__ = ["run", "improved_augmentations"]


def improved_augmentations():
    """The §5 configuration: I stream buffer; data VC4 + 4-way SB."""
    iaug = StreamBuffer(entries=4)
    daug = CompositeAugmentation([VictimCache(entries=4), MultiWayStreamBuffer(ways=4, entries=4)])
    return iaug, daug


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    timing = baseline_system().timing
    rows = []
    improvements = []
    miss_ratios = []
    for trace in traces:
        base_result = run_system(trace, prewarm_l2=True)
        base_perf = evaluate_performance(base_result, timing)
        iaug, daug = improved_augmentations()
        improved_result = run_system(
            trace, iaugmentation=iaug, daugmentation=daug, prewarm_l2=True
        )
        improved_perf = evaluate_performance(improved_result, timing)
        speedup = improved_perf.speedup_over(base_perf)
        improvements.append(100.0 * (speedup - 1.0))
        base_l1_misses = (
            base_result.istats.misses_to_next_level + base_result.dstats.misses_to_next_level
        )
        improved_l1_misses = (
            improved_result.istats.misses_to_next_level
            + improved_result.dstats.misses_to_next_level
        )
        miss_ratio = safe_div(improved_l1_misses, base_l1_misses, default=1.0)
        miss_ratios.append(miss_ratio)
        rows.append(
            [
                trace.name,
                round(base_perf.percent_of_potential, 1),
                round(improved_perf.percent_of_potential, 1),
                round(speedup, 2),
                round(miss_ratio, 3),
            ]
        )
    rows.append(
        [
            "average",
            "",
            "",
            round(1.0 + sum(improvements) / len(improvements) / 100.0, 2),
            round(sum(miss_ratios) / len(miss_ratios), 3),
        ]
    )
    return TableResult(
        experiment_id="figure_5_1",
        title="Improved system performance: +data VC4, I stream buffer, 4-way data SB",
        headers=[
            "program",
            "base % potential",
            "improved % potential",
            "speedup",
            "L1 miss ratio (improved/base)",
        ],
        rows=rows,
        notes=[
            "paper: first-level misses reaching L2 cut to less than half of baseline;",
            "average performance improvement 143% (speedup 2.43) on its 24/320-cycle system",
        ],
    )
