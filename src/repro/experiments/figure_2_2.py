"""Figure 2-2: baseline design performance.

For each benchmark, the percentage of the machine's potential
performance actually achieved, and where the rest went: first-level
instruction misses, first-level data misses, and second-level misses.
The paper's observation — "most benchmarks lose over half of their
potential performance in first level cache misses" — is the quantity
checked here.
"""

from __future__ import annotations

from typing import Optional

from ..common.config import baseline_system
from ..hierarchy.performance import evaluate_performance
from .base import FigureResult, Series
from .runner import run_system
from .workloads import suite

__all__ = ["run"]


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> FigureResult:
    traces = traces if traces is not None else suite(scale, seed)
    timing = baseline_system().timing
    names = []
    achieved = []
    lost_l1i = []
    lost_l1d = []
    lost_l2 = []
    for trace in traces:
        result = run_system(trace, prewarm_l2=True)
        breakdown = evaluate_performance(result, timing).loss_breakdown()
        names.append(trace.name)
        achieved.append(breakdown["achieved"])
        lost_l1i.append(breakdown["l1i_misses"])
        lost_l1d.append(breakdown["l1d_misses"])
        lost_l2.append(breakdown["l2_misses"])
    return FigureResult(
        experiment_id="figure_2_2",
        title="Baseline design performance (percent of potential)",
        xlabel="benchmark",
        ylabel="percent of potential performance",
        series=[
            Series("achieved", names, achieved),
            Series("lost to L1 I-misses", names, lost_l1i),
            Series("lost to L1 D-misses", names, lost_l1d),
            Series("lost to L2 misses", names, lost_l2),
        ],
        notes=[
            "baseline: 24 instruction-time L1 miss penalty, 320 L2; L2 prewarmed",
            "(first-touch L2 misses are a trace-length artifact at synthetic scale);",
            "paper: most benchmarks lose over half their performance to L1 misses",
        ],
    )
