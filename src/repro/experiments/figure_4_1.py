"""Figure 4-1: limited time for prefetch (ccom instruction stream).

For each classical prefetch scheme — prefetch always, prefetch on miss,
tagged prefetch — the cumulative share of useful prefetches that are
demanded within N instruction issues of being launched.  The paper's
point: with four-instruction lines, prefetched lines "must be received
within four instruction-times to keep up with the machine", far less
than the many-cycle second-level latency, which is what motivates stream
buffers launching prefetches well before a tag transition can occur.
"""

from __future__ import annotations

from typing import List, Optional

from ..buffers.prefetch import PrefetchingCache, PrefetchScheme
from ..common.config import CacheConfig
from .base import FigureResult, Series
from .workloads import suite

__all__ = ["run", "BUDGETS"]

BUDGETS = list(range(0, 26, 2))


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> FigureResult:
    traces = traces if traces is not None else suite(scale, seed)
    ccom = next(trace for trace in traces if trace.name == "ccom")
    instruction_stream = ccom.instruction_addresses
    config = CacheConfig(4096, 16)
    shift = config.offset_bits
    series: List[Series] = []
    for scheme in (PrefetchScheme.ON_MISS, PrefetchScheme.TAGGED, PrefetchScheme.ALWAYS):
        cache = PrefetchingCache(config, scheme)
        for now, address in enumerate(instruction_stream):
            cache.access(address >> shift, now)
        curve = [cache.stats.percent_needed_within(budget) for budget in BUDGETS]
        series.append(Series(scheme.value, BUDGETS, curve))
    return FigureResult(
        experiment_id="figure_4_1",
        title="Limited time for prefetch: ccom I-cache, 16B lines",
        xlabel="instructions until prefetch returns",
        ylabel="percent of useful prefetches demanded within budget",
        series=series,
        notes=[
            "paper: most prefetched lines are needed within ~4 instruction-times",
            "(one 4-instruction line), long before a pipelined L2 can respond",
        ],
    )
