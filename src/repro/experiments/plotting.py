"""Text plotting: render a FigureResult as an ASCII line chart.

The experiment modules return the numeric series behind each of the
paper's plots; this renderer draws them in the terminal so the *shape*
— crossovers, knees, saturation — can be eyeballed the way the paper's
figures are.  Each series gets a letter; points that share a cell show
the letter of the series listed first.

Deliberately dependency-free (the project runs offline); not a
replacement for a real plotting stack, just enough to read a figure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .base import FigureResult, Series

__all__ = ["render_ascii_chart", "plot_figure"]

#: Series markers, assigned in order.
_MARKERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _scale(value: float, low: float, high: float, cells: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(cells - 1, max(0, round(position * (cells - 1))))


def render_ascii_chart(
    series: Sequence[Series],
    width: int = 64,
    height: int = 18,
    title: str = "",
    ylabel: str = "",
) -> str:
    """Draw the series on a character grid with axes and a legend."""
    drawable = [s for s in series if len(s.y) > 0]
    if not drawable:
        return "(no data)"
    all_y = [y for s in drawable for y in s.y]
    y_low = min(0.0, min(all_y))
    y_high = max(all_y) or 1.0
    # X positions are ordinal: series are plotted against their index in
    # the x vector (the experiments use shared, often log-spaced, axes).
    max_points = max(len(s.y) for s in drawable)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for marker, s in zip(_MARKERS, drawable):
        previous_row: Optional[int] = None
        previous_col: Optional[int] = None
        for i, y in enumerate(s.y):
            col = _scale(i, 0, max(1, max_points - 1), width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            if grid[row][col] == " ":
                grid[row][col] = marker
            # Join consecutive points with a sparse vertical run so
            # steep segments stay readable.
            if previous_row is not None and previous_col == col - 1:
                lo, hi = sorted((previous_row, row))
                for r in range(lo + 1, hi):
                    if grid[r][col] == " ":
                        grid[r][col] = "."
            previous_row, previous_col = row, col
    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_high:.1f}"
    bottom_label = f"{y_low:.1f}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    first = drawable[0]
    lines.append(
        " " * label_width
        + f"  x: {first.x[0]} .. {first.x[-1]}"
        + (f"   y: {ylabel}" if ylabel else "")
    )
    for marker, s in zip(_MARKERS, drawable):
        lines.append(f"  {marker} = {s.label}")
    return "\n".join(lines)


def plot_figure(
    figure: FigureResult,
    width: int = 64,
    height: int = 18,
    only_labels: Optional[Sequence[str]] = None,
) -> str:
    """Render a FigureResult; optionally restrict to some series labels.

    Figures with per-benchmark series (3-3, 3-5, 4-3, 4-5) are busy as
    charts, so by default only their 'average' series are drawn; pass
    ``only_labels`` to choose explicitly.
    """
    series = figure.series
    if only_labels is not None:
        series = [s for s in series if s.label in only_labels]
    elif any("average" in s.label for s in series):
        series = [s for s in series if "average" in s.label]
    return render_ascii_chart(
        series,
        width=width,
        height=height,
        title=f"{figure.experiment_id}: {figure.title}",
        ylabel=figure.ylabel,
    )
