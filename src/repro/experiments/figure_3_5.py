"""Figure 3-5: conflict misses removed by victim caching.

Identical axes to Figure 3-3 but with victim caches.  Paper landmarks:
victim caches of just one entry are already useful (miss caches need
two); every benchmark improves relative to miss caching; and the
benchmarks with long conflicting sequential streams (ccom, linpack)
improve the most relative to their miss-cache curves.
"""

from __future__ import annotations

from typing import Optional

from .base import FigureResult
from .figure_3_3 import entry_sweep_figure
from .workloads import suite

__all__ = ["run"]


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> FigureResult:
    traces = traces if traces is not None else suite(scale, seed)
    return entry_sweep_figure(
        "figure_3_5",
        "Conflict misses removed by victim caching (4KB caches, 16B lines)",
        "victim",
        traces,
        notes=[
            "paper: one-line victim caches are useful, unlike one-line miss caches;",
            "victim caching beats miss caching at every size",
        ],
    )
