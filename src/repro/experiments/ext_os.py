"""§5 extension: operating-system execution.

The paper's final sentence lists "operating system execution" beside
multiprogramming as unsimulated territory.  Where multiprogramming
(:mod:`.ext_multiprog`) models coarse time slices, OS execution is the
fine-grained version: interrupts and system calls splice short bursts
of *kernel* code and data into the user stream thousands of times a
second, each burst evicting a sliver of the user's working set.

This experiment injects synthetic kernel activity into ccom — a timer/
device handler every *interval* instructions, drawn from a rotating set
of handler routines in a dedicated kernel text region, touching kernel
stack and device-buffer data — and reports, per interrupt rate:

* instruction and data miss-rate inflation over the uninterrupted run;
* how much of the combined system's benefit survives.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..buffers.base import CompositeAugmentation
from ..buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from ..buffers.victim_cache import VictimCache
from ..common.config import CacheConfig
from ..common.stats import percent, safe_div
from ..common.types import AccessKind
from ..hierarchy.level import CacheLevel
from .base import TableResult
from .workloads import suite

__all__ = ["run", "inject_interrupts", "INTERVALS"]

CONFIG = CacheConfig(4096, 16)
#: Instructions between interrupts (the x axis).
INTERVALS = [1000, 4000, 16000]

_KERNEL_CODE = 0x0060_0000 + 77 * 4096
_KERNEL_STACK = 0x9F00_0000 + 13 * 4096 + 1024
_DEVICE_BUF = 0x9E00_0000 + 151 * 4096 + 2048

_NUM_HANDLERS = 6
_HANDLER_INSTRS = 180
_HANDLER_DATA_REFS = 40

Pair = Tuple[int, int]


def _handler_burst(rng: random.Random, buffer_cursor: int) -> List[Pair]:
    """One interrupt: a handler body plus kernel stack / buffer traffic."""
    handler = rng.randrange(_NUM_HANDLERS)
    code_base = _KERNEL_CODE + handler * _HANDLER_INSTRS * 4
    burst: List[Pair] = []
    data_every = max(1, _HANDLER_INSTRS // _HANDLER_DATA_REFS)
    for i in range(_HANDLER_INSTRS):
        burst.append((int(AccessKind.IFETCH), code_base + i * 4))
        if i % data_every == 0:
            if rng.random() < 0.5:
                address = _KERNEL_STACK + rng.randrange(64) * 4
            else:
                address = _DEVICE_BUF + (buffer_cursor + len(burst) * 4) % (64 * 1024)
            kind = AccessKind.STORE if rng.random() < 0.4 else AccessKind.LOAD
            burst.append((int(kind), address))
    return burst


def inject_interrupts(
    user_pairs, interval_instructions: int, seed: int = 0
) -> List[Pair]:
    """Splice a kernel handler burst every *interval* user instructions."""
    rng = random.Random(seed)
    out: List[Pair] = []
    since_interrupt = 0
    buffer_cursor = 0
    ifetch = int(AccessKind.IFETCH)
    for pair in user_pairs:
        out.append(pair)
        if pair[0] == ifetch:
            since_interrupt += 1
            if since_interrupt >= interval_instructions:
                since_interrupt = 0
                burst = _handler_burst(rng, buffer_cursor)
                buffer_cursor += 4096
                out.extend(burst)
    return out


def _run_split(pairs) -> Tuple[CacheLevel, CacheLevel]:
    """Replay through split I/D levels with the SS5 structures on each."""
    ilevel = CacheLevel(CONFIG, StreamBuffer(4))
    dlevel = CacheLevel(
        CONFIG, CompositeAugmentation([VictimCache(4), MultiWayStreamBuffer(4, 4)])
    )
    shift = CONFIG.offset_bits
    ifetch = int(AccessKind.IFETCH)
    for kind, address in pairs:
        level = ilevel if kind == ifetch else dlevel
        level.access_line(address >> shift)
    return ilevel, dlevel


def _rates(pairs) -> Tuple[float, float]:
    ilevel = CacheLevel(CONFIG)
    dlevel = CacheLevel(CONFIG)
    shift = CONFIG.offset_bits
    ifetch = int(AccessKind.IFETCH)
    for kind, address in pairs:
        level = ilevel if kind == ifetch else dlevel
        level.access_line(address >> shift)
    return ilevel.stats.miss_rate, dlevel.stats.miss_rate


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    user = next(t for t in traces if t.name == "ccom")
    pure_i, pure_d = _rates(user.pairs)
    rows = []
    for interval in INTERVALS:
        mixed = inject_interrupts(user.pairs, interval, seed)
        i_rate, d_rate = _rates(mixed)
        ilevel, dlevel = _run_split(mixed)
        removed = ilevel.stats.removed_misses + dlevel.stats.removed_misses
        misses = ilevel.stats.demand_misses + dlevel.stats.demand_misses
        rows.append(
            [
                interval,
                round(safe_div(i_rate, pure_i), 2),
                round(safe_div(d_rate, pure_d), 2),
                round(percent(removed, misses), 1),
            ]
        )
    rows.append(["no OS", 1.0, 1.0, ""])
    return TableResult(
        experiment_id="ext_os",
        title="Extension (SS5): OS execution — interrupt bursts injected into ccom",
        headers=[
            "instrs / interrupt",
            "I rate x pure",
            "D rate x pure",
            "combined removed %",
        ],
        rows=rows,
        notes=[
            "each interrupt runs a ~180-instruction kernel handler with stack",
            "and device-buffer traffic; frequent interrupts inflate both miss",
            "rates, while the helper structures keep removing a large share",
        ],
    )
