"""Parallel experiment engine: picklable simulation jobs over a process pool.

Trace-driven cache studies are embarrassingly parallel: every
``(trace, cache geometry, helper structure)`` point is an independent
simulation, and the repo runs hundreds of them per full reproduction.
This module turns each point into a small picklable *job* — workload
name, scale, seed, side, geometry, and a declarative structure spec —
and fans jobs out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* **Per-worker suite cache** — a worker initializer materializes each
  distinct ``(name, scale, seed)`` trace once (through
  :func:`repro.experiments.workloads.materialized_trace`, whose
  process-level memoization then serves every later job in that worker;
  on fork-based platforms the parent's already-built traces are
  inherited copy-on-write, so warming is effectively free).
* **Deterministic ordering** — results always come back in job-submission
  order, so a parallel run is row-for-row identical to a serial one.
* **Serial fallback** — with ``jobs=1`` (the default, or via the
  ``REPRO_JOBS`` environment variable) everything runs inline in the
  calling process; no pool, no pickling, byte-identical results.

Job kinds
---------

=================== ===================================================
:class:`LevelJob`    one single-level replay → :class:`LevelSummary`
:class:`EntrySweepJob`  one single-pass miss/victim-cache size sweep →
                     :class:`~repro.experiments.sweeps.EntrySweep`
:class:`RunSweepJob` one stream-buffer run-length sweep →
                     :class:`~repro.experiments.sweeps.RunLengthSweep`
:class:`ExperimentJob`  one whole experiment module →
                     :class:`ExperimentOutcome`
=================== ===================================================

Helper structures are described by *spec strings* rather than factories
so jobs stay picklable: ``"none"``, ``"mc4"`` (4-entry miss cache),
``"vc4"`` (victim cache), ``"sb4"`` (4-entry stream buffer), and
``"sb4x4"`` (4-way × 4-entry multi-way buffer).  :func:`spec_of` maps a
live structure built with the paper's default options back to its spec,
which is how :func:`~repro.experiments.grid.sweep_grid` converts its
factory axis into jobs.
"""

from __future__ import annotations

import os
import re
import time
from concurrent.futures import Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..buffers.base import L1Augmentation
from ..buffers.miss_cache import MissCache
from ..buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from ..buffers.victim_cache import VictimCache
from ..caches.fully_associative import ReplacementPolicy
from ..common.config import CacheConfig
from ..common.errors import ConfigurationError, UnknownWorkloadError
from ..common.stats import percent, safe_div
from ..telemetry.core import JobProgress, ProgressCallback
from ..telemetry.core import current as _telemetry_scope
from ..traces.registry import get_workload
from .base import FigureResult, TableResult
from .runner import run_level
from .sweeps import (
    EntrySweep,
    RunLengthSweep,
    miss_cache_sweep,
    stream_buffer_run_sweep,
    victim_cache_sweep,
)
from .workloads import BENCHMARK_NAMES, materialized_trace, suite

__all__ = [
    "TraceKey",
    "LevelJob",
    "LevelSummary",
    "EntrySweepJob",
    "RunSweepJob",
    "ExperimentJob",
    "ExperimentOutcome",
    "build_structure",
    "spec_of",
    "default_jobs",
    "resolve_jobs",
    "validate_jobs",
    "execute_job",
    "run_jobs",
    "run_experiments",
]


# -- trace identity -----------------------------------------------------------


@dataclass(frozen=True)
class TraceKey:
    """Identity of a registry trace: enough to rebuild it anywhere.

    Workers regenerate the trace from this recipe instead of receiving
    megabytes of pickled address pairs; the synthetic builders are
    deterministic in ``(name, scale, seed)``, so the rebuilt trace is
    identical to the parent's.
    """

    name: str
    scale: Optional[int]
    seed: int = 0

    @classmethod
    def of(cls, trace) -> Optional["TraceKey"]:
        """Key for a registry-built materialized trace, else None.

        Traces assembled by hand (``trace_from_pairs``, file loads)
        carry no rebuild recipe; callers fall back to serial execution
        for those.
        """
        meta = getattr(trace, "meta", None)
        if meta is None or not getattr(meta, "scale", 0):
            return None
        try:
            get_workload(meta.name)
        except UnknownWorkloadError:
            return None
        return cls(name=meta.name, scale=meta.scale, seed=meta.seed)

    def trace(self):
        """The (process-memoized) materialized trace this key names."""
        return materialized_trace(self.name, self.scale, self.seed)


# -- structure specs ----------------------------------------------------------

_SPEC_PATTERNS: Sequence[Tuple[re.Pattern, str]] = (
    (re.compile(r"^mc(\d+)$"), "mc"),
    (re.compile(r"^vc(\d+)$"), "vc"),
    (re.compile(r"^sb(\d+)$"), "sb"),
    (re.compile(r"^sb(\d+)x(\d+)$"), "msb"),
)


def build_structure(spec: Optional[str]) -> Optional[L1Augmentation]:
    """Build a helper structure from its spec string (None for ``"none"``)."""
    if spec is None or spec == "none":
        return None
    for pattern, kind in _SPEC_PATTERNS:
        match = pattern.match(spec)
        if match is None:
            continue
        if kind == "mc":
            return MissCache(int(match.group(1)))
        if kind == "vc":
            return VictimCache(int(match.group(1)))
        if kind == "sb":
            return StreamBuffer(int(match.group(1)))
        return MultiWayStreamBuffer(int(match.group(1)), int(match.group(2)))
    raise ConfigurationError(
        f"unknown structure spec {spec!r}; expected none/mc<N>/vc<N>/sb<N>/sb<W>x<N>"
    )


def _default_stream_buffer(buffer: StreamBuffer) -> bool:
    return (
        buffer.max_run is None
        and buffer.run_offsets is None
        and not buffer.model_availability
        and buffer.fetch_sink is None
        and buffer.head_only
        and not buffer.allocation_filter
    )


def spec_of(structure: Optional[L1Augmentation]) -> Optional[str]:
    """Spec string for a structure built with the paper's defaults.

    Returns None when the structure carries non-default options (depth
    tracking, availability modelling, ablation flags, ...) — those runs
    cannot be described declaratively and must stay serial.
    """
    if structure is None:
        return "none"
    if type(structure) is MissCache:
        if structure.hit_depths is None and structure._store.policy is ReplacementPolicy.LRU:
            return f"mc{structure.entries}"
        return None
    if type(structure) is VictimCache:
        if (
            structure.hit_depths is None
            and structure.swap_on_hit
            and structure._store.policy is ReplacementPolicy.LRU
        ):
            return f"vc{structure.entries}"
        return None
    if type(structure) is StreamBuffer:
        if _default_stream_buffer(structure):
            return f"sb{structure.entries}"
        return None
    if type(structure) is MultiWayStreamBuffer:
        ways = structure.way_buffers()
        if all(_default_stream_buffer(b) for b in ways):
            return f"sb{structure.ways}x{ways[0].entries}"
        return None
    return None


# -- jobs ---------------------------------------------------------------------


@dataclass(frozen=True)
class LevelJob:
    """One single-level replay of a trace side through a cache geometry."""

    trace: TraceKey
    side: str
    size_bytes: int
    line_size: int
    structure: Optional[str] = None
    warmup: int = 0
    classify: bool = False


@dataclass(frozen=True)
class LevelSummary:
    """Picklable statistics of one :class:`LevelJob` replay."""

    accesses: int
    demand_misses: int
    removed_misses: int
    misses_to_next_level: int
    stream_stall_cycles: int = 0
    #: Only populated when the job ran with ``classify=True``.
    conflict_misses: Optional[int] = None

    @property
    def miss_rate(self) -> float:
        return safe_div(self.demand_misses, self.accesses)

    @property
    def effective_miss_rate(self) -> float:
        return safe_div(self.misses_to_next_level, self.accesses)

    @property
    def percent_removed(self) -> float:
        return percent(self.removed_misses, self.demand_misses)


@dataclass(frozen=True)
class EntrySweepJob:
    """One single-pass miss/victim-cache entry sweep (Figures 3-3/3-5)."""

    trace: TraceKey
    side: str
    size_bytes: int
    line_size: int
    kind: str = "miss"  # "miss" | "victim"
    max_entries: int = 15


@dataclass(frozen=True)
class RunSweepJob:
    """One stream-buffer run-length sweep (Figures 4-3/4-5)."""

    trace: TraceKey
    side: str
    size_bytes: int
    line_size: int
    ways: int = 1
    entries: int = 4
    max_run: int = 16


@dataclass(frozen=True)
class ExperimentJob:
    """One whole experiment module run at a given scale and seed."""

    name: str
    scale: Optional[int] = None
    seed: int = 0


@dataclass(frozen=True)
class ExperimentOutcome:
    """Result of an :class:`ExperimentJob`, with worker-side timing."""

    name: str
    result: Union[TableResult, FigureResult]
    elapsed: float


Job = Union[LevelJob, EntrySweepJob, RunSweepJob, ExperimentJob]


# -- execution ----------------------------------------------------------------


def execute_job(job: Job):
    """Run one job in the current process and return its picklable result."""
    if isinstance(job, LevelJob):
        addresses = job.trace.trace().stream(job.side)
        config = CacheConfig(job.size_bytes, job.line_size)
        run = run_level(
            addresses,
            config,
            build_structure(job.structure),
            classify=job.classify,
            warmup=job.warmup,
        )
        stats = run.stats
        return LevelSummary(
            accesses=stats.accesses,
            demand_misses=stats.demand_misses,
            removed_misses=stats.removed_misses,
            misses_to_next_level=stats.misses_to_next_level,
            stream_stall_cycles=stats.stream_stall_cycles,
            conflict_misses=run.conflicts if job.classify else None,
        )
    if isinstance(job, EntrySweepJob):
        addresses = job.trace.trace().stream(job.side)
        config = CacheConfig(job.size_bytes, job.line_size)
        sweep_fn = {"miss": miss_cache_sweep, "victim": victim_cache_sweep}.get(job.kind)
        if sweep_fn is None:
            raise ConfigurationError(f"unknown entry-sweep kind {job.kind!r}")
        return sweep_fn(addresses, config, job.max_entries)
    if isinstance(job, RunSweepJob):
        addresses = job.trace.trace().stream(job.side)
        config = CacheConfig(job.size_bytes, job.line_size)
        return stream_buffer_run_sweep(
            addresses,
            config,
            ways=job.ways,
            entries=job.entries,
            max_run=job.max_run,
        )
    if isinstance(job, ExperimentJob):
        # Local import: the experiment registry lives in the package
        # __init__, which itself imports this module.
        from . import ALL_EXPERIMENTS

        started = time.time()
        result = ALL_EXPERIMENTS[job.name](traces=None, scale=job.scale, seed=job.seed)
        return ExperimentOutcome(name=job.name, result=result, elapsed=time.time() - started)
    raise TypeError(f"not an engine job: {job!r}")


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    raw = os.environ.get("REPRO_JOBS", "")
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ConfigurationError(f"REPRO_JOBS must be an integer, got {raw!r}") from None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Explicit job count, or the ``REPRO_JOBS`` default when None."""
    return default_jobs() if jobs is None else max(1, jobs)


def validate_jobs(jobs: Optional[int]) -> int:
    """CLI-boundary job-count validation.

    Library callers go through :func:`resolve_jobs`, which clamps
    nonsense to 1 so programmatic sweeps never explode; user-typed input
    deserves a loud error instead of a silently ignored flag.  Raises
    :class:`ConfigurationError` for ``jobs < 1`` and (via
    :func:`default_jobs`) for a malformed ``REPRO_JOBS`` value.
    """
    if jobs is None:
        return default_jobs()
    if jobs < 1:
        raise ConfigurationError(f"--jobs must be at least 1, got {jobs}")
    return jobs


def _warm_worker(trace_keys: Tuple[TraceKey, ...]) -> None:
    """Worker initializer: materialize each distinct trace exactly once.

    Later jobs in this worker hit the process-level memoization in
    :mod:`repro.experiments.workloads` instead of rebuilding.
    """
    for key in trace_keys:
        key.trace()


def _distinct_trace_keys(jobs: Iterable[Job]) -> Tuple[TraceKey, ...]:
    seen = {}
    for job in jobs:
        key = getattr(job, "trace", None)
        if isinstance(key, TraceKey):
            seen[key] = None
    return tuple(seen)


def _batch_kind(job_list: Sequence[Job]) -> str:
    kinds = {type(job).__name__ for job in job_list}
    return kinds.pop() if len(kinds) == 1 else "mixed"


def _collect(
    futures: Sequence[Future],
    progress: Optional[ProgressCallback],
    heartbeat: float,
) -> List:
    """Future results in submission order, with periodic progress reports.

    *progress* is called whenever the completed-job count changes and at
    least every *heartbeat* seconds while the pool is still working, so
    a long fan-out is never silent.  With no callback this is just an
    ordered drain.
    """
    if progress is None:
        return [future.result() for future in futures]
    total = len(futures)
    started = time.perf_counter()
    pending = set(futures)
    reported = -1
    while pending:
        done, pending = wait(pending, timeout=heartbeat)
        finished = total - len(pending)
        if finished != reported or not done:
            progress(JobProgress(finished, total, time.perf_counter() - started))
            reported = finished
    return [future.result() for future in futures]


def run_jobs(
    job_list: Sequence[Job],
    jobs: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    heartbeat: float = 5.0,
) -> List:
    """Execute jobs, returning results in submission order.

    ``jobs=1`` (or ``REPRO_JOBS`` unset) runs everything inline; with
    more workers the jobs fan out over a process pool whose workers each
    cache the traces they need.  *progress* (parallel runs only)
    receives a :class:`~repro.telemetry.core.JobProgress` heartbeat at
    least every *heartbeat* seconds.  When a telemetry scope is active,
    the batch's job count, worker count, and wall time are recorded.
    """
    job_list = list(job_list)
    workers = min(resolve_jobs(jobs), len(job_list)) if job_list else 1
    scope = _telemetry_scope()
    started = time.perf_counter() if scope is not None else 0.0
    if workers <= 1:
        results = [execute_job(job) for job in job_list]
    else:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_warm_worker,
            initargs=(_distinct_trace_keys(job_list),),
        ) as pool:
            futures = [pool.submit(execute_job, job) for job in job_list]
            results = _collect(futures, progress, heartbeat)
    if scope is not None and job_list:
        scope.record_job_batch(
            _batch_kind(job_list), len(job_list), workers, time.perf_counter() - started
        )
    return results


def run_experiments(
    names: Sequence[str],
    scale: Optional[int] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    heartbeat: float = 5.0,
) -> List[ExperimentOutcome]:
    """Run whole experiment modules, optionally in parallel.

    Results come back in the order of *names* regardless of which worker
    finished first, so the rendered output of a parallel run is
    identical to the serial one.  *progress* behaves as in
    :func:`run_jobs`: a heartbeat per completion change and at least
    every *heartbeat* seconds of pool time.
    """
    job_list = [ExperimentJob(name, scale, seed) for name in names]
    workers = min(resolve_jobs(jobs), len(job_list)) if job_list else 1
    scope = _telemetry_scope()
    started = time.perf_counter() if scope is not None else 0.0
    if workers <= 1:
        outcomes = [execute_job(job) for job in job_list]
    else:
        # Build the suite once in the parent before forking: fork-based
        # platforms then share the materialized traces copy-on-write, and
        # spawn-based ones rebuild them once per worker via the initializer.
        suite(scale, seed)
        suite_keys = tuple(TraceKey(name, scale, seed) for name in BENCHMARK_NAMES)
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_warm_worker,
            initargs=(suite_keys,),
        ) as pool:
            futures = [pool.submit(execute_job, job) for job in job_list]
            outcomes = _collect(futures, progress, heartbeat)
    if scope is not None and job_list:
        scope.record_job_batch(
            "ExperimentJob", len(job_list), workers, time.perf_counter() - started
        )
    return outcomes
