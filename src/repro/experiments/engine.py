"""Parallel experiment engine: picklable simulation jobs over a process pool.

Trace-driven cache studies are embarrassingly parallel: every
``(trace, cache geometry, helper structure)`` point is an independent
simulation, and the repo runs hundreds of them per full reproduction.
This module turns each point into a small picklable *job* — workload
name, scale, seed, side, geometry, and a declarative structure spec —
and fans jobs out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* **Per-worker suite cache** — a worker initializer materializes each
  distinct ``(name, scale, seed)`` trace once (through
  :func:`repro.experiments.workloads.materialized_trace`, whose
  process-level memoization then serves every later job in that worker;
  on fork-based platforms the parent's already-built traces are
  inherited copy-on-write, so warming is effectively free).
* **Deterministic ordering** — results always come back in job-submission
  order, so a parallel run is row-for-row identical to a serial one.
* **Serial fallback** — with ``jobs=1`` (the default, or via the
  ``REPRO_JOBS`` environment variable) everything runs inline in the
  calling process; no pool, no pickling, byte-identical results.

Job kinds
---------

=================== ===================================================
:class:`LevelJob`    one single-level replay → :class:`LevelSummary`
:class:`EntrySweepJob`  one single-pass miss/victim-cache size sweep →
                     :class:`~repro.experiments.sweeps.EntrySweep`
:class:`RunSweepJob` one stream-buffer run-length sweep →
                     :class:`~repro.experiments.sweeps.RunLengthSweep`
:class:`ExperimentJob`  one whole experiment module →
                     :class:`ExperimentOutcome`
=================== ===================================================

Each job carries a :class:`~repro.specs.SystemSpec` — a frozen,
picklable description of trace, geometry, and helper structure — so
*every* registered structure configuration fans out, default options or
not.  The legacy string codes (``"mc4"``, ``"vc4"``, ``"sb4"``,
``"sb4x4"``) survive as deprecated shims over
:func:`repro.specs.parse_structure_code`.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..buffers.base import L1Augmentation
from ..common.errors import ConfigurationError
from ..common.stats import percent, safe_div
from ..kernels import MISS_REPLAY, NUMPY, PYTHON, kernel_mode, select_backend
from ..specs import (
    SpecError,
    SystemSpec,
    TraceSpec,
    WorkloadSpec,
    describe,
    parse_structure_code,
)
from ..specs import build as build_spec
from ..specs import spec_hash
from ..specs import structure_code as _structure_code
from ..store import ResultKey, current_store
from ..telemetry.core import JobProgress, ProgressCallback, record_fallback
from ..telemetry.core import current as _telemetry_scope
from .base import FigureResult, TableResult
from .runner import run_level
from .sweeps import (
    miss_cache_sweep,
    stream_buffer_run_sweep,
    victim_cache_sweep,
)
from .workloads import BENCHMARK_NAMES, suite

__all__ = [
    "TraceKey",
    "LevelJob",
    "LevelSummary",
    "EntrySweepJob",
    "RunSweepJob",
    "ExperimentJob",
    "ExperimentOutcome",
    "ResilienceOptions",
    "JobFailure",
    "JobFailedError",
    "ENV_JOB_TIMEOUT",
    "ENV_RETRIES",
    "build_structure",
    "spec_of",
    "default_jobs",
    "resolve_jobs",
    "validate_jobs",
    "default_resilience",
    "resolve_resilience",
    "validate_job_timeout",
    "validate_retries",
    "execute_job",
    "run_jobs",
    "run_experiments",
]


# -- trace identity -----------------------------------------------------------

#: Identity of a registry trace: enough to rebuild it anywhere.  Now an
#: alias of :class:`repro.specs.TraceSpec`; the engine historically
#: called it a TraceKey and tests/callers may keep using that name.
TraceKey = TraceSpec


# -- legacy structure codes (deprecated shims) --------------------------------


def build_structure(spec: Optional[str]) -> Optional[L1Augmentation]:
    """Deprecated: build a helper structure from its legacy string code.

    Use :func:`repro.specs.build` with a
    :class:`~repro.specs.StructureSpec` instead; this shim parses the
    code into a spec and builds it.
    """
    warnings.warn(
        "build_structure(code) is deprecated; use repro.specs.build("
        "parse_structure_code(code)) or construct a StructureSpec directly",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_spec(parse_structure_code(spec))


def spec_of(structure: Optional[L1Augmentation]) -> Optional[str]:
    """Deprecated: legacy string code for a default-option structure.

    Use :func:`repro.specs.describe`, which returns a full
    :class:`~repro.specs.StructureSpec` for *any* registered structure.
    This shim preserves the old contract: the short code for structures
    built with the paper's default options, None for everything else.
    """
    warnings.warn(
        "spec_of(structure) is deprecated; use repro.specs.describe(structure), "
        "which covers non-default options too",
        DeprecationWarning,
        stacklevel=2,
    )
    try:
        spec = describe(structure)
    except SpecError:
        return None
    return _structure_code(spec)


# -- jobs ---------------------------------------------------------------------


def _require_trace(system: SystemSpec, job_kind: str) -> None:
    if system.trace is None:
        raise ConfigurationError(
            f"{job_kind} needs a SystemSpec with a trace reference; "
            "config-only specs cannot be executed"
        )


@dataclass(frozen=True)
class LevelJob:
    """One single-level replay: a :class:`~repro.specs.SystemSpec` point.

    The spec's trace names the workload, its ``side``/geometry pick the
    stream and cache, and its structure spec — *any* registered
    structure, default options or not — is rebuilt in the worker.
    """

    system: SystemSpec

    def __post_init__(self) -> None:
        _require_trace(self.system, "LevelJob")


@dataclass(frozen=True)
class LevelSummary:
    """Picklable statistics of one :class:`LevelJob` replay."""

    accesses: int
    demand_misses: int
    removed_misses: int
    misses_to_next_level: int
    stream_stall_cycles: int = 0
    #: Only populated when the job ran with ``classify=True``.
    conflict_misses: Optional[int] = None

    @property
    def miss_rate(self) -> float:
        return safe_div(self.demand_misses, self.accesses)

    @property
    def effective_miss_rate(self) -> float:
        return safe_div(self.misses_to_next_level, self.accesses)

    @property
    def percent_removed(self) -> float:
        return percent(self.removed_misses, self.demand_misses)


@dataclass(frozen=True)
class EntrySweepJob:
    """One single-pass miss/victim-cache entry sweep (Figures 3-3/3-5).

    The sweep builds its own depth-tracking structure, so the system
    spec contributes trace, side, and geometry only (its ``structure``
    field is ignored).
    """

    system: SystemSpec
    kind: str = "miss"  # "miss" | "victim"
    max_entries: int = 15

    def __post_init__(self) -> None:
        _require_trace(self.system, "EntrySweepJob")


@dataclass(frozen=True)
class RunSweepJob:
    """One stream-buffer run-length sweep (Figures 4-3/4-5).

    As with :class:`EntrySweepJob`, the sweep builds its own
    offset-tracking buffer; the system spec contributes trace, side,
    and geometry.
    """

    system: SystemSpec
    ways: int = 1
    entries: int = 4
    max_run: int = 16

    def __post_init__(self) -> None:
        _require_trace(self.system, "RunSweepJob")


@dataclass(frozen=True)
class ExperimentJob:
    """One whole experiment module run at a given scale and seed."""

    name: str
    scale: Optional[int] = None
    seed: int = 0


@dataclass(frozen=True)
class ExperimentOutcome:
    """Result of an :class:`ExperimentJob`, with worker-side timing."""

    name: str
    result: Union[TableResult, FigureResult]
    elapsed: float


Job = Union[LevelJob, EntrySweepJob, RunSweepJob, ExperimentJob]


# -- execution ----------------------------------------------------------------


def _sweep_system(job: Union["EntrySweepJob", "RunSweepJob"]) -> SystemSpec:
    """The spec point a sweep job is equivalent to, for backend dispatch.

    An entry sweep is one run with a tracked-depth structure of capacity
    ``max_entries + 1``; a run sweep is one run with an offset-tracking
    (multi-way) stream buffer.  Routing backend selection through the
    equivalent spec keeps ``REPRO_BACKEND`` semantics, availability
    probing, and the vector/miss-replay mode table in one place
    (:func:`repro.kernels.select_backend`).
    """
    from dataclasses import replace

    from ..specs import (
        MissCacheSpec,
        MultiWayStreamBufferSpec,
        StreamBufferSpec,
        VictimCacheSpec,
    )

    if isinstance(job, EntrySweepJob):
        spec_cls = {"miss": MissCacheSpec, "victim": VictimCacheSpec}.get(job.kind)
        if spec_cls is None:
            raise ConfigurationError(f"unknown entry-sweep kind {job.kind!r}")
        structure = spec_cls(entries=job.max_entries + 1, track_depths=True)
    elif job.ways == 1:
        structure = StreamBufferSpec(entries=job.entries, track_run_offsets=True)
    else:
        structure = MultiWayStreamBufferSpec(
            ways=job.ways, entries=job.entries, track_run_offsets=True
        )
    return replace(job.system, structure=structure)


def execute_job(job: Job):
    """Run one job in the current process and return its picklable result.

    ``LevelJob``s are backend-dispatched: when
    :func:`repro.kernels.select_backend` picks numpy (spec qualifies,
    numpy importable, ``REPRO_BACKEND`` not forcing ``python``),
    structure-free specs run the vectorized direct-mapped kernel and
    structure-carrying specs run the assist kernel (vector or
    miss-replay mode per :func:`repro.kernels.kernel_mode`); sweep jobs
    dispatch through their equivalent tracked-structure spec.  All
    backends return identical results, so dispatch is invisible to
    callers and to the result store.
    """
    if isinstance(job, LevelJob):
        system = job.system
        if select_backend(system) == NUMPY:
            if system.structure is not None:
                from ..kernels.assist import simulate_assist_summary

                return simulate_assist_summary(system)
            from ..kernels.numpy_backend import simulate_level_summary

            return simulate_level_summary(system)
        addresses = system.trace.trace().stream(system.side)
        run = run_level(
            addresses,
            system.cache_config,
            system.build_structure(),
            classify=system.classify,
            warmup=system.warmup,
        )
        stats = run.stats
        return LevelSummary(
            accesses=stats.accesses,
            demand_misses=stats.demand_misses,
            removed_misses=stats.removed_misses,
            misses_to_next_level=stats.misses_to_next_level,
            stream_stall_cycles=stats.stream_stall_cycles,
            conflict_misses=run.conflicts if system.classify else None,
        )
    if isinstance(job, EntrySweepJob):
        system = job.system
        if job.kind not in ("miss", "victim"):
            raise ConfigurationError(f"unknown entry-sweep kind {job.kind!r}")
        if select_backend(_sweep_system(job)) == NUMPY:
            from ..kernels.assist import entry_sweep_summary

            return entry_sweep_summary(system, job.kind, job.max_entries)
        addresses = system.trace.trace().stream(system.side)
        sweep_fn = {"miss": miss_cache_sweep, "victim": victim_cache_sweep}[job.kind]
        return sweep_fn(addresses, system.cache_config, job.max_entries)
    if isinstance(job, RunSweepJob):
        system = job.system
        if select_backend(_sweep_system(job)) == NUMPY:
            from ..kernels.assist import run_length_sweep_summary

            return run_length_sweep_summary(
                system, job.ways, job.entries, job.max_run
            )
        addresses = system.trace.trace().stream(system.side)
        return stream_buffer_run_sweep(
            addresses,
            system.cache_config,
            ways=job.ways,
            entries=job.entries,
            max_run=job.max_run,
        )
    if isinstance(job, ExperimentJob):
        # Local import: the experiment registry lives in the package
        # __init__, which itself imports this module.
        from . import ALL_EXPERIMENTS

        started = time.time()
        result = ALL_EXPERIMENTS[job.name](traces=None, scale=job.scale, seed=job.seed)
        return ExperimentOutcome(name=job.name, result=result, elapsed=time.time() - started)
    raise TypeError(f"not an engine job: {job!r}")


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    raw = os.environ.get("REPRO_JOBS", "")
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ConfigurationError(f"REPRO_JOBS must be an integer, got {raw!r}") from None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Explicit job count, or the ``REPRO_JOBS`` default when None."""
    return default_jobs() if jobs is None else max(1, jobs)


def validate_jobs(jobs: Optional[int]) -> int:
    """CLI-boundary job-count validation.

    Library callers go through :func:`resolve_jobs`, which clamps
    nonsense to 1 so programmatic sweeps never explode; user-typed input
    deserves a loud error instead of a silently ignored flag.  Raises
    :class:`ConfigurationError` for ``jobs < 1`` and (via
    :func:`default_jobs`) for a malformed ``REPRO_JOBS`` value.
    """
    if jobs is None:
        return default_jobs()
    if jobs < 1:
        raise ConfigurationError(f"--jobs must be at least 1, got {jobs}")
    return jobs


# -- resilience ---------------------------------------------------------------

ENV_JOB_TIMEOUT = "REPRO_JOB_TIMEOUT"
ENV_RETRIES = "REPRO_RETRIES"


@dataclass(frozen=True)
class ResilienceOptions:
    """Per-batch failure-handling knobs for :func:`run_jobs`.

    ``job_timeout`` is a wall-clock ceiling per job attempt (None = no
    limit); ``retries`` bounds how many times one job is re-attempted
    after a transient failure, timeout, or corrupt payload.  Retries back
    off exponentially from ``backoff_base`` (with jitter, capped at
    ``backoff_cap``).  ``max_pool_rebuilds`` bounds how many times a
    broken process pool is rebuilt before the batch degrades to serial
    execution; ``poison_strikes`` is how many times one job may be seen
    breaking the pool single-handedly before it is excluded as poison.
    """

    job_timeout: Optional[float] = None
    retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    max_pool_rebuilds: int = 5
    poison_strikes: int = 2


def _env_job_timeout() -> Optional[float]:
    raw = os.environ.get(ENV_JOB_TIMEOUT, "")
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(f"{ENV_JOB_TIMEOUT} must be a number, got {raw!r}") from None
    if value <= 0:
        raise ConfigurationError(f"{ENV_JOB_TIMEOUT} must be positive, got {raw!r}")
    return value


def _env_retries() -> int:
    raw = os.environ.get(ENV_RETRIES, "")
    if not raw:
        return 2
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(f"{ENV_RETRIES} must be an integer, got {raw!r}") from None
    if value < 0:
        raise ConfigurationError(f"{ENV_RETRIES} must be at least 0, got {raw!r}")
    return value


def default_resilience() -> ResilienceOptions:
    """Batch resilience from ``REPRO_JOB_TIMEOUT``/``REPRO_RETRIES``."""
    return ResilienceOptions(job_timeout=_env_job_timeout(), retries=_env_retries())


def resolve_resilience(resilience: Optional[ResilienceOptions]) -> ResilienceOptions:
    """Explicit options, or the environment-derived default when None."""
    return default_resilience() if resilience is None else resilience


def validate_job_timeout(value: Optional[float]) -> Optional[float]:
    """CLI-boundary ``--job-timeout`` validation (reject, don't clamp).

    Raises :class:`ConfigurationError` for non-positive values and (via
    the environment fallback) for a malformed ``REPRO_JOB_TIMEOUT``.
    """
    if value is None:
        return _env_job_timeout()
    if value <= 0:
        raise ConfigurationError(f"--job-timeout must be positive, got {value:g}")
    return value


def validate_retries(value: Optional[int]) -> int:
    """CLI-boundary ``--retries`` validation (reject, don't clamp)."""
    if value is None:
        return _env_retries()
    if value < 0:
        raise ConfigurationError(f"--retries must be at least 0, got {value}")
    return value


@dataclass(frozen=True)
class JobFailure:
    """One job the engine gave up on: its submission index and why."""

    index: int
    reason: str


class JobFailedError(RuntimeError):
    """Raised when one or more jobs of a batch failed permanently.

    Raised *after* every other job of the batch has completed and been
    flushed to the result store, so a failed sweep loses only the failed
    points — rerunning with the same store resumes from the checkpoint.
    """

    def __init__(self, failures: Sequence[JobFailure]) -> None:
        self.failures = list(failures)
        detail = "; ".join(f"job {f.index}: {f.reason}" for f in self.failures)
        super().__init__(
            f"{len(self.failures)} job(s) failed permanently "
            f"(completed jobs were checkpointed): {detail}"
        )


def _warm_worker(trace_keys: Tuple[WorkloadSpec, ...]) -> None:
    """Worker initializer: materialize each distinct trace exactly once.

    Later jobs in this worker hit the process-level memoization in
    :mod:`repro.experiments.workloads` instead of rebuilding.
    """
    for key in trace_keys:
        key.trace()


def _shm_warm_worker(descriptors: Tuple) -> None:
    """Worker initializer: rebuild packed traces from shared memory.

    Each descriptor names one shared-memory segment holding a trace's
    packed buffers; attaching is two ``memcpy`` calls instead of a full
    synthetic-generator replay.  Failures degrade gracefully — a trace
    that cannot be attached is rebuilt on demand by the first job that
    needs it, through the normal workload memo — but never silently: the
    degradation and its cause are warned on the worker's stderr so a
    slow spawn-platform pool can be diagnosed.
    """
    from ..traces.packed import attach_shared_trace
    from .workloads import seed_materialized_trace, seed_materialized_workload

    for descriptor in descriptors:
        try:
            trace = attach_shared_trace(descriptor)
        except Exception as exc:
            warnings.warn(
                f"shared-memory attach failed for trace {descriptor.memo_key!r} "
                f"({exc!r}); this worker rebuilds it from its generator instead",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        key = descriptor.memo_key
        if isinstance(key, tuple):
            # Legacy descriptor shape: (name, scale, seed).
            name, scale, seed = key
            seed_materialized_trace(name, scale, seed, trace)
        else:
            seed_materialized_workload(key, trace)


def _pool_setup(trace_keys: Tuple[WorkloadSpec, ...]):
    """``(initializer, initargs, segments, degraded)`` for warming a pool.

    Fork-based platforms inherit the parent's materialized traces
    copy-on-write, so the plain warm initializer is free there.  On
    spawn/forkserver platforms each worker would replay every synthetic
    generator from scratch; instead the parent materializes once, lays
    the packed buffers out in shared memory, and workers attach-and-copy.
    The caller must pass *segments* to
    :func:`~repro.traces.packed.release_shared_segments` after the pool
    has shut down.  *degraded* is None, or the reason shared-memory
    delivery was unavailable and workers fell back to rebuilding traces
    (surfaced in progress heartbeats rather than swallowed).
    """
    import multiprocessing

    plain = (_warm_worker, (trace_keys,), [], None)
    if not trace_keys or multiprocessing.get_start_method() == "fork":
        return plain
    from ..traces.packed import PackedTrace, share_packed_traces

    entries = []
    for key in trace_keys:
        trace = key.trace()
        if not isinstance(trace, PackedTrace):
            return (
                _warm_worker,
                (trace_keys,),
                [],
                f"trace {key.label!r} is not packed; workers rebuild traces from generators",
            )
        entries.append((key, trace))
    try:
        descriptors, segments = share_packed_traces(entries)
    except Exception as exc:
        return (
            _warm_worker,
            (trace_keys,),
            [],
            f"shared memory unavailable ({exc!r}); workers rebuild traces from generators",
        )
    return _shm_warm_worker, (tuple(descriptors),), segments, None


def _distinct_trace_keys(jobs: Iterable[Job]) -> Tuple[WorkloadSpec, ...]:
    seen = {}
    for job in jobs:
        system = getattr(job, "system", None)
        key = system.trace if isinstance(system, SystemSpec) else None
        if isinstance(key, WorkloadSpec):
            seen[key] = None
    return tuple(seen)


def _store_key(job: Job) -> Optional[ResultKey]:
    """Result-store key for a job, or None for uncacheable jobs.

    Only jobs whose full configuration is captured by a trace-bearing
    :class:`~repro.specs.SystemSpec` plus the job's own scalar
    parameters are cacheable.  :class:`ExperimentJob` is not — a whole
    experiment module is an open-ended computation — but the engine
    batches *inside* it hit the store individually.
    """
    system = getattr(job, "system", None)
    if not isinstance(system, SystemSpec) or not isinstance(system.trace, WorkloadSpec):
        return None
    if isinstance(job, LevelJob):
        extras = {}
    elif isinstance(job, EntrySweepJob):
        extras = {"kind": job.kind, "max_entries": job.max_entries}
    elif isinstance(job, RunSweepJob):
        extras = {"ways": job.ways, "entries": job.entries, "max_run": job.max_run}
    else:
        return None
    return ResultKey(
        job_kind=type(job).__name__,
        spec_hash=spec_hash(system),
        trace_fingerprint=system.trace.fingerprint(),
        extras=extras,
    )


def _batch_kind(job_list: Sequence[Job]) -> str:
    kinds = {type(job).__name__ for job in job_list}
    return kinds.pop() if len(kinds) == 1 else "mixed"


def _job_backend(job: Job) -> Optional[str]:
    """The backend label one job will execute on, or None when opaque.

    ``python`` and ``numpy`` as before; assist jobs that run the
    interpreter structure over the compressed miss stream are labelled
    ``miss-replay`` so heartbeats and run records show the split.
    Experiment jobs are opaque here — their inner batches dispatch (and
    count) per job themselves.
    """
    if isinstance(job, LevelJob):
        system = job.system
    elif isinstance(job, (EntrySweepJob, RunSweepJob)):
        try:
            system = _sweep_system(job)
        except ConfigurationError:
            return PYTHON
    else:
        return None
    backend = select_backend(system)
    if backend == NUMPY and kernel_mode(system) == MISS_REPLAY:
        return MISS_REPLAY
    return backend


def _backend_counts(job_list: Sequence[Job]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for job in job_list:
        backend = _job_backend(job)
        if backend is not None:
            counts[backend] = counts.get(backend, 0) + 1
    return counts


def _backend_note(counts: Dict[str, int]) -> str:
    """Heartbeat label: one backend name, or a ``numpy:3 python:5`` split."""
    if not counts:
        return ""
    if len(counts) == 1:
        return next(iter(counts))
    return " ".join(f"{name}:{counts[name]}" for name in sorted(counts))


def _guarded_execute(job: Job, index: int, attempt: int):
    """Run one job with the fault harness consulted first.

    Module-level (hence picklable by reference) so it can be submitted
    to pool workers; with no fault plan configured the guard is one
    cached environment check per job.
    """
    from . import faults

    injected = faults.maybe_inject(index, attempt)
    if injected is not None:
        return injected
    return execute_job(job)


class _Pending:
    """Book-keeping for one not-yet-completed job of a batch."""

    __slots__ = ("slot", "index", "job", "key", "attempts", "strikes", "started")

    def __init__(self, slot: int, job: Job, key: Optional[ResultKey]) -> None:
        self.slot = slot          # result-list position == submission index
        self.index = slot         # fault-plan identity (stable across retries)
        self.job = job
        self.key = key
        self.attempts = 0         # failed attempts so far
        self.strikes = 0          # times seen breaking the pool single-handedly
        self.started: Optional[float] = None  # first observed running (monotonic)


class _BatchStats:
    """Mutable per-batch resilience counters (folded into telemetry)."""

    __slots__ = ("retries", "timeouts", "pool_rebuilds", "poisoned")

    def __init__(self) -> None:
        self.retries = 0
        self.timeouts = 0
        self.pool_rebuilds = 0
        self.poisoned = 0

    def any(self) -> bool:
        return bool(self.retries or self.timeouts or self.pool_rebuilds or self.poisoned)


class _Reporter:
    """Progress heartbeats: on completion-count change and every *heartbeat*s."""

    def __init__(
        self,
        progress: Optional[ProgressCallback],
        heartbeat: float,
        total: int,
        store_hits: int,
        stats: _BatchStats,
        note: Optional[str],
        backend: str = "",
    ) -> None:
        self.progress = progress
        self.heartbeat = heartbeat
        self.total = total
        self.store_hits = store_hits
        self.stats = stats
        self.note = note or ""
        self.backend = backend
        self.completed = store_hits
        self.started = time.perf_counter()
        self._last_count = -1
        self._last_time = self.started

    def report(self, force: bool = False) -> None:
        if self.progress is None:
            return
        now = time.perf_counter()
        if not force and self.completed == self._last_count:
            if now - self._last_time < self.heartbeat:
                return
        self.progress(
            JobProgress(
                self.completed,
                self.total,
                now - self.started,
                self.store_hits,
                retries=self.stats.retries,
                recoveries=self.stats.pool_rebuilds,
                note=self.note,
                backend=self.backend,
            )
        )
        self._last_count = self.completed
        self._last_time = now


def _backoff_delay(opts: ResilienceOptions, failed_attempts: int) -> float:
    """Exponential backoff with jitter: base * 2^(n-1) * U[0.5, 1), capped."""
    if opts.backoff_base <= 0.0:
        return 0.0
    delay = opts.backoff_base * (2.0 ** max(0, failed_attempts - 1))
    return min(opts.backoff_cap, delay) * (0.5 + random.random() / 2.0)


class _JobTimeoutError(Exception):
    """Internal: a serial job attempt exceeded the wall-clock ceiling."""


@contextmanager
def _serial_deadline(seconds: Optional[float]):
    """Enforce a wall-clock ceiling on an inline job via ``SIGALRM``.

    Only armed when a timeout is configured and the platform has
    ``setitimer``; callers must be on the main thread (``signal.signal``
    raises ``ValueError`` anywhere else) — :func:`_execute_with_deadline`
    routes non-main-thread execution to the watchdog path instead.
    """
    if not seconds or not hasattr(signal, "setitimer"):
        yield
        return

    def _on_alarm(signum, frame):
        raise _JobTimeoutError()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: One warning per process when inline timeouts degrade to the watchdog.
_WATCHDOG_WARNED = False


def _watchdog_execute(job: Job, index: int, attempt: int, seconds: float):
    """Thread-watchdog deadline for inline jobs off the main thread.

    ``SIGALRM`` only works on the main thread — ``signal.signal`` raises
    ``ValueError`` anywhere else — so an inline job running under an
    executor thread (the serve daemon's request path) cannot use
    :func:`_serial_deadline`.  Instead the job runs in a daemonic helper
    thread that is *abandoned* on timeout, mirroring the pool-abandon
    path for worker processes: the stuck attempt keeps running to
    oblivion but the caller gets its :class:`_JobTimeoutError` (and
    retry) on schedule instead of a crash or an unbounded wait.  The
    degradation is warned once per process and recorded on the active
    telemetry scope.
    """
    global _WATCHDOG_WARNED
    if not _WATCHDOG_WARNED:
        _WATCHDOG_WARNED = True
        warnings.warn(
            "job timeouts are enforced off the main thread by a watchdog "
            "thread (SIGALRM is main-thread-only); a timed-out inline job "
            "is abandoned, not interrupted",
            RuntimeWarning,
            stacklevel=3,
        )
    scope = _telemetry_scope()
    if scope is not None:
        scope.record_fallback(
            "serial_deadline",
            "SIGALRM unavailable off the main thread; using watchdog-thread timeouts",
        )
    box: List = []

    def _target() -> None:
        try:
            box.append((True, _guarded_execute(job, index, attempt)))
        except BaseException as exc:  # delivered to the submitting thread
            box.append((False, exc))

    worker = threading.Thread(target=_target, daemon=True, name="repro-job-watchdog")
    worker.start()
    worker.join(seconds)
    if not box and worker.is_alive():
        raise _JobTimeoutError()
    worker.join()
    succeeded, value = box[0]
    if succeeded:
        return value
    raise value


def _execute_with_deadline(job: Job, index: int, attempt: int, seconds: Optional[float]):
    """Run one inline job under the configured wall-clock ceiling.

    Main thread: ``SIGALRM`` interrupts the attempt in place.  Any other
    thread: the watchdog path above.  No ceiling configured: plain
    execution.
    """
    if not seconds:
        return _guarded_execute(job, index, attempt)
    if threading.current_thread() is threading.main_thread():
        with _serial_deadline(seconds):
            return _guarded_execute(job, index, attempt)
    return _watchdog_execute(job, index, attempt, seconds)


def _is_corrupt(outcome) -> bool:
    from .faults import CorruptPayload

    return isinstance(outcome, CorruptPayload)


def _run_serial(
    entries: List[_Pending],
    opts: ResilienceOptions,
    stats: _BatchStats,
    failures: List[JobFailure],
    complete,
) -> None:
    """Inline execution with retries and (best-effort) timeouts.

    A ``KeyboardInterrupt`` propagates immediately — results completed
    so far were already flushed through *complete*, so an interrupted
    run resumes from the store.
    """
    for entry in entries:
        while True:
            reason = None
            try:
                outcome = _execute_with_deadline(
                    entry.job, entry.index, entry.attempts, opts.job_timeout
                )
                if _is_corrupt(outcome):
                    reason = "corrupt result payload"
            except _JobTimeoutError:
                stats.timeouts += 1
                reason = f"timed out after {opts.job_timeout:g}s"
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                reason = f"{type(exc).__name__}: {exc}"
            if reason is None:
                complete(entry, outcome)
                break
            entry.attempts += 1
            if entry.attempts > opts.retries:
                failures.append(JobFailure(entry.index, reason))
                break
            stats.retries += 1
            time.sleep(_backoff_delay(opts, entry.attempts))


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting for stuck or dead workers."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    # A hung worker ignores shutdown (it never returns to the call
    # queue), so terminate outstanding worker processes directly.
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:
            pass


def _drain_pool(
    pool: ProcessPoolExecutor,
    batch: List[_Pending],
    remaining: List[_Pending],
    opts: ResilienceOptions,
    stats: _BatchStats,
    failures: List[JobFailure],
    complete,
    reporter: _Reporter,
    sequential: bool,
) -> Tuple[str, Optional[_Pending]]:
    """Drain one pool generation; returns ``(status, culprit)``.

    Status is ``"done"`` (every batch entry completed, failed out, or —
    sequentially — was processed), ``"broke"`` (a worker died and the
    pool is unusable; *culprit* is the responsible entry when it can be
    attributed, i.e. in sequential mode), or ``"abandoned"`` (a job
    exceeded its timeout; the pool was torn down to reclaim the stuck
    worker).  Transient job failures are retried *within* the pool;
    entries leave *remaining* only on completion or permanent failure.
    """
    queue = list(batch) if sequential else []
    active: Dict = {}
    tick = reporter.heartbeat
    if opts.job_timeout is not None:
        tick = max(0.02, min(tick, opts.job_timeout / 5.0))

    def submit(entry: _Pending) -> bool:
        entry.started = None
        try:
            future = pool.submit(_guarded_execute, entry.job, entry.index, entry.attempts)
        except Exception:  # pool already broken or shut down
            return False
        active[future] = entry
        return True

    def fail_or_retry(entry: _Pending, reason: str, pause: bool = True) -> None:
        entry.attempts += 1
        if entry.attempts > opts.retries:
            failures.append(JobFailure(entry.index, reason))
            remaining.remove(entry)
            return
        stats.retries += 1
        if pause:
            time.sleep(_backoff_delay(opts, entry.attempts))
        if not submit(entry):
            raise BrokenProcessPool("pool broke while re-submitting a retried job")

    try:
        seeds = queue[:1] if sequential else batch
        for entry in list(seeds):
            if sequential:
                queue.remove(entry)
            if not submit(entry):
                # Submission failure means the pool was already dead;
                # the entry being submitted is not to blame.
                _abandon_pool(pool)
                return "broke", None
        while active:
            done, _ = wait(set(active), timeout=tick, return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for future in done:
                entry = active.pop(future)
                exc = future.exception()
                if isinstance(exc, BrokenProcessPool):
                    _abandon_pool(pool)
                    return "broke", entry if sequential else None
                if exc is not None:
                    fail_or_retry(entry, f"{type(exc).__name__}: {exc}")
                    continue
                outcome = future.result()
                if _is_corrupt(outcome):
                    fail_or_retry(entry, "corrupt result payload")
                    continue
                remaining.remove(entry)
                complete(entry, outcome)
            # Start the per-job clock at first observed execution and
            # enforce the wall-clock ceiling.  A timed-out job forfeits
            # the whole pool: there is no way to cancel a running task,
            # so the stuck worker is terminated and survivors re-run.
            for future, entry in list(active.items()):
                if not future.running():
                    continue
                if entry.started is None:
                    entry.started = now
                elif opts.job_timeout is not None and now - entry.started > opts.job_timeout:
                    stats.timeouts += 1
                    entry.attempts += 1
                    if entry.attempts > opts.retries:
                        failures.append(
                            JobFailure(
                                entry.index, f"timed out after {opts.job_timeout:g}s"
                            )
                        )
                        remaining.remove(entry)
                    else:
                        stats.retries += 1
                    _abandon_pool(pool)
                    return "abandoned", None
            if sequential and not active and queue:
                entry = queue.pop(0)
                if entry in remaining and not submit(entry):
                    _abandon_pool(pool)
                    return "broke", None
            reporter.report()
    except BrokenProcessPool:
        _abandon_pool(pool)
        return "broke", None
    except KeyboardInterrupt:
        # Orderly interrupt: reclaim workers, keep everything already
        # flushed.  The store checkpoint makes the run resumable.
        _abandon_pool(pool)
        raise
    return "done", None


def _execute_entries(
    entries: List[_Pending],
    workers: int,
    opts: ResilienceOptions,
    store,
    stats: _BatchStats,
    progress: Optional[ProgressCallback],
    heartbeat: float,
    total: int,
    store_hits: int,
    pool_env: Optional[Tuple] = None,
    note: Optional[str] = None,
    backend: str = "",
) -> Tuple[Dict[int, object], List[JobFailure]]:
    """Execute pending entries with retries, timeouts, and pool recovery.

    Returns ``(results_by_slot, permanent_failures)``.  Every completed
    result is flushed to *store* (when active and the entry is cacheable)
    *as it completes*, so a crash, hang, or interrupt later in the batch
    never loses finished work.
    """
    results: Dict[int, object] = {}
    failures: List[JobFailure] = []
    reporter = _Reporter(progress, heartbeat, total, store_hits, stats, note, backend)

    def complete(entry: _Pending, outcome) -> None:
        results[entry.slot] = outcome
        if store is not None and entry.key is not None:
            store.put(entry.key, outcome)
        reporter.completed += 1
        reporter.report()

    remaining = list(entries)
    if workers > 1 and pool_env is not None:
        initializer, initargs = pool_env
        pool_breaks = 0
        careful = False
        while remaining and pool_breaks <= opts.max_pool_rebuilds:
            batch = list(remaining)
            pool = ProcessPoolExecutor(
                max_workers=1 if careful else min(workers, len(batch)),
                initializer=initializer,
                initargs=initargs,
            )
            status, culprit = "done", None
            try:
                status, culprit = _drain_pool(
                    pool, batch, remaining, opts, stats, failures,
                    complete, reporter, sequential=careful,
                )
            finally:
                if status == "done":
                    pool.shutdown()
            if status == "broke":
                pool_breaks += 1
                stats.pool_rebuilds += 1
                if culprit is not None and culprit in remaining:
                    # Sequential mode pins the blame: the job that was
                    # alone in flight when the pool died is the culprit.
                    culprit.strikes += 1
                    culprit.attempts += 1
                    if culprit.strikes >= opts.poison_strikes:
                        failures.append(
                            JobFailure(
                                culprit.index,
                                f"excluded as poison: worker process died "
                                f"{culprit.strikes} times running this job",
                            )
                        )
                        stats.poisoned += 1
                        remaining.remove(culprit)
                        careful = False
                else:
                    # Batch breakage cannot be attributed; after a second
                    # breakage, probe jobs one at a time to find the
                    # poison without punishing innocent bystanders.
                    careful = pool_breaks >= 2
        if remaining:
            record_fallback(
                "run_jobs",
                f"process pool broke {pool_breaks} times; "
                f"finishing {len(remaining)} job(s) serially",
                stacklevel=4,
            )
    _run_serial(remaining, opts, stats, failures, complete)
    return results, failures


def run_jobs(
    job_list: Sequence[Job],
    jobs: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    heartbeat: float = 5.0,
    resilience: Optional[ResilienceOptions] = None,
) -> List:
    """Execute jobs, returning results in submission order.

    ``jobs=1`` (or ``REPRO_JOBS`` unset) runs everything inline; with
    more workers the jobs fan out over a process pool whose workers each
    cache the traces they need.  *progress* receives a
    :class:`~repro.telemetry.core.JobProgress` heartbeat on every
    completion change and at least every *heartbeat* seconds.  When a
    telemetry scope is active, the batch's job count, worker count, wall
    time, and resilience counters are recorded.

    When a result store is active (``REPRO_RESULT_STORE`` or
    ``--result-store``), each cacheable job is looked up before dispatch
    and its result flushed back **as it completes** — not at batch end —
    so an interrupted or crashed batch keeps every finished point and a
    rerun (or ``--resume``) continues where it stopped.

    *resilience* (default: from ``REPRO_JOB_TIMEOUT``/``REPRO_RETRIES``)
    governs per-job timeouts, bounded retry with exponential backoff,
    broken-pool recovery, and poison-job exclusion; jobs that still fail
    raise :class:`JobFailedError` *after* the rest of the batch has
    completed and been flushed.
    """
    job_list = list(job_list)
    opts = resolve_resilience(resilience)
    store = current_store()
    scope = _telemetry_scope()
    started = time.perf_counter() if scope is not None else 0.0

    # Consult the store first: hits fill their result slots directly,
    # misses become pending entries whose computed results are flushed
    # back — and merged — in submission order.
    results: List = [None] * len(job_list)
    entries: List[_Pending] = []
    hits = 0
    consulted_misses = 0
    bytes_read = 0
    for index, job in enumerate(job_list):
        key = _store_key(job) if store is not None else None
        if key is not None:
            cached, nbytes = store.get(key)
            if cached is not None:
                results[index] = cached
                hits += 1
                bytes_read += nbytes
                continue
            consulted_misses += 1
        entries.append(_Pending(index, job, key))

    workers = min(resolve_jobs(jobs), len(entries)) if entries else 1
    stats = _BatchStats()
    failures: List[JobFailure] = []
    # Backend selection is decided up front from the pending specs (store
    # hits never re-simulate, so they are not counted), surfaced in every
    # heartbeat and folded into the run record.
    backends = _backend_counts([entry.job for entry in entries])
    backend_note = _backend_note(backends)
    if not entries:
        if progress is not None and hits:
            # Fully warm batch: one summary heartbeat instead of silence.
            progress(JobProgress(hits, len(job_list), 0.0, hits))
        computed: Dict[int, object] = {}
    elif workers <= 1:
        computed, failures = _execute_entries(
            entries, 1, opts, store, stats, progress, heartbeat, len(job_list), hits,
            backend=backend_note,
        )
    else:
        initializer, initargs, segments, note = _pool_setup(
            _distinct_trace_keys([entry.job for entry in entries])
        )
        try:
            computed, failures = _execute_entries(
                entries, workers, opts, store, stats, progress, heartbeat,
                len(job_list), hits, pool_env=(initializer, initargs), note=note,
                backend=backend_note,
            )
        finally:
            if segments:
                from ..traces.packed import release_shared_segments

                release_shared_segments(segments)

    for slot, outcome in computed.items():
        results[slot] = outcome

    if scope is not None and job_list:
        scope.record_job_batch(
            _batch_kind(job_list), len(job_list), workers, time.perf_counter() - started
        )
        if store is not None:
            scope.record_store(hits, consulted_misses, bytes_read)
        if stats.any():
            scope.record_resilience(
                stats.retries, stats.timeouts, stats.pool_rebuilds, stats.poisoned
            )
        if backends:
            scope.record_backends(backends)
    if failures:
        raise JobFailedError(failures)
    return results


def run_experiments(
    names: Sequence[str],
    scale: Optional[int] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    heartbeat: float = 5.0,
    resilience: Optional[ResilienceOptions] = None,
) -> List[ExperimentOutcome]:
    """Run whole experiment modules, optionally in parallel.

    Results come back in the order of *names* regardless of which worker
    finished first, so the rendered output of a parallel run is
    identical to the serial one.  *progress* behaves as in
    :func:`run_jobs`: a heartbeat per completion change and at least
    every *heartbeat* seconds of pool time.  Experiment modules are not
    store-cacheable, but retries, timeouts, and broken-pool recovery
    (*resilience*) apply exactly as in :func:`run_jobs`.
    """
    job_list = [ExperimentJob(name, scale, seed) for name in names]
    opts = resolve_resilience(resilience)
    entries = [_Pending(index, job, None) for index, job in enumerate(job_list)]
    workers = min(resolve_jobs(jobs), len(job_list)) if job_list else 1
    scope = _telemetry_scope()
    started = time.perf_counter() if scope is not None else 0.0
    stats = _BatchStats()
    failures: List[JobFailure] = []
    if workers <= 1:
        computed, failures = _execute_entries(
            entries, 1, opts, None, stats, progress, heartbeat, len(job_list), 0
        )
    else:
        # Build the suite once in the parent before forking: fork-based
        # platforms then share the materialized traces copy-on-write, and
        # spawn-based ones receive the packed buffers through shared
        # memory via the initializer (or rebuild once per worker when
        # shared memory is unavailable).
        suite(scale, seed)
        suite_keys = tuple(TraceKey(name, scale, seed) for name in BENCHMARK_NAMES)
        initializer, initargs, segments, note = _pool_setup(suite_keys)
        try:
            computed, failures = _execute_entries(
                entries, workers, opts, None, stats, progress, heartbeat,
                len(job_list), 0, pool_env=(initializer, initargs), note=note,
            )
        finally:
            if segments:
                from ..traces.packed import release_shared_segments

                release_shared_segments(segments)
    if scope is not None and job_list:
        scope.record_job_batch(
            "ExperimentJob", len(job_list), workers, time.perf_counter() - started
        )
        if stats.any():
            scope.record_resilience(
                stats.retries, stats.timeouts, stats.pool_rebuilds, stats.poisoned
            )
    if failures:
        raise JobFailedError(failures)
    return [computed[index] for index in range(len(job_list))]
