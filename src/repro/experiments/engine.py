"""Parallel experiment engine: picklable simulation jobs over a process pool.

Trace-driven cache studies are embarrassingly parallel: every
``(trace, cache geometry, helper structure)`` point is an independent
simulation, and the repo runs hundreds of them per full reproduction.
This module turns each point into a small picklable *job* — workload
name, scale, seed, side, geometry, and a declarative structure spec —
and fans jobs out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* **Per-worker suite cache** — a worker initializer materializes each
  distinct ``(name, scale, seed)`` trace once (through
  :func:`repro.experiments.workloads.materialized_trace`, whose
  process-level memoization then serves every later job in that worker;
  on fork-based platforms the parent's already-built traces are
  inherited copy-on-write, so warming is effectively free).
* **Deterministic ordering** — results always come back in job-submission
  order, so a parallel run is row-for-row identical to a serial one.
* **Serial fallback** — with ``jobs=1`` (the default, or via the
  ``REPRO_JOBS`` environment variable) everything runs inline in the
  calling process; no pool, no pickling, byte-identical results.

Job kinds
---------

=================== ===================================================
:class:`LevelJob`    one single-level replay → :class:`LevelSummary`
:class:`EntrySweepJob`  one single-pass miss/victim-cache size sweep →
                     :class:`~repro.experiments.sweeps.EntrySweep`
:class:`RunSweepJob` one stream-buffer run-length sweep →
                     :class:`~repro.experiments.sweeps.RunLengthSweep`
:class:`ExperimentJob`  one whole experiment module →
                     :class:`ExperimentOutcome`
=================== ===================================================

Each job carries a :class:`~repro.specs.SystemSpec` — a frozen,
picklable description of trace, geometry, and helper structure — so
*every* registered structure configuration fans out, default options or
not.  The legacy string codes (``"mc4"``, ``"vc4"``, ``"sb4"``,
``"sb4x4"``) survive as deprecated shims over
:func:`repro.specs.parse_structure_code`.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..buffers.base import L1Augmentation
from ..common.errors import ConfigurationError
from ..common.stats import percent, safe_div
from ..specs import SpecError, SystemSpec, TraceSpec, describe, parse_structure_code
from ..specs import build as build_spec
from ..specs import spec_hash
from ..specs import structure_code as _structure_code
from ..store import ResultKey, current_store
from ..telemetry.core import JobProgress, ProgressCallback
from ..telemetry.core import current as _telemetry_scope
from .base import FigureResult, TableResult
from .runner import run_level
from .sweeps import (
    miss_cache_sweep,
    stream_buffer_run_sweep,
    victim_cache_sweep,
)
from .workloads import BENCHMARK_NAMES, suite

__all__ = [
    "TraceKey",
    "LevelJob",
    "LevelSummary",
    "EntrySweepJob",
    "RunSweepJob",
    "ExperimentJob",
    "ExperimentOutcome",
    "build_structure",
    "spec_of",
    "default_jobs",
    "resolve_jobs",
    "validate_jobs",
    "execute_job",
    "run_jobs",
    "run_experiments",
]


# -- trace identity -----------------------------------------------------------

#: Identity of a registry trace: enough to rebuild it anywhere.  Now an
#: alias of :class:`repro.specs.TraceSpec`; the engine historically
#: called it a TraceKey and tests/callers may keep using that name.
TraceKey = TraceSpec


# -- legacy structure codes (deprecated shims) --------------------------------


def build_structure(spec: Optional[str]) -> Optional[L1Augmentation]:
    """Deprecated: build a helper structure from its legacy string code.

    Use :func:`repro.specs.build` with a
    :class:`~repro.specs.StructureSpec` instead; this shim parses the
    code into a spec and builds it.
    """
    warnings.warn(
        "build_structure(code) is deprecated; use repro.specs.build("
        "parse_structure_code(code)) or construct a StructureSpec directly",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_spec(parse_structure_code(spec))


def spec_of(structure: Optional[L1Augmentation]) -> Optional[str]:
    """Deprecated: legacy string code for a default-option structure.

    Use :func:`repro.specs.describe`, which returns a full
    :class:`~repro.specs.StructureSpec` for *any* registered structure.
    This shim preserves the old contract: the short code for structures
    built with the paper's default options, None for everything else.
    """
    warnings.warn(
        "spec_of(structure) is deprecated; use repro.specs.describe(structure), "
        "which covers non-default options too",
        DeprecationWarning,
        stacklevel=2,
    )
    try:
        spec = describe(structure)
    except SpecError:
        return None
    return _structure_code(spec)


# -- jobs ---------------------------------------------------------------------


def _require_trace(system: SystemSpec, job_kind: str) -> None:
    if system.trace is None:
        raise ConfigurationError(
            f"{job_kind} needs a SystemSpec with a trace reference; "
            "config-only specs cannot be executed"
        )


@dataclass(frozen=True)
class LevelJob:
    """One single-level replay: a :class:`~repro.specs.SystemSpec` point.

    The spec's trace names the workload, its ``side``/geometry pick the
    stream and cache, and its structure spec — *any* registered
    structure, default options or not — is rebuilt in the worker.
    """

    system: SystemSpec

    def __post_init__(self) -> None:
        _require_trace(self.system, "LevelJob")


@dataclass(frozen=True)
class LevelSummary:
    """Picklable statistics of one :class:`LevelJob` replay."""

    accesses: int
    demand_misses: int
    removed_misses: int
    misses_to_next_level: int
    stream_stall_cycles: int = 0
    #: Only populated when the job ran with ``classify=True``.
    conflict_misses: Optional[int] = None

    @property
    def miss_rate(self) -> float:
        return safe_div(self.demand_misses, self.accesses)

    @property
    def effective_miss_rate(self) -> float:
        return safe_div(self.misses_to_next_level, self.accesses)

    @property
    def percent_removed(self) -> float:
        return percent(self.removed_misses, self.demand_misses)


@dataclass(frozen=True)
class EntrySweepJob:
    """One single-pass miss/victim-cache entry sweep (Figures 3-3/3-5).

    The sweep builds its own depth-tracking structure, so the system
    spec contributes trace, side, and geometry only (its ``structure``
    field is ignored).
    """

    system: SystemSpec
    kind: str = "miss"  # "miss" | "victim"
    max_entries: int = 15

    def __post_init__(self) -> None:
        _require_trace(self.system, "EntrySweepJob")


@dataclass(frozen=True)
class RunSweepJob:
    """One stream-buffer run-length sweep (Figures 4-3/4-5).

    As with :class:`EntrySweepJob`, the sweep builds its own
    offset-tracking buffer; the system spec contributes trace, side,
    and geometry.
    """

    system: SystemSpec
    ways: int = 1
    entries: int = 4
    max_run: int = 16

    def __post_init__(self) -> None:
        _require_trace(self.system, "RunSweepJob")


@dataclass(frozen=True)
class ExperimentJob:
    """One whole experiment module run at a given scale and seed."""

    name: str
    scale: Optional[int] = None
    seed: int = 0


@dataclass(frozen=True)
class ExperimentOutcome:
    """Result of an :class:`ExperimentJob`, with worker-side timing."""

    name: str
    result: Union[TableResult, FigureResult]
    elapsed: float


Job = Union[LevelJob, EntrySweepJob, RunSweepJob, ExperimentJob]


# -- execution ----------------------------------------------------------------


def execute_job(job: Job):
    """Run one job in the current process and return its picklable result."""
    if isinstance(job, LevelJob):
        system = job.system
        addresses = system.trace.trace().stream(system.side)
        run = run_level(
            addresses,
            system.cache_config,
            system.build_structure(),
            classify=system.classify,
            warmup=system.warmup,
        )
        stats = run.stats
        return LevelSummary(
            accesses=stats.accesses,
            demand_misses=stats.demand_misses,
            removed_misses=stats.removed_misses,
            misses_to_next_level=stats.misses_to_next_level,
            stream_stall_cycles=stats.stream_stall_cycles,
            conflict_misses=run.conflicts if system.classify else None,
        )
    if isinstance(job, EntrySweepJob):
        system = job.system
        addresses = system.trace.trace().stream(system.side)
        sweep_fn = {"miss": miss_cache_sweep, "victim": victim_cache_sweep}.get(job.kind)
        if sweep_fn is None:
            raise ConfigurationError(f"unknown entry-sweep kind {job.kind!r}")
        return sweep_fn(addresses, system.cache_config, job.max_entries)
    if isinstance(job, RunSweepJob):
        system = job.system
        addresses = system.trace.trace().stream(system.side)
        return stream_buffer_run_sweep(
            addresses,
            system.cache_config,
            ways=job.ways,
            entries=job.entries,
            max_run=job.max_run,
        )
    if isinstance(job, ExperimentJob):
        # Local import: the experiment registry lives in the package
        # __init__, which itself imports this module.
        from . import ALL_EXPERIMENTS

        started = time.time()
        result = ALL_EXPERIMENTS[job.name](traces=None, scale=job.scale, seed=job.seed)
        return ExperimentOutcome(name=job.name, result=result, elapsed=time.time() - started)
    raise TypeError(f"not an engine job: {job!r}")


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1 = serial)."""
    raw = os.environ.get("REPRO_JOBS", "")
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ConfigurationError(f"REPRO_JOBS must be an integer, got {raw!r}") from None


def resolve_jobs(jobs: Optional[int]) -> int:
    """Explicit job count, or the ``REPRO_JOBS`` default when None."""
    return default_jobs() if jobs is None else max(1, jobs)


def validate_jobs(jobs: Optional[int]) -> int:
    """CLI-boundary job-count validation.

    Library callers go through :func:`resolve_jobs`, which clamps
    nonsense to 1 so programmatic sweeps never explode; user-typed input
    deserves a loud error instead of a silently ignored flag.  Raises
    :class:`ConfigurationError` for ``jobs < 1`` and (via
    :func:`default_jobs`) for a malformed ``REPRO_JOBS`` value.
    """
    if jobs is None:
        return default_jobs()
    if jobs < 1:
        raise ConfigurationError(f"--jobs must be at least 1, got {jobs}")
    return jobs


def _warm_worker(trace_keys: Tuple[TraceSpec, ...]) -> None:
    """Worker initializer: materialize each distinct trace exactly once.

    Later jobs in this worker hit the process-level memoization in
    :mod:`repro.experiments.workloads` instead of rebuilding.
    """
    for key in trace_keys:
        key.trace()


def _shm_warm_worker(descriptors: Tuple) -> None:
    """Worker initializer: rebuild packed traces from shared memory.

    Each descriptor names one shared-memory segment holding a trace's
    packed buffers; attaching is two ``memcpy`` calls instead of a full
    synthetic-generator replay.  Failures degrade gracefully — a trace
    that cannot be attached is simply rebuilt on demand by the first job
    that needs it, through the normal workload memo.
    """
    from ..traces.packed import attach_shared_trace
    from .workloads import seed_materialized_trace

    for descriptor in descriptors:
        try:
            trace = attach_shared_trace(descriptor)
        except Exception:
            continue
        name, scale, seed = descriptor.memo_key
        seed_materialized_trace(name, scale, seed, trace)


def _pool_setup(trace_keys: Tuple[TraceSpec, ...]):
    """``(initializer, initargs, segments)`` for warming a worker pool.

    Fork-based platforms inherit the parent's materialized traces
    copy-on-write, so the plain warm initializer is free there.  On
    spawn/forkserver platforms each worker would replay every synthetic
    generator from scratch; instead the parent materializes once, lays
    the packed buffers out in shared memory, and workers attach-and-copy.
    The caller must pass *segments* to
    :func:`~repro.traces.packed.release_shared_segments` after the pool
    has shut down.
    """
    import multiprocessing

    plain = (_warm_worker, (trace_keys,), [])
    if not trace_keys or multiprocessing.get_start_method() == "fork":
        return plain
    from ..traces.packed import PackedTrace, share_packed_traces

    entries = []
    for key in trace_keys:
        trace = key.trace()
        if not isinstance(trace, PackedTrace):
            return plain
        entries.append(((key.name, key.scale, key.seed), trace))
    try:
        descriptors, segments = share_packed_traces(entries)
    except Exception:
        return plain
    return _shm_warm_worker, (tuple(descriptors),), segments


def _distinct_trace_keys(jobs: Iterable[Job]) -> Tuple[TraceSpec, ...]:
    seen = {}
    for job in jobs:
        system = getattr(job, "system", None)
        key = system.trace if isinstance(system, SystemSpec) else None
        if isinstance(key, TraceSpec):
            seen[key] = None
    return tuple(seen)


def _store_key(job: Job) -> Optional[ResultKey]:
    """Result-store key for a job, or None for uncacheable jobs.

    Only jobs whose full configuration is captured by a trace-bearing
    :class:`~repro.specs.SystemSpec` plus the job's own scalar
    parameters are cacheable.  :class:`ExperimentJob` is not — a whole
    experiment module is an open-ended computation — but the engine
    batches *inside* it hit the store individually.
    """
    system = getattr(job, "system", None)
    if not isinstance(system, SystemSpec) or not isinstance(system.trace, TraceSpec):
        return None
    if isinstance(job, LevelJob):
        extras = {}
    elif isinstance(job, EntrySweepJob):
        extras = {"kind": job.kind, "max_entries": job.max_entries}
    elif isinstance(job, RunSweepJob):
        extras = {"ways": job.ways, "entries": job.entries, "max_run": job.max_run}
    else:
        return None
    return ResultKey(
        job_kind=type(job).__name__,
        spec_hash=spec_hash(system),
        trace_fingerprint=system.trace.fingerprint(),
        extras=extras,
    )


def _batch_kind(job_list: Sequence[Job]) -> str:
    kinds = {type(job).__name__ for job in job_list}
    return kinds.pop() if len(kinds) == 1 else "mixed"


def _collect(
    futures: Sequence[Future],
    progress: Optional[ProgressCallback],
    heartbeat: float,
    total: Optional[int] = None,
    store_hits: int = 0,
) -> List:
    """Future results in submission order, with periodic progress reports.

    *progress* is called whenever the completed-job count changes and at
    least every *heartbeat* seconds while the pool is still working, so
    a long fan-out is never silent.  With no callback this is just an
    ordered drain.  *total*/*store_hits* let a store-assisted batch
    report against the full job count: store hits count as already done.
    """
    if progress is None:
        return [future.result() for future in futures]
    if total is None:
        total = len(futures)
    started = time.perf_counter()
    pending = set(futures)
    reported = -1
    while pending:
        done, pending = wait(pending, timeout=heartbeat)
        finished = total - len(pending)
        if finished != reported or not done:
            progress(
                JobProgress(finished, total, time.perf_counter() - started, store_hits)
            )
            reported = finished
    return [future.result() for future in futures]


def run_jobs(
    job_list: Sequence[Job],
    jobs: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    heartbeat: float = 5.0,
) -> List:
    """Execute jobs, returning results in submission order.

    ``jobs=1`` (or ``REPRO_JOBS`` unset) runs everything inline; with
    more workers the jobs fan out over a process pool whose workers each
    cache the traces they need.  *progress* (parallel runs only)
    receives a :class:`~repro.telemetry.core.JobProgress` heartbeat at
    least every *heartbeat* seconds.  When a telemetry scope is active,
    the batch's job count, worker count, and wall time are recorded.

    When a result store is active (``REPRO_RESULT_STORE`` or
    ``--result-store``), each cacheable job is looked up before
    dispatch and inserted after: a warm store satisfies the whole batch
    without running a single simulation, and results stay in submission
    order either way.
    """
    job_list = list(job_list)
    store = current_store()
    scope = _telemetry_scope()
    started = time.perf_counter() if scope is not None else 0.0

    # Consult the store first: hits fill their result slots directly,
    # misses keep (slot, job, key) so computed results can be merged
    # back — and inserted — in submission order.
    results: List = [None] * len(job_list)
    misses: List[Tuple[int, Job, Optional[ResultKey]]] = []
    hits = 0
    consulted_misses = 0
    bytes_read = 0
    if store is None:
        misses = [(index, job, None) for index, job in enumerate(job_list)]
    else:
        for index, job in enumerate(job_list):
            key = _store_key(job)
            if key is not None:
                cached, nbytes = store.get(key)
                if cached is not None:
                    results[index] = cached
                    hits += 1
                    bytes_read += nbytes
                    continue
                consulted_misses += 1
            misses.append((index, job, key))

    pending_jobs = [job for _, job, _ in misses]
    workers = min(resolve_jobs(jobs), len(pending_jobs)) if pending_jobs else 1
    if workers <= 1:
        computed = [execute_job(job) for job in pending_jobs]
        if progress is not None and hits and not pending_jobs:
            # Fully warm batch: one summary heartbeat instead of silence.
            progress(JobProgress(hits, len(job_list), 0.0, hits))
    else:
        initializer, initargs, segments = _pool_setup(_distinct_trace_keys(pending_jobs))
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                futures = [pool.submit(execute_job, job) for job in pending_jobs]
                computed = _collect(
                    futures, progress, heartbeat, total=len(job_list), store_hits=hits
                )
        finally:
            if segments:
                from ..traces.packed import release_shared_segments

                release_shared_segments(segments)

    for (index, _, key), result in zip(misses, computed):
        results[index] = result
        if store is not None and key is not None:
            store.put(key, result)

    if scope is not None and job_list:
        scope.record_job_batch(
            _batch_kind(job_list), len(job_list), workers, time.perf_counter() - started
        )
        if store is not None:
            scope.record_store(hits, consulted_misses, bytes_read)
    return results


def run_experiments(
    names: Sequence[str],
    scale: Optional[int] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    heartbeat: float = 5.0,
) -> List[ExperimentOutcome]:
    """Run whole experiment modules, optionally in parallel.

    Results come back in the order of *names* regardless of which worker
    finished first, so the rendered output of a parallel run is
    identical to the serial one.  *progress* behaves as in
    :func:`run_jobs`: a heartbeat per completion change and at least
    every *heartbeat* seconds of pool time.
    """
    job_list = [ExperimentJob(name, scale, seed) for name in names]
    workers = min(resolve_jobs(jobs), len(job_list)) if job_list else 1
    scope = _telemetry_scope()
    started = time.perf_counter() if scope is not None else 0.0
    if workers <= 1:
        outcomes = [execute_job(job) for job in job_list]
    else:
        # Build the suite once in the parent before forking: fork-based
        # platforms then share the materialized traces copy-on-write, and
        # spawn-based ones receive the packed buffers through shared
        # memory via the initializer (or rebuild once per worker when
        # shared memory is unavailable).
        suite(scale, seed)
        suite_keys = tuple(TraceKey(name, scale, seed) for name in BENCHMARK_NAMES)
        initializer, initargs, segments = _pool_setup(suite_keys)
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                futures = [pool.submit(execute_job, job) for job in job_list]
                outcomes = _collect(futures, progress, heartbeat)
        finally:
            if segments:
                from ..traces.packed import release_shared_segments

                release_shared_segments(segments)
    if scope is not None and job_list:
        scope.record_job_batch(
            "ExperimentJob", len(job_list), workers, time.perf_counter() - started
        )
    return outcomes
