"""Shared result types and rendering for the experiment modules.

Every experiment module exposes ``run(traces=None, scale=None, seed=0)``
returning either a :class:`TableResult` (for the paper's tables) or a
:class:`FigureResult` (for its figures — rendered as the numeric series
behind the plot, since this is a terminal harness).  Both render to
fixed-width text in the shape of the paper's artifact so measured and
published values can be compared side by side.

Figure experiments that replay per-(trace, side) level points can
declare those points as :class:`~repro.specs.SystemSpec` values via
:func:`level_point_specs` and evaluate them through the engine with
:func:`run_point_specs` — the same declarative currency the grid and
batch sweeps use, so a figure's points fan out over workers for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

__all__ = [
    "Series",
    "FigureResult",
    "TableResult",
    "format_value",
    "level_point_specs",
    "run_point_specs",
]


def level_point_specs(
    traces,
    config,
    structure=None,
    sides: Sequence[str] = ("i", "d"),
    classify: bool = False,
    warmup: int = 0,
) -> Optional[List]:
    """SystemSpecs for every (side, trace) level point, in nested order.

    Ordering is ``for side in sides: for trace in traces``.  Returns
    None when any trace lacks a registry rebuild recipe — the caller
    then replays inline on the live trace objects instead.
    """
    from ..specs import SystemSpec

    specs = []
    for side in sides:
        for trace in traces:
            spec = SystemSpec.for_level(
                trace, config, side=side, structure=structure,
                classify=classify, warmup=warmup,
            )
            if spec is None:
                return None
            specs.append(spec)
    return specs


def run_point_specs(specs, jobs: Optional[int] = None, resilience=None) -> List:
    """LevelSummaries for spec points, via the (optionally parallel) engine."""
    from .engine import LevelJob, run_jobs

    return run_jobs([LevelJob(spec) for spec in specs], jobs=jobs, resilience=resilience)

Value = Union[int, float, str]


def format_value(value: Value, width: int = 0) -> str:
    """Format a cell: floats to 3 significant places, right-aligned."""
    if isinstance(value, float):
        text = f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    else:
        text = str(value)
    return text.rjust(width) if width else text


@dataclass
class Series:
    """One line on a figure: a label plus aligned x/y vectors."""

    label: str
    x: Sequence[Value]
    y: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: x has {len(self.x)} points, y has {len(self.y)}"
            )

    def point(self, x_value: Value) -> float:
        """The y value at a given x (KeyError if absent)."""
        for xv, yv in zip(self.x, self.y):
            if xv == x_value:
                return yv
        raise KeyError(f"series {self.label!r} has no point at x={x_value!r}")


@dataclass
class TableResult:
    """A reproduced table: headers, rows, and free-form notes."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Value]]
    notes: List[str] = field(default_factory=list)

    def column(self, header: str) -> List[Value]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_by_key(self, key: Value) -> List[Value]:
        """Row whose first cell equals *key* (KeyError if absent)."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"{self.experiment_id}: no row keyed {key!r}")

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        formatted_rows = []
        for row in self.rows:
            cells = [format_value(cell) for cell in row]
            widths = [max(w, len(c)) for w, c in zip(widths, cells)]
            formatted_rows.append(cells)
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.rjust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for cells in formatted_rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


@dataclass
class FigureResult:
    """A reproduced figure: named series over a shared x axis."""

    experiment_id: str
    title: str
    xlabel: str
    ylabel: str
    series: List[Series]
    notes: List[str] = field(default_factory=list)

    def get(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"{self.experiment_id}: no series {label!r}")

    @property
    def labels(self) -> List[str]:
        return [series.label for series in self.series]

    def as_table(self) -> TableResult:
        """Transpose the series into one column per series."""
        x_values = list(self.series[0].x) if self.series else []
        rows: List[List[Value]] = []
        for i, x_value in enumerate(x_values):
            row: List[Value] = [x_value]
            for series in self.series:
                row.append(series.y[i] if i < len(series.y) else "")
            rows.append(row)
        return TableResult(
            experiment_id=self.experiment_id,
            title=self.title,
            headers=[self.xlabel] + [s.label for s in self.series],
            rows=rows,
            notes=list(self.notes) + [f"ylabel: {self.ylabel}"],
        )

    def render(self) -> str:
        return self.as_table().render()
