"""Table 2-1: test program characteristics.

Reports the reference counts of the synthetic suite in the paper's
layout (dynamic instructions, data references, total, program type),
plus the paper's data/instruction ratio next to the measured one — the
synthetic generators pace data references to hit the published ratio
exactly, so the two columns should agree to within rounding.
"""

from __future__ import annotations

from typing import Optional

from ..traces.registry import get_workload
from .base import TableResult
from .workloads import suite

__all__ = ["run"]

#: Table 2-1's dynamic counts, in millions of references.
PAPER_COUNTS_M = {
    "ccom": (31.5, 14.0, 45.5),
    "grr": (134.2, 59.2, 193.4),
    "yacc": (51.0, 16.7, 67.7),
    "met": (99.4, 50.3, 149.7),
    "linpack": (144.8, 40.7, 185.5),
    "liver": (23.6, 7.4, 31.0),
}


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    rows = []
    total_instr = total_data = 0
    for trace in traces:
        stats = trace.stats()
        spec = get_workload(trace.name)
        paper_instr, paper_data, _ = PAPER_COUNTS_M[trace.name]
        rows.append(
            [
                trace.name,
                stats.instructions,
                stats.data_references,
                stats.total_references,
                round(stats.data_per_instruction, 3),
                round(paper_data / paper_instr, 3),
                spec.program_type,
            ]
        )
        total_instr += stats.instructions
        total_data += stats.data_references
    rows.append(
        [
            "total",
            total_instr,
            total_data,
            total_instr + total_data,
            round(total_data / total_instr, 3) if total_instr else 0.0,
            round(186.3 / 484.5, 3),
            "",
        ]
    )
    return TableResult(
        experiment_id="table_2_1",
        title="Test program characteristics (synthetic suite)",
        headers=[
            "program",
            "dyn. instr.",
            "data refs",
            "total refs",
            "data/instr",
            "paper d/i",
            "program type",
        ],
        rows=rows,
        notes=[
            "paper traces were 23.6M-144.8M instructions; the synthetic suite keeps",
            "the same relative lengths at a Python-friendly scale",
        ],
    )
