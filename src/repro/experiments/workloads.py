"""Shared, cached trace materialization for the experiment modules.

Building and materializing traces takes seconds, so all experiments
share one process-level memoization keyed by *resolved workload spec*:
running "all experiments" (or a grid of engine jobs) builds each trace
exactly once per process, no matter how many experiments or jobs replay
it.  The engine's worker processes use the same cache, so each worker
also materializes each trace at most once and reuses it across every
job it executes.  Any :class:`~repro.specs.workloads.WorkloadSpec` —
registry benchmarks, parameterized patterns, tenant mixes — memoizes
the same way; the historical ``(name, scale, seed)`` entry points
remain as thin wrappers over :class:`NamedWorkloadSpec`.

The registry scale can be overridden globally with the ``REPRO_SCALE``
environment variable (instructions per unit of Table 2-1 relative
length; the default keeps a full figure reproduction in the tens of
seconds).  A malformed or non-positive ``REPRO_SCALE`` raises
:class:`~repro.common.errors.ConfigurationError` — the CLI reports it
with exit code 2 like ``REPRO_JOBS``.

Sharing semantics: the cached :class:`MaterializedTrace` objects are
immutable replay buffers, shared by reference between experiments in the
same process (and, on fork-based platforms, inherited copy-on-write by
engine workers).  A different resolved spec is a different cache entry,
so changing scale, seed, or any pattern parameter always rebuilds.

The memo is a bounded LRU: long heterogeneous sweeps (many scales or
seeds per worker) evict the least recently used trace instead of growing
worker memory without limit.  The cap defaults to holding one full
benchmark suite plus an extension and can be tuned with the
``REPRO_TRACE_CACHE`` environment variable (minimum 1).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import List, Optional

from ..common.errors import ConfigurationError
from ..specs.workloads import NamedWorkloadSpec, WorkloadSpec
from ..traces.registry import BENCHMARK_NAMES
from ..traces.trace import MaterializedTrace

__all__ = [
    "suite",
    "materialized_workload",
    "seed_materialized_workload",
    "materialized_trace",
    "seed_materialized_trace",
    "default_scale",
    "validate_scale",
    "trace_cache_cap",
    "BENCHMARK_NAMES",
]

#: Default cap: the six benchmarks plus extension traces at one scale.
DEFAULT_TRACE_CACHE_CAP = 8

_TRACE_CACHE: "OrderedDict[WorkloadSpec, MaterializedTrace]" = OrderedDict()


def default_scale() -> Optional[int]:
    """Scale override from ``REPRO_SCALE`` (None = registry default).

    Raises :class:`ConfigurationError` for malformed or non-positive
    values instead of leaking a ``ValueError`` traceback from deep
    inside a run.
    """
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return None
    try:
        scale = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_SCALE must be a positive integer, got {raw!r}"
        ) from None
    if scale < 1:
        raise ConfigurationError(f"REPRO_SCALE must be positive, got {scale}")
    return scale


def validate_scale(value: Optional[int]) -> Optional[int]:
    """Validated trace scale from ``--scale`` or ``REPRO_SCALE``.

    ``None`` falls through to :func:`default_scale` (which itself
    validates the environment); explicit non-positive values are
    rejected so the CLI can exit with code 2 like ``--jobs``.
    """
    if value is None:
        return default_scale()
    if value < 1:
        raise ConfigurationError(f"scale must be positive, got {value}")
    return value


def trace_cache_cap() -> int:
    """Trace-memo LRU capacity from ``REPRO_TRACE_CACHE`` (minimum 1)."""
    raw = os.environ.get("REPRO_TRACE_CACHE", "")
    if not raw:
        return DEFAULT_TRACE_CACHE_CAP
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_TRACE_CACHE_CAP


def materialized_workload(spec: WorkloadSpec) -> MaterializedTrace:
    """One materialized trace, memoized per resolved workload spec.

    The memo holds at most :func:`trace_cache_cap` traces, evicting the
    least recently used entry when a new trace would overflow it.
    """
    key = spec.resolve()
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = key.build().materialize()
        cap = trace_cache_cap()
        while len(_TRACE_CACHE) >= cap:
            _TRACE_CACHE.popitem(last=False)
        _TRACE_CACHE[key] = trace
    else:
        _TRACE_CACHE.move_to_end(key)
    return trace


def seed_materialized_workload(spec: WorkloadSpec, trace: MaterializedTrace) -> None:
    """Pre-seed the memo with an already-materialized trace.

    Used by engine worker initializers that receive packed trace buffers
    through shared memory: seeding the memo means later jobs in the
    worker never replay the generator.  Uses the same key resolution
    (:meth:`WorkloadSpec.resolve`) and LRU bound as
    :func:`materialized_workload`.
    """
    key = spec.resolve()
    if key not in _TRACE_CACHE:
        cap = trace_cache_cap()
        while len(_TRACE_CACHE) >= cap:
            _TRACE_CACHE.popitem(last=False)
    _TRACE_CACHE[key] = trace
    _TRACE_CACHE.move_to_end(key)


def materialized_trace(
    name: str, scale: Optional[int] = None, seed: int = 0
) -> MaterializedTrace:
    """One materialized benchmark trace by registry name (compat wrapper)."""
    return materialized_workload(NamedWorkloadSpec(name=name, scale=scale, seed=seed))


def seed_materialized_trace(
    name: str, scale: Optional[int], seed: int, trace: MaterializedTrace
) -> None:
    """Pre-seed the memo by registry name (compat wrapper)."""
    seed_materialized_workload(NamedWorkloadSpec(name=name, scale=scale, seed=seed), trace)


def suite(scale: Optional[int] = None, seed: int = 0) -> List[MaterializedTrace]:
    """The six materialized benchmark traces, memoized per trace."""
    return [materialized_trace(name, scale, seed) for name in BENCHMARK_NAMES]
