"""Shared, cached benchmark suite for the experiment modules.

Building and materializing the six traces takes a couple of seconds, so
experiments share one cached suite per ``(scale, seed)``.  The scale can
be overridden globally with the ``REPRO_SCALE`` environment variable
(instructions per unit of Table 2-1 relative length; the default keeps a
full figure reproduction in the tens of seconds).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..traces.registry import BENCHMARK_NAMES, build_trace
from ..traces.trace import MaterializedTrace

__all__ = ["suite", "default_scale", "BENCHMARK_NAMES"]

_CACHE: Dict[Tuple[Optional[int], int], List[MaterializedTrace]] = {}


def default_scale() -> Optional[int]:
    """Scale override from ``REPRO_SCALE`` (None = registry default)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return None
    return int(raw)


def suite(scale: Optional[int] = None, seed: int = 0) -> List[MaterializedTrace]:
    """The six materialized benchmark traces, cached per (scale, seed)."""
    if scale is None:
        scale = default_scale()
    key = (scale, seed)
    if key not in _CACHE:
        _CACHE[key] = [
            build_trace(name, scale, seed).materialize() for name in BENCHMARK_NAMES
        ]
    return _CACHE[key]
