"""Shared, cached benchmark suite for the experiment modules.

Building and materializing the six traces takes a couple of seconds, so
all experiments share one process-level memoization keyed per
``(name, scale, seed)`` trace: running "all experiments" (or a grid of
engine jobs) builds each trace exactly once per process, no matter how
many experiments or jobs replay it.  The engine's worker processes use
the same cache, so each worker also materializes each trace at most once
and reuses it across every job it executes.

The scale can be overridden globally with the ``REPRO_SCALE``
environment variable (instructions per unit of Table 2-1 relative
length; the default keeps a full figure reproduction in the tens of
seconds).

Sharing semantics: the cached :class:`MaterializedTrace` objects are
immutable replay buffers, shared by reference between experiments in the
same process (and, on fork-based platforms, inherited copy-on-write by
engine workers).  A different ``(name, scale, seed)`` is a different
cache entry, so changing scale or seed always rebuilds.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..traces.registry import BENCHMARK_NAMES, build_trace
from ..traces.trace import MaterializedTrace

__all__ = ["suite", "materialized_trace", "default_scale", "BENCHMARK_NAMES"]

_TRACE_CACHE: Dict[Tuple[str, Optional[int], int], MaterializedTrace] = {}


def default_scale() -> Optional[int]:
    """Scale override from ``REPRO_SCALE`` (None = registry default)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return None
    return int(raw)


def materialized_trace(
    name: str, scale: Optional[int] = None, seed: int = 0
) -> MaterializedTrace:
    """One materialized benchmark trace, memoized per (name, scale, seed)."""
    if scale is None:
        scale = default_scale()
    key = (name, scale, seed)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = _TRACE_CACHE[key] = build_trace(name, scale, seed).materialize()
    return trace


def suite(scale: Optional[int] = None, seed: int = 0) -> List[MaterializedTrace]:
    """The six materialized benchmark traces, memoized per trace."""
    return [materialized_trace(name, scale, seed) for name in BENCHMARK_NAMES]
