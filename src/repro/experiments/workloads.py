"""Shared, cached benchmark suite for the experiment modules.

Building and materializing the six traces takes a couple of seconds, so
all experiments share one process-level memoization keyed per
``(name, scale, seed)`` trace: running "all experiments" (or a grid of
engine jobs) builds each trace exactly once per process, no matter how
many experiments or jobs replay it.  The engine's worker processes use
the same cache, so each worker also materializes each trace at most once
and reuses it across every job it executes.

The scale can be overridden globally with the ``REPRO_SCALE``
environment variable (instructions per unit of Table 2-1 relative
length; the default keeps a full figure reproduction in the tens of
seconds).

Sharing semantics: the cached :class:`MaterializedTrace` objects are
immutable replay buffers, shared by reference between experiments in the
same process (and, on fork-based platforms, inherited copy-on-write by
engine workers).  A different ``(name, scale, seed)`` is a different
cache entry, so changing scale or seed always rebuilds.

The memo is a bounded LRU: long heterogeneous sweeps (many scales or
seeds per worker) evict the least recently used trace instead of growing
worker memory without limit.  The cap defaults to holding one full
benchmark suite plus an extension and can be tuned with the
``REPRO_TRACE_CACHE`` environment variable (minimum 1).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import List, Optional, Tuple

from ..traces.registry import BENCHMARK_NAMES, build_trace
from ..traces.trace import MaterializedTrace

__all__ = [
    "suite",
    "materialized_trace",
    "seed_materialized_trace",
    "default_scale",
    "trace_cache_cap",
    "BENCHMARK_NAMES",
]

#: Default cap: the six benchmarks plus extension traces at one scale.
DEFAULT_TRACE_CACHE_CAP = 8

_TRACE_CACHE: "OrderedDict[Tuple[str, Optional[int], int], MaterializedTrace]" = OrderedDict()


def default_scale() -> Optional[int]:
    """Scale override from ``REPRO_SCALE`` (None = registry default)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return None
    return int(raw)


def trace_cache_cap() -> int:
    """Trace-memo LRU capacity from ``REPRO_TRACE_CACHE`` (minimum 1)."""
    raw = os.environ.get("REPRO_TRACE_CACHE", "")
    if not raw:
        return DEFAULT_TRACE_CACHE_CAP
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_TRACE_CACHE_CAP


def materialized_trace(
    name: str, scale: Optional[int] = None, seed: int = 0
) -> MaterializedTrace:
    """One materialized benchmark trace, memoized per (name, scale, seed).

    The memo holds at most :func:`trace_cache_cap` traces, evicting the
    least recently used entry when a new trace would overflow it.
    """
    if scale is None:
        scale = default_scale()
    key = (name, scale, seed)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = build_trace(name, scale, seed).materialize()
        cap = trace_cache_cap()
        while len(_TRACE_CACHE) >= cap:
            _TRACE_CACHE.popitem(last=False)
        _TRACE_CACHE[key] = trace
    else:
        _TRACE_CACHE.move_to_end(key)
    return trace


def seed_materialized_trace(
    name: str, scale: Optional[int], seed: int, trace: MaterializedTrace
) -> None:
    """Pre-seed the memo with an already-materialized trace.

    Used by engine worker initializers that receive packed trace buffers
    through shared memory: seeding the memo means later jobs in the
    worker never replay the synthetic generator.  Uses the same key
    resolution (``scale=None`` -> ambient default) as
    :func:`materialized_trace`, and the same LRU bound.
    """
    if scale is None:
        scale = default_scale()
    key = (name, scale, seed)
    if key not in _TRACE_CACHE:
        cap = trace_cache_cap()
        while len(_TRACE_CACHE) >= cap:
            _TRACE_CACHE.popitem(last=False)
    _TRACE_CACHE[key] = trace
    _TRACE_CACHE.move_to_end(key)


def suite(scale: Optional[int] = None, seed: int = 0) -> List[MaterializedTrace]:
    """The six materialized benchmark traces, memoized per trace."""
    return [materialized_trace(name, scale, seed) for name in BENCHMARK_NAMES]
