"""Deterministic fault injection for the experiment engine.

Testing a resilience layer against *real* worker crashes, hangs, and
corrupt payloads is flaky by construction, so the engine carries its own
fault harness: a declarative plan that makes the Nth job of a batch fail
in a chosen way for a chosen number of attempts.  The plan travels
through the ``REPRO_FAULT_PLAN`` environment variable, so pool workers —
fork or spawn — inject the same faults the parent would, and tests (plus
the CI chaos job) get bit-reproducible failure schedules.

Plan grammar (comma-separated clauses)::

    ACTION@INDEX[xCOUNT][:SECONDS]

    crash@3        job 3 raises InjectedFault on its first attempt
    crash@3x2      ... on its first two attempts (succeeds on the third)
    kill@5x*       job 5 hard-kills its worker process on every attempt
                   (poisons the pool; in-process execution raises instead)
    hang@2:30      job 2 sleeps 30s before running (trips a --job-timeout)
    corrupt@0      job 0 returns a CorruptPayload instead of its result
    interrupt@4    job 4 raises KeyboardInterrupt (simulated Ctrl-C)

``INDEX`` is the job's submission index within its batch (the order the
jobs were handed to ``run_jobs``), ``COUNT`` is how many attempts the
fault affects (default 1, ``*`` = every attempt), and ``SECONDS`` is the
hang duration (default 30).  A fault that affects attempts ``< COUNT``
composes naturally with the engine's retry loop: ``crash@3x2`` tests
retry-then-succeed, ``crash@3x*`` tests retry exhaustion.

The engine calls :func:`maybe_inject` with ``(index, attempt)`` before
executing each job; with no plan configured the call is one cached
environment check.  Tests may also install a plan in-process via
:func:`set_plan` (serial execution only — workers read the environment).

Serve-scoped actions (PR 10) share the grammar but target the
``repro-serve`` request path instead of engine jobs::

    store_read_fail@0x*     every result-store read raises
    store_write_fail@0x2    the first two result-store writes raise
    slow_sim@0x3:3          the first three cold-sim dispatches sleep 3s
    reject_sim@3x*          every dispatch from the 4th on raises

For serve clauses ``INDEX`` is the first affected *occurrence* of that
operation (0-based, counted per action by the daemon's
:class:`ServeFaults` instance) and ``COUNT`` is how many consecutive
occurrences fire (default 1, ``*`` = forever) — so ``reject_sim@3x*``
reads "from the fourth dispatch onward".  Engine matching
(:func:`maybe_inject`) ignores serve clauses and vice versa, so one
``REPRO_FAULT_PLAN`` can drive both layers at once.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..common.errors import ConfigurationError

__all__ = [
    "ENV_FAULT_PLAN",
    "ACTIONS",
    "SERVE_ACTIONS",
    "FaultClause",
    "FaultPlan",
    "InjectedFault",
    "CorruptPayload",
    "ServeFaults",
    "parse_plan",
    "active_plan",
    "set_plan",
    "maybe_inject",
]

ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

ACTIONS = ("crash", "kill", "hang", "corrupt", "interrupt")

#: Actions matched by the repro-serve request path, never by the engine.
SERVE_ACTIONS = ("store_read_fail", "store_write_fail", "slow_sim", "reject_sim")

#: COUNT value meaning "every attempt".
ALWAYS = -1


class InjectedFault(RuntimeError):
    """A deliberately injected job failure (the harness's 'crash')."""


@dataclass(frozen=True)
class CorruptPayload:
    """Sentinel returned in place of a real result by a ``corrupt`` fault.

    Picklable on purpose: it must survive the trip back from a worker so
    the engine's payload check — not the transport — rejects it.
    """

    index: int


@dataclass(frozen=True)
class FaultClause:
    """One scheduled fault: *action* on job *index* for *count* attempts."""

    action: str
    index: int
    count: int = 1
    seconds: float = 30.0

    def applies(self, index: int, attempt: int) -> bool:
        if index != self.index:
            return False
        return self.count == ALWAYS or attempt < self.count

    def applies_occurrence(self, occurrence: int) -> bool:
        """Serve-clause matching: a window of occurrences, not one job.

        Fires for occurrences ``index`` through ``index + count - 1``
        (``count == *`` leaves the window open-ended).
        """
        if occurrence < self.index:
            return False
        return self.count == ALWAYS or occurrence < self.index + self.count


@dataclass(frozen=True)
class FaultPlan:
    """A parsed fault schedule, matched by (job index, attempt number)."""

    clauses: Tuple[FaultClause, ...]

    def clause_for(
        self, index: int, attempt: int, actions: Tuple[str, ...] = ACTIONS
    ) -> Optional[FaultClause]:
        for clause in self.clauses:
            if clause.action in actions and clause.applies(index, attempt):
                return clause
        return None

    def serve_clause(self, action: str, occurrence: int) -> Optional[FaultClause]:
        """The serve clause firing for the Nth *occurrence* of *action*."""
        for clause in self.clauses:
            if clause.action == action and clause.applies_occurrence(occurrence):
                return clause
        return None


def parse_plan(text: str) -> FaultPlan:
    """Parse ``ACTION@INDEX[xCOUNT][:SECONDS]`` clauses into a plan."""
    clauses = []
    for raw_clause in text.split(","):
        raw_clause = raw_clause.strip()
        if not raw_clause:
            continue
        action, sep, rest = raw_clause.partition("@")
        if not sep or action not in ACTIONS + SERVE_ACTIONS:
            raise ConfigurationError(
                f"fault clause {raw_clause!r}: expected ACTION@INDEX with "
                f"ACTION one of {', '.join(ACTIONS + SERVE_ACTIONS)}"
            )
        seconds = 30.0
        if ":" in rest:
            rest, _, raw_seconds = rest.partition(":")
            try:
                seconds = float(raw_seconds)
            except ValueError:
                raise ConfigurationError(
                    f"fault clause {raw_clause!r}: bad duration {raw_seconds!r}"
                ) from None
        count = 1
        if "x" in rest:
            rest, _, raw_count = rest.partition("x")
            if raw_count == "*":
                count = ALWAYS
            else:
                try:
                    count = int(raw_count)
                except ValueError:
                    raise ConfigurationError(
                        f"fault clause {raw_clause!r}: bad count {raw_count!r}"
                    ) from None
                if count < 1:
                    raise ConfigurationError(
                        f"fault clause {raw_clause!r}: count must be at least 1"
                    )
        try:
            index = int(rest)
        except ValueError:
            raise ConfigurationError(
                f"fault clause {raw_clause!r}: bad job index {rest!r}"
            ) from None
        if index < 0:
            raise ConfigurationError(f"fault clause {raw_clause!r}: index must be >= 0")
        clauses.append(FaultClause(action, index, count, seconds))
    return FaultPlan(tuple(clauses))


# -- the active plan ----------------------------------------------------------

_OVERRIDE: Optional[FaultPlan] = None
#: (env text, parsed plan) cache so the per-job check stays one dict read.
_PARSED: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def set_plan(plan) -> Optional[FaultPlan]:
    """Install a process-local plan (a FaultPlan, a spec string, or None).

    Test-only hook: worker processes never see it — use the
    ``REPRO_FAULT_PLAN`` environment variable to reach a pool.
    """
    global _OVERRIDE
    if plan is None:
        _OVERRIDE = None
    elif isinstance(plan, FaultPlan):
        _OVERRIDE = plan
    else:
        _OVERRIDE = parse_plan(str(plan))
    return _OVERRIDE


def active_plan() -> Optional[FaultPlan]:
    """The in-process override, else the plan from ``REPRO_FAULT_PLAN``."""
    global _PARSED
    if _OVERRIDE is not None:
        return _OVERRIDE
    text = os.environ.get(ENV_FAULT_PLAN, "")
    if not text:
        return None
    if text != _PARSED[0]:
        _PARSED = (text, parse_plan(text))
    return _PARSED[1]


def _in_worker_process() -> bool:
    import multiprocessing

    return multiprocessing.parent_process() is not None


def maybe_inject(index: int, attempt: int) -> Optional[CorruptPayload]:
    """Fire the scheduled fault for (job *index*, *attempt*), if any.

    ``crash`` raises :class:`InjectedFault`; ``kill`` hard-exits the
    worker process (raises in-process, where ``os._exit`` would take the
    whole run down); ``hang`` sleeps, relying on the job timeout to cut
    it short; ``corrupt`` returns a :class:`CorruptPayload` the engine
    must reject; ``interrupt`` raises ``KeyboardInterrupt``.  Returns
    None when no fault applies (the overwhelmingly common case).
    """
    plan = active_plan()
    if plan is None:
        return None
    clause = plan.clause_for(index, attempt)
    if clause is None:
        return None
    if clause.action == "crash":
        raise InjectedFault(f"injected crash: job {index}, attempt {attempt}")
    if clause.action == "kill":
        if _in_worker_process():
            os._exit(86)
        raise InjectedFault(f"injected kill (in-process): job {index}, attempt {attempt}")
    if clause.action == "hang":
        time.sleep(clause.seconds)
        return None
    if clause.action == "interrupt":
        raise KeyboardInterrupt(f"injected interrupt: job {index}, attempt {attempt}")
    return CorruptPayload(index)


class ServeFaults:
    """Occurrence-counting view of the active plan for serve actions.

    One instance lives inside each :class:`~repro.serve.service.AdvisorService`;
    every store read/write and cold-sim dispatch calls :meth:`fire` with
    its action name, and the instance keeps a per-action occurrence
    counter so clauses like ``reject_sim@3x*`` match deterministically.
    Occurrences only advance while a plan is active, so enabling a plan
    mid-session starts the schedule at occurrence 0.
    """

    def __init__(self) -> None:
        self._seen: Dict[str, int] = {}

    def fire(self, action: str) -> Optional[FaultClause]:
        """The clause firing for this occurrence of *action*, if any."""
        if action not in SERVE_ACTIONS:
            raise ValueError(f"not a serve fault action: {action!r}")
        plan = active_plan()
        if plan is None:
            return None
        occurrence = self._seen.get(action, 0)
        self._seen[action] = occurrence + 1
        return plan.serve_clause(action, occurrence)
