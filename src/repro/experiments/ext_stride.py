"""§5 extension: non-unit and mixed stride access patterns.

The paper's §4.1 caveat — "if an array is accessed in the non-unit-
stride direction ... a stream buffer as presented here will be of little
benefit" — and its §5 future-work item are answered together: the
*matcol* extension workload walks a row-major matrix down its columns
(and mixes strides), and the stride-detecting stream buffer of
:mod:`repro.buffers.stride` is compared against the paper's sequential
buffers on it and, as a no-regression check, on the paper's own
unit-stride suite.
"""

from __future__ import annotations

from typing import Optional

from ..buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from ..buffers.stride import MultiWayStrideBuffer, StrideStreamBuffer
from ..common.config import CacheConfig
from ..common.stats import percent
from ..traces.registry import build_trace
from .base import TableResult
from .runner import run_level
from .workloads import suite

__all__ = ["run"]

CONFIG = CacheConfig(4096, 16)

_BUFFERS = [
    ("seq 1-way", lambda: StreamBuffer(4)),
    ("seq 4-way", lambda: MultiWayStreamBuffer(4, 4)),
    ("stride 1-way", lambda: StrideStreamBuffer(4)),
    ("stride 4-way", lambda: MultiWayStrideBuffer(4, 4)),
]


def _row(name: str, addresses) -> list:
    baseline = run_level(addresses, CONFIG)
    row: list = [name, baseline.misses]
    for _, make in _BUFFERS:
        result = run_level(addresses, CONFIG, make())
        row.append(round(percent(result.removed, baseline.misses), 1))
    return row


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    matcol_scale = scale if scale is not None else 60_000
    matcol = build_trace("matcol", matcol_scale, seed).materialize()
    rows = [_row("matcol (non-unit)", matcol.data_addresses)]
    for trace in traces:
        rows.append(_row(trace.name, trace.data_addresses))
    return TableResult(
        experiment_id="ext_stride",
        title="Extension (SS5): stride-detecting vs. sequential stream buffers, data side",
        headers=["program", "D misses"] + [f"{label} %rm" for label, _ in _BUFFERS],
        rows=rows,
        notes=[
            "matcol walks a row-major matrix by columns: sequential buffers see",
            "nothing sequential, stride detection recovers nearly all of it;",
            "on the paper's unit-stride suite the stride buffer is a near no-op change",
        ],
    )
