"""§5 extension: multiprogramming workloads.

The paper closes §5 with "the performance of victim caching and stream
buffers need[s] to be investigated for operating system execution and
for multiprogramming workloads", and Table 2-1's caption concedes "the
effects of multiprogramming have not been modeled in this work".

This experiment models the classic mechanism: several programs time-
share one processor, context-switching every *quantum* instructions.
Each process keeps its own (disjoint) address space, but they share the
physical caches, so every switch lets the incoming process evict the
outgoing one's working set.  Reported per quantum:

* the baseline data miss-rate inflation relative to running alone;
* how much a 4-entry victim cache and a 4-way stream buffer still
  remove — the paper's structures are *small*, so switches wipe them
  almost for free (they refill in a handful of misses), whereas the
  direct-mapped array pays the full re-warm cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..buffers.base import CompositeAugmentation
from ..buffers.stream_buffer import MultiWayStreamBuffer
from ..buffers.victim_cache import VictimCache
from ..common.config import CacheConfig
from ..common.stats import percent, safe_div
from ..traces.trace import MaterializedTrace
from .base import TableResult
from .runner import run_level
from .workloads import suite

__all__ = ["run", "interleave_processes", "QUANTA"]

CONFIG = CacheConfig(4096, 16)
QUANTA = [500, 2000, 10000]
#: Distinct high bits per process keep address spaces disjoint while
#: leaving cache index behaviour untouched.
_ASID_STRIDE = 1 << 40


def interleave_processes(
    streams: Sequence[List[int]], quantum: int
) -> List[int]:
    """Round-robin *quantum*-reference time slices of several processes.

    Each process's addresses are offset into a private address space
    (distinct ASID), the way distinct virtual address spaces land in one
    physically-indexed cache.  Processes that run out of references drop
    out; the schedule continues until all are drained.
    """
    cursors = [0] * len(streams)
    out: List[int] = []
    live = True
    while live:
        live = False
        for pid, stream in enumerate(streams):
            cursor = cursors[pid]
            if cursor >= len(stream):
                continue
            live = True
            chunk = stream[cursor : cursor + quantum]
            base = pid * _ASID_STRIDE
            out.extend(base + address for address in chunk)
            cursors[pid] = cursor + quantum
    return out


def _standalone_miss_rate(traces) -> float:
    misses = 0
    accesses = 0
    for trace in traces:
        run = run_level(trace.data_addresses, CONFIG)
        misses += run.misses
        accesses += run.stats.accesses
    return safe_div(misses, accesses)


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    # Three-way multiprogramming mix: compiler + CAD + numeric, the
    # classic timesharing blend.
    mix: List[MaterializedTrace] = [
        next(t for t in traces if t.name == "ccom"),
        next(t for t in traces if t.name == "met"),
        next(t for t in traces if t.name == "liver"),
    ]
    streams = [t.data_addresses for t in mix]
    alone = _standalone_miss_rate(mix)
    rows = []
    for quantum in QUANTA:
        interleaved = interleave_processes(streams, quantum)
        base = run_level(interleaved, CONFIG)
        base_rate = base.stats.miss_rate
        victim = VictimCache(4)
        stream_buffer = MultiWayStreamBuffer(4, 4)
        helped = run_level(
            interleaved, CONFIG, CompositeAugmentation([victim, stream_buffer])
        )
        rows.append(
            [
                quantum,
                round(base_rate, 4),
                round(base_rate / alone, 2),
                round(percent(victim.hits, helped.misses), 1),
                round(percent(stream_buffer.hits, helped.misses), 1),
                round(percent(helped.removed, helped.misses), 1),
            ]
        )
    rows.append(
        ["alone", round(alone, 4), 1.0, "", "", ""]
    )
    return TableResult(
        experiment_id="ext_multiprog",
        title="Extension (SS5): multiprogramming (ccom+met+liver share the D-cache)",
        headers=[
            "quantum (refs)",
            "D miss rate",
            "x standalone",
            "VC4 removed %",
            "4-way SB removed %",
            "total removed %",
        ],
        rows=rows,
        notes=[
            "context switches inflate the baseline miss rate (cold restarts);",
            "the helper structures refill in a few misses, so their benefit",
            "survives multiprogramming far better than the cache's warmth does",
        ],
    )
