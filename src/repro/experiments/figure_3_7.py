"""Figure 3-7: victim cache performance vs. data cache line size.

Average percent of data conflict misses removed by 1/2/4/15-entry victim
caches behind a 4KB data cache as the line size grows from 8B to 256B,
plus the conflict share of misses at each line size.  Paper landmarks:
longer lines mean more conflict misses, and an increasing share of them
is removable by the victim cache — systems with victim caches benefit
more from long lines than systems without.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.config import CacheConfig
from ..common.stats import safe_div
from .base import FigureResult, Series
from .sweeps import victim_cache_sweep
from .workloads import suite

__all__ = ["run", "LINE_SIZES", "VC_ENTRIES"]

LINE_SIZES = [8, 16, 32, 64, 128, 256]
VC_ENTRIES = [1, 2, 4, 15]
CACHE_BYTES = 4096


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> FigureResult:
    traces = traces if traces is not None else suite(scale, seed)
    removal_curves: List[List[float]] = [[] for _ in VC_ENTRIES]
    conflict_percent: List[float] = []
    for line_size in LINE_SIZES:
        config = CacheConfig(CACHE_BYTES, line_size)
        per_entry: List[List[float]] = [[] for _ in VC_ENTRIES]
        conflict_shares: List[float] = []
        for trace in traces:
            sweep = victim_cache_sweep(trace.data_addresses, config, max(VC_ENTRIES))
            if sweep.conflict_misses == 0:
                continue
            for slot, entries in enumerate(VC_ENTRIES):
                per_entry[slot].append(sweep.percent_of_conflicts_removed(entries))
            conflict_shares.append(100.0 * safe_div(sweep.conflict_misses, sweep.total_misses))
        for slot in range(len(VC_ENTRIES)):
            values = per_entry[slot]
            removal_curves[slot].append(sum(values) / len(values) if values else 0.0)
        conflict_percent.append(
            sum(conflict_shares) / len(conflict_shares) if conflict_shares else 0.0
        )
    series = [
        Series(f"{entries}-entry victim cache", LINE_SIZES, removal_curves[slot])
        for slot, entries in enumerate(VC_ENTRIES)
    ]
    series.append(Series("percent conflict misses", LINE_SIZES, conflict_percent))
    return FigureResult(
        experiment_id="figure_3_7",
        title="Victim cache performance vs. data cache line size (4KB cache)",
        xlabel="line size (bytes)",
        ylabel="percent of conflict misses removed (avg over benchmarks)",
        series=series,
        notes=[
            "paper: conflict misses rise with line size and a rising share of them",
            "is removable by the victim cache",
        ],
    )
