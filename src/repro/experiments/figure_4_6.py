"""Figure 4-6: stream buffer performance vs. cache size.

Average percent of misses removed by single and four-way stream buffers
(16-byte lines) as the backing cache grows from 1KB to 128KB, for both
sides.  Paper landmarks: instruction-side removal is remarkably flat
across cache sizes; single-buffer data-side removal *improves* with
cache size (from ~15% at 1KB to ~35% at 128KB) because bigger caches
absorb the scattered traffic, leaving the long sequential streams as the
surviving misses.
"""

from __future__ import annotations

from typing import List, Optional

from ..buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from ..common.config import CacheConfig
from .base import FigureResult, Series
from .runner import run_level
from .workloads import suite

__all__ = ["run", "CACHE_SIZES_KB"]

CACHE_SIZES_KB = [1, 2, 4, 8, 16, 32, 64, 128]


def _average_removal(traces, side: str, config: CacheConfig, make_buffer) -> float:
    percents: List[float] = []
    for trace in traces:
        stream = trace.stream(side)
        run = run_level(stream, config, make_buffer())
        if run.misses == 0:
            continue
        percents.append(100.0 * run.removed / run.misses)
    return sum(percents) / len(percents) if percents else 0.0


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> FigureResult:
    traces = traces if traces is not None else suite(scale, seed)
    curves = {
        "single, I-cache": [],
        "single, D-cache": [],
        "4-way, I-cache": [],
        "4-way, D-cache": [],
    }
    for size_kb in CACHE_SIZES_KB:
        config = CacheConfig(size_kb * 1024, 16)
        curves["single, I-cache"].append(
            _average_removal(traces, "i", config, lambda: StreamBuffer(4))
        )
        curves["single, D-cache"].append(
            _average_removal(traces, "d", config, lambda: StreamBuffer(4))
        )
        curves["4-way, I-cache"].append(
            _average_removal(traces, "i", config, lambda: MultiWayStreamBuffer(4, 4))
        )
        curves["4-way, D-cache"].append(
            _average_removal(traces, "d", config, lambda: MultiWayStreamBuffer(4, 4))
        )
    return FigureResult(
        experiment_id="figure_4_6",
        title="Stream buffer performance vs. cache size (16B lines)",
        xlabel="cache size (KB)",
        ylabel="percent of misses removed (avg over benchmarks)",
        series=[Series(label, CACHE_SIZES_KB, values) for label, values in curves.items()],
        notes=[
            "paper: I-side flat across sizes; single-buffer D-side improves with size",
            "(15% at 1KB to 35% at 128KB)",
        ],
    )
