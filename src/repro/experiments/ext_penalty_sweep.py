"""Table 1-1 meets Figure 5-1: speedup vs. miss cost.

The paper's opening argument is a trend: miss cost grew from 0.6
instruction times (VAX 11/780) to a projected 140+, so "the greatest
leverage on system performance will be obtained by improving the memory
hierarchy" (§2).  This experiment closes the loop by running the §5
improved system across that whole trend — scaling the L1/L2 miss
penalties from VAX-era to the paper's baseline and beyond — and
reporting the average speedup the victim cache + stream buffers buy at
each point.

At sub-instruction miss costs the structures are pointless; at the
paper's 24/320 they roughly double performance; at the projected
140-instruction-class costs they are worth ~3x.  The trend *is* the
paper's thesis.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..common.config import baseline_system
from ..hierarchy.performance import evaluate_performance
from .base import TableResult
from .figure_5_1 import improved_augmentations
from .runner import run_system
from .workloads import suite

__all__ = ["run", "PENALTY_POINTS"]

#: (label, l1 penalty, l2 penalty) — the Table 1-1 trajectory mapped
#: onto the baseline's two-level hierarchy (L2 at the baseline's
#: 320/24 ratio, rounded).
PENALTY_POINTS = [
    ("VAX-class", 1, 8),
    ("Titan-class", 6, 80),
    ("half baseline", 12, 160),
    ("paper baseline", 24, 320),
    ("double baseline", 48, 640),
    ("projected '?'", 96, 1280),
]


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    # Miss counts do not depend on the penalties, so simulate once per
    # benchmark and re-price the same results at every penalty point.
    results = []
    for trace in traces:
        base_result = run_system(trace, prewarm_l2=True)
        iaug, daug = improved_augmentations()
        improved_result = run_system(
            trace, iaugmentation=iaug, daugmentation=daug, prewarm_l2=True
        )
        results.append((base_result, improved_result))
    rows = []
    for label, l1_penalty, l2_penalty in PENALTY_POINTS:
        timing = replace(
            baseline_system().timing,
            l1_miss_penalty=l1_penalty,
            l2_miss_penalty=l2_penalty,
        )
        speedups = []
        base_potentials = []
        for base_result, improved_result in results:
            base_perf = evaluate_performance(base_result, timing)
            improved_perf = evaluate_performance(improved_result, timing)
            speedups.append(improved_perf.speedup_over(base_perf))
            base_potentials.append(base_perf.percent_of_potential)
        rows.append(
            [
                label,
                l1_penalty,
                l2_penalty,
                round(sum(base_potentials) / len(base_potentials), 1),
                round(sum(speedups) / len(speedups), 2),
            ]
        )
    return TableResult(
        experiment_id="ext_penalty_sweep",
        title="Table 1-1 meets Figure 5-1: improved-system speedup vs. miss cost",
        headers=[
            "era",
            "L1 penalty",
            "L2 penalty",
            "baseline % potential (avg)",
            "avg speedup",
        ],
        rows=rows,
        notes=[
            "same miss counts re-priced at each penalty point; the structures'",
            "value grows with miss cost - the paper's opening argument, closed",
        ],
    )
