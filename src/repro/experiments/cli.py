"""Command-line entry point: reproduce the paper's tables and figures.

Usage::

    repro-experiments                    # run everything
    repro-experiments figure_3_5 ...     # run selected experiments
    repro-experiments --list             # list experiment ids
    repro-experiments --scale 30000      # smaller/larger traces
    repro-experiments --jobs 4           # fan experiments over 4 workers
    repro-experiments --jobs 4 --progress --emit-metrics runs.jsonl
    repro-experiments --workload zipfian --workload tenant_mix
    repro-experiments --workload '{"kind": "zipfian", "alpha": 1.1}'

``--workload SPEC`` (repeatable) drives workload-aware experiments with
declarative workload specs: inline kind-tagged JSON, a preset name
(``zipfian``, ``hotspot``, ``bursty``, ``pointer_chase``,
``sequential``, ``uniform``, ``tenant_mix``), or a registry benchmark
name.  With no experiment ids it runs ``ext_modern_workloads``; naming
an experiment that does not accept workloads exits with status 2.  The
specs are embedded (replayably) in ``--emit-metrics`` run records.

The scale flag (or the REPRO_SCALE environment variable) sets the
instruction count per unit of Table 2-1 relative trace length; a
malformed or non-positive value — flag or environment — exits with
status 2 instead of leaking a traceback.  The
jobs flag (or REPRO_JOBS) sets the worker-process count; the default of
1 runs everything serially in this process, and any higher count
produces identical rendered output in whatever order the experiments
were selected.  ``--jobs 0`` (or a malformed ``REPRO_JOBS``) is
rejected with a clear error instead of being silently clamped.

``--emit-metrics PATH`` appends one JSON Lines run record per executed
experiment (see :mod:`repro.telemetry.record` for the schema): wall
time, references/sec, aggregated L1/L2 counters (serial runs), the
engine's job batches and serial-fallback reasons, and result-store
traffic when a store is active.  ``--progress`` prints parallel-engine
heartbeats to stderr.

``--result-store DIR`` (or the ``REPRO_RESULT_STORE`` environment
variable) activates the content-addressed result store: every engine
simulation point is looked up before running and saved after, so a
repeated invocation re-simulates nothing and still prints row-for-row
identical output.  ``repro-experiments store {stats|gc|clear}``
inspects or cleans the store.

``--backend {auto,python,numpy}`` (or the ``REPRO_BACKEND`` environment
variable) selects the simulation kernel backend: ``auto`` (the default)
runs qualifying structure-free points on the vectorized numpy kernel
when numpy is installed, ``python`` forces the reference interpreter
everywhere, and ``numpy`` asks for the kernel explicitly (stateful
structures still fall back to the interpreter — never an error).
Malformed values exit with status 2 like ``--jobs 0`` does.

Resilience flags: ``--job-timeout SECONDS`` (or ``REPRO_JOB_TIMEOUT``)
bounds each engine job's wall clock, ``--retries N`` (or
``REPRO_RETRIES``, default 2) re-runs transient failures with
exponential backoff, and ``--resume`` re-runs an interrupted invocation
against its result store — completed points are served from the store
(the engine flushes each result as it completes), so only unfinished
work simulates.  ``--resume`` requires a configured result store and is
rejected otherwise; malformed or non-positive timeout/retry values exit
with status 2 like ``--jobs 0`` does.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..common.config import baseline_system
from ..common.errors import ConfigurationError
from ..specs import SystemSpec
from ..telemetry import core as telemetry
from ..telemetry.record import append_record, build_run_record
from . import ALL_EXPERIMENTS
from .base import FigureResult
from .plotting import plot_figure
from .workloads import suite


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of Jouppi's victim-cache paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids to run (default: all); see --list",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="instructions per unit of relative trace length (default: registry default)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload generator seed")
    parser.add_argument(
        "--workload",
        metavar="SPEC",
        action="append",
        default=None,
        help=(
            "drive workload-aware experiments with this workload: inline "
            "workload-spec JSON ('{\"kind\": \"zipfian\", ...}'), a preset "
            "name (zipfian, hotspot, bursty, pointer_chase, sequential, "
            "uniform, tenant_mix), or a registry benchmark name; repeatable "
            "(default experiment: ext_modern_workloads)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for running experiments (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="also draw figures as ASCII charts (average series only)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="evaluate the paper's shape claims against a live run and exit",
    )
    parser.add_argument(
        "--report",
        metavar="FILE",
        default=None,
        help="write a Markdown report of the selected experiments to FILE",
    )
    parser.add_argument(
        "--emit-metrics",
        metavar="PATH",
        default=None,
        help="append one JSON Lines run record per executed experiment to PATH",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print parallel-engine heartbeat lines to stderr",
    )
    parser.add_argument(
        "--result-store",
        metavar="DIR",
        default=None,
        help=(
            "activate the content-addressed result store rooted at DIR "
            "(default: $REPRO_RESULT_STORE, unset = off)"
        ),
    )
    parser.add_argument(
        "--backend",
        metavar="BACKEND",
        default=None,
        help=(
            "simulation kernel backend: auto, python, or numpy "
            "(default: REPRO_BACKEND or auto)"
        ),
    )
    parser.add_argument(
        "--job-timeout",
        metavar="SECONDS",
        type=float,
        default=None,
        help=(
            "wall-clock ceiling per engine job; a timed-out job is retried, "
            "then failed (default: REPRO_JOB_TIMEOUT or unbounded)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help=(
            "re-run attempts per failed engine job, with exponential "
            "backoff (default: REPRO_RETRIES or 2)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue an interrupted run from the result store: completed "
            "points are served from the store, only unfinished work "
            "simulates (requires --result-store or $REPRO_RESULT_STORE)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiments and args.experiments[0] == "store":
        # Maintenance subcommand: repro-experiments store {stats|gc|clear}.
        from ..store.cli import run_store_command

        store_argv = args.experiments[1:]
        if args.result_store:
            store_argv += ["--result-store", args.result_store]
        return run_store_command(store_argv)
    if args.result_store:
        # Set via the environment so engine worker processes (fork or
        # spawn) resolve the same store.
        from ..store import set_store

        set_store(args.result_store)
    from ..kernels import ENV_BACKEND, validate_backend
    from .engine import (
        ENV_JOB_TIMEOUT,
        ENV_RETRIES,
        validate_job_timeout,
        validate_retries,
    )

    from ..specs import parse_workload
    from .workloads import validate_scale

    try:
        job_timeout = validate_job_timeout(args.job_timeout)
        retries = validate_retries(args.retries)
        backend = None if args.backend is None else validate_backend(args.backend)
        validate_scale(args.scale)
        workload_specs = (
            None
            if args.workload is None
            else [parse_workload(text) for text in args.workload]
        )
    except ConfigurationError as exc:
        print(f"repro-experiments: {exc}", file=sys.stderr)
        return 2
    # Resilience and backend knobs travel through the environment so
    # every nested run_jobs call — including those inside pool workers —
    # sees them.
    if args.job_timeout is not None:
        os.environ[ENV_JOB_TIMEOUT] = str(job_timeout)
    if args.retries is not None:
        os.environ[ENV_RETRIES] = str(retries)
    if backend is not None:
        os.environ[ENV_BACKEND] = backend
    if args.resume:
        from ..store import current_store

        if current_store() is None:
            print(
                "repro-experiments: --resume requires a result store "
                "(pass --result-store DIR or set $REPRO_RESULT_STORE)",
                file=sys.stderr,
            )
            return 2
    if args.list:
        for name in ALL_EXPERIMENTS:
            print(name)
        return 0
    if args.check:
        from .checks import render_outcomes, run_checks

        outcomes = run_checks(scale=args.scale, seed=args.seed)
        print(render_outcomes(outcomes))
        return 0 if all(o.passed for o in outcomes) else 1
    if workload_specs is not None:
        # Workload-driven runs default to the experiment built for them.
        selected = args.experiments or ["ext_modern_workloads"]
    else:
        selected = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print("use --list to see available ids", file=sys.stderr)
        return 2
    if workload_specs is not None:
        import inspect

        incompatible = [
            name
            for name in selected
            if "workloads" not in inspect.signature(ALL_EXPERIMENTS[name]).parameters
        ]
        if incompatible:
            print(
                "repro-experiments: --workload is not supported by: "
                f"{', '.join(incompatible)} (these experiments replay the "
                "paper's benchmark suite)",
                file=sys.stderr,
            )
            return 2
    from .engine import run_experiments, validate_jobs

    try:
        jobs = validate_jobs(args.jobs)
    except ConfigurationError as exc:
        print(f"repro-experiments: {exc}", file=sys.stderr)
        return 2
    if args.report:
        # Reports render from one shared suite; keep them serial.
        from .report import write_report

        path = write_report(
            args.report,
            selected,
            traces=suite(args.scale, args.seed),
            scale=args.scale,
            seed=args.seed,
        )
        print(f"wrote report to {path}")
        return 0
    emit = args.emit_metrics
    progress = _heartbeat_printer if args.progress else None
    if workload_specs is not None and jobs > 1:
        # Workload-driven experiments fan out *internally* (their jobs
        # carry full workload specs through run_jobs); propagate the
        # worker count through the environment the engine resolves.
        os.environ["REPRO_JOBS"] = str(jobs)
    if jobs > 1 and workload_specs is None:
        # Fan out over the engine; outcomes come back in selection order
        # with per-experiment wall time measured inside the worker.  One
        # telemetry scope covers the whole batch: the simulations run in
        # workers, so the records carry timing plus the shared engine
        # section (job batches, serial-fallback reasons), not counters.
        scope = telemetry.activate() if emit else None
        try:
            outcomes = run_experiments(
                selected, scale=args.scale, seed=args.seed, jobs=jobs, progress=progress
            )
        finally:
            if scope is not None:
                telemetry.deactivate()
        for outcome in outcomes:
            _print_result(outcome.name, outcome.result, outcome.elapsed, args.plot)
            if scope is not None:
                _emit_record(emit, scope, outcome.name, outcome.elapsed, jobs, args)
        return 0
    # Materialize the shared suite once so per-experiment times are
    # honest; workload-driven runs build their own traces instead.
    traces = None if workload_specs is not None else suite(args.scale, args.seed)
    for name in selected:
        started = time.time()
        # One scope per experiment: serial runs report their simulation
        # counters into it, so each record is self-contained.
        scope = telemetry.activate() if emit else None
        try:
            kwargs = dict(traces=traces, scale=args.scale, seed=args.seed)
            if workload_specs is not None:
                kwargs["workloads"] = workload_specs
            result = ALL_EXPERIMENTS[name](**kwargs)
        finally:
            if scope is not None:
                telemetry.deactivate()
        elapsed = time.time() - started
        _print_result(name, result, elapsed, args.plot)
        if scope is not None:
            _emit_record(emit, scope, name, elapsed, jobs, args, workloads=workload_specs)
    return 0


def _heartbeat_printer(update) -> None:
    print(f"[engine] {update}", file=sys.stderr, flush=True)


def _emit_record(
    path: str, scope, name: str, elapsed: float, jobs: int, args, workloads=None
) -> None:
    # Experiments span many traces, so the embedded spec is config-only
    # (trace=None): it still pins geometry/timing and hashes canonically.
    # Explicit --workload specs are embedded in replayable form.
    record = build_run_record(
        scope,
        run=name,
        config=baseline_system(),
        wall_time_s=elapsed,
        jobs=jobs,
        scale=args.scale,
        seed=args.seed,
        spec=SystemSpec(trace=None, config=baseline_system()),
        workloads=workloads,
    )
    append_record(path, record)


def _print_result(name: str, result, elapsed: float, plot: bool) -> None:
    print(result.render())
    if plot and isinstance(result, FigureResult):
        print()
        print(plot_figure(result))
    print(f"[{name} in {elapsed:.1f}s]")
    print()


if __name__ == "__main__":
    sys.exit(main())
