"""§3.1's area argument: misses removed per bit of storage.

The paper justifies the miss cache with marginal utility: "since
doubling the data cache size results in a 32% reduction in misses ...
each additional line in the first level cache reduces the number of
misses by approximately 0.13%.  Although the miss cache requires more
area per bit of storage than lines in the data cache, each line in a
two line miss cache effects a 50 times larger marginal improvement in
the miss rate."

This experiment redoes that arithmetic on the synthetic suite: the
suite-average percent-miss reduction per *line of storage* for (a)
growing the data cache 4KB → 8KB (256 extra lines), (b) each entry of a
miss cache, and (c) each entry of a victim cache — and the resulting
"times larger marginal improvement" ratio the paper quotes as ~50x.
"""

from __future__ import annotations

from typing import Optional

from ..common.config import CacheConfig
from ..common.stats import average_percent_reduction
from .base import TableResult
from .runner import run_level
from .sweeps import miss_cache_sweep, victim_cache_sweep
from .workloads import suite

__all__ = ["run"]

SMALL = CacheConfig(4096, 16)
BIG = CacheConfig(8192, 16)


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    doubling_pairs = []
    mc_sweeps = {}
    vc_sweeps = {}
    for trace in traces:
        addresses = trace.data_addresses
        small_misses = run_level(addresses, SMALL).misses
        big_misses = run_level(addresses, BIG).misses
        doubling_pairs.append((small_misses, big_misses))
        mc_sweeps[trace.name] = miss_cache_sweep(addresses, SMALL, max_entries=4)
        vc_sweeps[trace.name] = victim_cache_sweep(addresses, SMALL, max_entries=4)

    doubling_reduction = average_percent_reduction(doubling_pairs)
    extra_lines = BIG.num_lines - SMALL.num_lines
    per_cache_line = doubling_reduction / extra_lines

    rows = [
        [
            "double cache 4KB->8KB",
            extra_lines,
            round(doubling_reduction, 1),
            round(per_cache_line, 4),
            1.0,
        ]
    ]
    for label, sweeps in (("miss cache", mc_sweeps), ("victim cache", vc_sweeps)):
        for entries in (1, 2, 4):
            pairs = [
                (sweep.total_misses, sweep.total_misses - sweep.removed(entries))
                for sweep in sweeps.values()
            ]
            reduction = average_percent_reduction(pairs)
            per_line = reduction / entries
            rows.append(
                [
                    f"{label}, {entries} entr.",
                    entries,
                    round(reduction, 1),
                    round(per_line, 4),
                    round(per_line / per_cache_line, 1),
                ]
            )
    return TableResult(
        experiment_id="ext_marginal_utility",
        title="SS3.1's area argument: percent-miss reduction per line of storage (data side)",
        headers=[
            "option",
            "lines added",
            "avg % miss reduction",
            "% per line",
            "x cache line",
        ],
        rows=rows,
        notes=[
            "paper: doubling 4KB->8KB removes 32% of misses (~0.13% per line),",
            "while each of two miss-cache lines is worth ~50x a plain cache line;",
            "the ratio column reproduces that marginal-utility comparison",
        ],
    )
