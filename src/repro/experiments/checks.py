"""Runtime shape checks: does this run reproduce the paper's claims?

``repro-experiments --check`` evaluates the DESIGN.md §4 shape targets
against a live run of the suite and prints PASS/FAIL per claim — the
release-artifact twin of ``tests/test_paper_claims.py`` (which pins the
same claims in CI).  Each check carries the paper's sentence it
verifies, so a failing check names exactly which published result the
current configuration breaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..buffers.base import CompositeAugmentation
from ..buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from ..buffers.victim_cache import VictimCache
from ..common.config import CacheConfig
from ..common.stats import percent, safe_div
from .runner import run_level
from .sweeps import miss_cache_sweep, victim_cache_sweep
from .workloads import suite

__all__ = ["ShapeCheck", "CheckOutcome", "run_checks", "render_outcomes"]

CONFIG = CacheConfig(4096, 16)


@dataclass(frozen=True)
class ShapeCheck:
    """One verifiable claim: identity, the paper's wording, a predicate."""

    check_id: str
    claim: str
    predicate: Callable[[Dict], bool]
    detail: Callable[[Dict], str]


@dataclass
class CheckOutcome:
    check: ShapeCheck
    passed: bool
    detail: str


def _average(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _measurements(traces) -> Dict:
    """One pass of everything the checks need."""
    data: Dict = {"vc": {}, "mc": {}}
    for trace in traces:
        addresses = trace.data_addresses
        data["vc"][trace.name] = victim_cache_sweep(addresses, CONFIG)
        data["mc"][trace.name] = miss_cache_sweep(addresses, CONFIG)
    for side in ("i", "d"):
        single: Dict[str, Optional[float]] = {}
        multi: Dict[str, Optional[float]] = {}
        for trace in traces:
            stream = trace.stream(side)
            base = run_level(stream, CONFIG)
            if base.misses == 0:
                single[trace.name] = None
                multi[trace.name] = None
                continue
            single[trace.name] = percent(
                run_level(stream, CONFIG, StreamBuffer(4)).removed, base.misses
            )
            multi[trace.name] = percent(
                run_level(stream, CONFIG, MultiWayStreamBuffer(4, 4)).removed,
                base.misses,
            )
        data[f"sb1_{side}"] = single
        data[f"sb4_{side}"] = multi
    # Combined system: misses reaching L2, base vs improved.
    base_total = improved_total = 0
    for trace in traces:
        for side, make in (
            ("i", lambda: StreamBuffer(4)),
            ("d", lambda: CompositeAugmentation([VictimCache(4), MultiWayStreamBuffer(4, 4)])),
        ):
            stream = trace.stream(side)
            base_total += run_level(stream, CONFIG).stats.misses_to_next_level
            improved_total += run_level(stream, CONFIG, make()).stats.misses_to_next_level
    data["combined"] = (base_total, improved_total)
    return data


def _vc_beats_mc(data: Dict) -> bool:
    return all(
        data["vc"][name].removed(k) >= data["mc"][name].removed(k)
        for name in data["vc"]
        for k in (1, 2, 4, 15)
    )


_CHECKS: List[ShapeCheck] = [
    ShapeCheck(
        "victim_ge_miss",
        '"Victim caching is always an improvement over miss caching" (SS3.2)',
        _vc_beats_mc,
        lambda d: "checked at 1/2/4/15 entries on every benchmark",
    ),
    ShapeCheck(
        "vc1_useful",
        '"victim caches consisting of just one line are useful, in contrast to miss caches" (SS3.2)',
        lambda d: _average(
            [s.percent_of_misses_removed(1) for s in d["vc"].values()]
        ) > 3 * max(0.5, _average([s.percent_of_misses_removed(1) for s in d["mc"].values()])),
        lambda d: (
            f"VC1 removes {_average([s.percent_of_misses_removed(1) for s in d['vc'].values()]):.1f}% "
            f"of data misses vs MC1 {_average([s.percent_of_misses_removed(1) for s in d['mc'].values()]):.1f}%"
        ),
    ),
    ShapeCheck(
        "saturates_at_4",
        '"After four entries the improvement from additional miss cache entries is minor" (SS3.1)',
        lambda d: all(
            (s.removed(15) - s.removed(4)) <= max(10, 0.25 * s.total_misses)
            for s in d["vc"].values()
        ),
        lambda d: "15-entry gain over 4-entry stays under a quarter of all misses",
    ),
    ShapeCheck(
        "sb_i_beats_d",
        "single stream buffer removes far more I-misses (72%) than D-misses (25%) (SS4.2)",
        lambda d: _average([v for v in d["sb1_i"].values() if v is not None])
        > 2 * _average([v for v in d["sb1_d"].values() if v is not None]),
        lambda d: (
            f"I {_average([v for v in d['sb1_i'].values() if v is not None]):.1f}% "
            f"vs D {_average([v for v in d['sb1_d'].values() if v is not None]):.1f}%"
        ),
    ),
    ShapeCheck(
        "multiway_doubles_d",
        '"the multi-way stream buffer can remove 43% ... almost twice the performance of the single stream buffer" (SS4.2)',
        lambda d: _average([v for v in d["sb4_d"].values() if v is not None])
        > 1.5 * _average([v for v in d["sb1_d"].values() if v is not None]),
        lambda d: (
            f"4-way {_average([v for v in d['sb4_d'].values() if v is not None]):.1f}% "
            f"vs single {_average([v for v in d['sb1_d'].values() if v is not None]):.1f}%"
        ),
    ),
    ShapeCheck(
        "multiway_i_unchanged",
        '"the performance on the instruction stream remains virtually unchanged" (SS4.2)',
        lambda d: all(
            d["sb4_i"][name] <= d["sb1_i"][name] + 10.0
            for name in d["sb1_i"]
            if d["sb1_i"][name] is not None
        ),
        lambda d: "4-way within 10 points of single on every benchmark's I-side",
    ),
    ShapeCheck(
        "liver_multiway_jump",
        "liver jumps from 7% to 60% with the multi-way buffer (SS4.2)",
        lambda d: d["sb4_d"]["liver"] is not None
        and d["sb1_d"]["liver"] is not None
        and d["sb4_d"]["liver"] > 4 * max(1.0, d["sb1_d"]["liver"]),
        lambda d: f"liver: single {d['sb1_d']['liver']:.1f}% -> 4-way {d['sb4_d']['liver']:.1f}%",
    ),
    ShapeCheck(
        "combined_halves_misses",
        '"reduce the miss rate of the first level in the cache hierarchy by a factor of two to three" (abstract)',
        lambda d: d["combined"][1] * 2 < d["combined"][0],
        lambda d: (
            f"misses reaching L2: {d['combined'][0]} -> {d['combined'][1]} "
            f"({safe_div(d['combined'][0], max(1, d['combined'][1])):.1f}x)"
        ),
    ),
    ShapeCheck(
        "met_strongest_vc",
        "met has by far the highest removable conflict ratio (SS3.1 / Figure 3-3)",
        lambda d: max(
            d["vc"], key=lambda n: d["vc"][n].percent_of_misses_removed(4)
        )
        == "met",
        lambda d: f"met VC4 removes {d['vc']['met'].percent_of_misses_removed(4):.1f}% of its data misses",
    ),
]


def run_checks(traces=None, scale: Optional[int] = None, seed: int = 0) -> List[CheckOutcome]:
    """Evaluate every shape check against a live run."""
    traces = traces if traces is not None else suite(scale, seed)
    data = _measurements(traces)
    outcomes = []
    for check in _CHECKS:
        try:
            passed = bool(check.predicate(data))
            detail = check.detail(data)
        except Exception as error:  # a broken claim should report, not crash
            passed = False
            detail = f"check raised {type(error).__name__}: {error}"
        outcomes.append(CheckOutcome(check, passed, detail))
    return outcomes


def render_outcomes(outcomes: List[CheckOutcome]) -> str:
    lines = ["shape checks against the paper's claims:"]
    for outcome in outcomes:
        status = "PASS" if outcome.passed else "FAIL"
        lines.append(f"  [{status}] {outcome.check.check_id}: {outcome.check.claim}")
        lines.append(f"         {outcome.detail}")
    passed = sum(1 for o in outcomes if o.passed)
    lines.append(f"{passed}/{len(outcomes)} checks passed")
    return "\n".join(lines)
