"""Low-level simulation drivers shared by the experiment modules.

Most of the paper's figures treat one cache side (instruction or data)
in isolation, so the workhorse here is :func:`run_level`: replay one
side's byte-address stream through a single :class:`CacheLevel`.  The
full-system experiments (Figures 2-2 and 5-1) use :func:`run_system`.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Iterable, Optional, Sequence

from ..buffers.base import L1Augmentation
from ..common.config import CacheConfig, SystemConfig
from ..hierarchy.level import CacheLevel
from ..hierarchy.system import MemorySystem, SystemResult
from ..telemetry.core import current as _telemetry_scope
from ..traces.trace import MaterializedTrace

__all__ = ["LevelRun", "run_level", "run_system", "baseline_conflicts"]


@dataclass
class LevelRun:
    """Everything one single-level replay produces."""

    level: CacheLevel

    @property
    def stats(self):
        return self.level.stats

    @property
    def classifier(self):
        return self.level.classifier

    @property
    def augmentation(self):
        return self.level.augmentation

    @property
    def misses(self) -> int:
        return self.level.stats.demand_misses

    @property
    def removed(self) -> int:
        return self.level.stats.removed_misses

    @property
    def conflicts(self) -> int:
        if self.level.classifier is None:
            raise ValueError("run_level(..., classify=True) required for conflicts")
        return self.level.classifier.conflict_misses


def run_level(
    byte_addresses: Sequence[int],
    config: CacheConfig,
    augmentation: Optional[L1Augmentation] = None,
    classify: bool = False,
    warmup: int = 0,
) -> LevelRun:
    """Replay one side's byte-address stream through a cache level.

    With ``warmup > 0`` the first *warmup* references are replayed to
    warm the cache (and helper structures, and the classifier's shadow)
    and then the counters are zeroed, so the returned statistics are
    steady-state.  Compulsory classification still honours the warm-up
    prefix — a line first touched during warm-up is not compulsory
    later.
    """
    level = CacheLevel(config, augmentation, classify)
    shift = config.offset_bits
    access = level.access_line
    # Telemetry costs one global read per replay, nothing per reference.
    scope = _telemetry_scope()
    started = perf_counter() if scope is not None else 0.0
    if warmup:
        now = 0
        for address in byte_addresses:
            access(address >> shift, now)
            now += 1
            if now == warmup:
                level.reset_stats()
    else:
        # No warm-up boundary to watch for: the common case gets a loop
        # with nothing in it but the access itself.
        for now, address in enumerate(byte_addresses):
            access(address >> shift, now)
    if scope is not None:
        scope.observe_level_run(level.stats, perf_counter() - started)
    return LevelRun(level)


def run_system(
    trace: MaterializedTrace,
    config: Optional[SystemConfig] = None,
    iaugmentation: Optional[L1Augmentation] = None,
    daugmentation: Optional[L1Augmentation] = None,
    classify: bool = False,
    prewarm_l2: bool = False,
) -> SystemResult:
    """Replay a full trace through the two-level system.

    ``prewarm_l2`` preloads the second-level cache with the trace's
    footprint first (see :meth:`MemorySystem.prewarm_l2`) — used by the
    performance experiments, where first-touch L2 misses are a
    trace-length artifact the paper's 100M-instruction traces amortize.
    """
    system = MemorySystem(
        config,
        iaugmentation=iaugmentation,
        daugmentation=daugmentation,
        classify=classify,
    )
    if prewarm_l2:
        system.prewarm_l2(trace)
    return system.run(trace)


def baseline_conflicts(
    byte_addresses: Iterable[int], config: CacheConfig
) -> LevelRun:
    """Baseline replay with 3C classification (misses + conflict count)."""
    return run_level(byte_addresses, config, None, classify=True)
