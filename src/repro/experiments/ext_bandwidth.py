"""§4.1 worked example: sequential fetch bandwidth vs. memory latency.

Reproduces the paper's arithmetic — with a 12-cycle pipelined fill
latency and a new request accepted every 4 cycles, a four-entry stream
buffer supplies sequential instructions at one per cycle while tagged
prefetch manages one every three cycles — and extends it across
latencies to check the §5 claim that "stream buffers can also tolerate
longer memory system latencies since they prefetch data much in advance
of other prefetch techniques".
"""

from __future__ import annotations

from typing import Optional

from ..hierarchy.bandwidth import bandwidth_sweep
from .base import TableResult

__all__ = ["run", "LATENCIES"]

LATENCIES = [4, 8, 12, 16, 24, 48]
ISSUE_INTERVAL = 4
INSTRUCTIONS_PER_LINE = 4


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    rows = []
    for point in bandwidth_sweep(
        LATENCIES,
        issue_interval=ISSUE_INTERVAL,
        instructions_per_line=INSTRUCTIONS_PER_LINE,
        buffer_entries=4,
    ):
        rows.append(
            [
                point.latency,
                round(point.demand_cpi, 3),
                round(point.tagged_cpi, 3),
                round(point.stream_cpi, 3),
                round(point.tagged_cpi / point.stream_cpi, 2),
            ]
        )
    return TableResult(
        experiment_id="ext_bandwidth",
        title="SS4.1 worked example: sequential-fetch cycles/instruction vs. fill latency",
        headers=[
            "latency (cycles)",
            "demand CPI",
            "tagged CPI",
            "stream-buffer CPI",
            "tagged/stream",
        ],
        rows=rows,
        notes=[
            "pipelined interface: one request per 4 cycles; 4-instruction lines;",
            "paper's example at latency 12: stream buffer 1.0 CPI vs tagged 3.0;",
            "the stream buffer holds 1.0 CPI until latency exceeds what 4",
            "outstanding requests can cover, then degrades gracefully",
        ],
    )
