"""Is a stream-buffer hit really one cycle?  (§4.1's caveat, tested.)

The paper's figures charge every removed miss one cycle, while §4.1
concedes that a demanded line may not have returned from the pipelined
second level yet.  This experiment runs the §5 improved system twice
per benchmark:

* the **aggregate** model (counts x penalties, one cycle per removed
  miss) — what Figure 5-1 uses;
* the **timeline** model, with stream buffers modelling availability
  against a real cycle clock (12-cycle fills, one request per 4
  cycles) — removed misses now pay any remaining fill time.

The gap between the two CPIs is exactly the cost of the paper's
one-cycle assumption.
"""

from __future__ import annotations

from typing import Optional

from ..buffers.base import CompositeAugmentation
from ..buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from ..buffers.victim_cache import VictimCache
from ..common.config import baseline_system
from ..common.stats import percent, safe_div
from ..hierarchy.performance import evaluate_performance
from ..hierarchy.timeline import TimelineSimulator
from .base import TableResult
from .runner import run_system
from .workloads import suite

__all__ = ["run"]


def _improved_augs(model_availability: bool):
    timing = baseline_system().timing
    kwargs = dict(
        model_availability=model_availability,
        fill_latency=timing.l2_fill_latency,
        issue_interval=timing.l2_issue_interval,
    )
    iaug = StreamBuffer(entries=4, **kwargs)
    daug = CompositeAugmentation(
        [VictimCache(entries=4), MultiWayStreamBuffer(ways=4, entries=4, **kwargs)]
    )
    return iaug, daug


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    timing = baseline_system().timing
    rows = []
    for trace in traces:
        iaug, daug = _improved_augs(model_availability=False)
        aggregate_result = run_system(
            trace, iaugmentation=iaug, daugmentation=daug, prewarm_l2=True
        )
        aggregate = evaluate_performance(aggregate_result, timing)

        iaug, daug = _improved_augs(model_availability=True)
        timeline = TimelineSimulator(iaugmentation=iaug, daugmentation=daug)
        timeline.prewarm_l2(trace)
        timeline_result = timeline.run(trace)

        removed = (
            timeline.ilevel.stats.removed_misses + timeline.dlevel.stats.removed_misses
        )
        rows.append(
            [
                trace.name,
                round(aggregate.cycles_per_instruction, 3),
                round(timeline_result.cycles_per_instruction, 3),
                timeline_result.availability_stall_cycles,
                round(
                    safe_div(timeline_result.availability_stall_cycles, removed), 2
                ),
                round(
                    percent(
                        timeline_result.cycles - aggregate.total_time,
                        aggregate.total_time,
                    ),
                    1,
                ),
            ]
        )
    return TableResult(
        experiment_id="ext_timing_fidelity",
        title="SS4.1 caveat: one-cycle removed misses vs. real availability stalls",
        headers=[
            "program",
            "aggregate CPI",
            "timeline CPI",
            "avail. stalls",
            "stalls / removed miss",
            "CPI gap %",
        ],
        rows=rows,
        notes=[
            "improved SS5 system both times; timeline stream buffers model the",
            "pipelined L2 (12-cycle fills, one request per 4 cycles), so a head",
            "demanded before its fill returns pays the remaining cycles",
        ],
    )
