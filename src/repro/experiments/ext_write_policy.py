"""§2 extension: write-through vs. write-back data caches.

The paper's §2 leaves the write-policy tradeoff unexamined while relying
on its bandwidth consequences (a write-through L1 must push every store
below — about one per 6–7 instructions — which is why the second-level
cache has to be pipelined).  This experiment quantifies the tradeoff on
the benchmark suite: demand miss rate and next-level traffic (in
transactions and in bytes per data reference) for both policies at the
baseline 4KB/16B geometry.
"""

from __future__ import annotations

from typing import Optional

from ..common.config import CacheConfig
from ..common.types import AccessKind
from ..hierarchy.write_policy import WritePolicy, WritePolicyCache
from .base import TableResult
from .workloads import suite

__all__ = ["run"]

CONFIG = CacheConfig(4096, 16)


def _run_policy(trace, policy: WritePolicy):
    cache = WritePolicyCache(CONFIG, policy)
    ifetch = int(AccessKind.IFETCH)
    for kind, address in trace:
        if kind == ifetch:
            continue
        cache.access(AccessKind(kind), address)
    return cache.finish()


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    rows = []
    for trace in traces:
        through = _run_policy(trace, WritePolicy.WRITE_THROUGH)
        back = _run_policy(trace, WritePolicy.WRITE_BACK)
        refs = max(1, through.accesses)
        rows.append(
            [
                trace.name,
                round(through.miss_rate, 3),
                round(back.miss_rate, 3),
                through.buffer_drains,
                round(100.0 * through.coalesced_stores / max(1, through.stores), 1),
                back.writebacks,
                round(through.bytes_to_next_level(CONFIG.line_size) / refs, 2),
                round(back.bytes_to_next_level(CONFIG.line_size) / refs, 2),
            ]
        )
    return TableResult(
        experiment_id="ext_write_policy",
        title="Extension (SS2): write-through (4-entry write buffer) vs. write-back D-cache",
        headers=[
            "program",
            "WT miss rate",
            "WB miss rate",
            "WT buffer drains",
            "WT coalesced %",
            "WB writebacks",
            "WT bytes/ref",
            "WB bytes/ref",
        ],
        rows=rows,
        notes=[
            "write-through pays store bandwidth continuously (mitigated by the",
            "coalescing write buffer); write-back pays per evicted dirty line;",
            "write-back's write-allocate also changes the miss rate slightly",
        ],
    )
