"""Figure 4-5: four-way stream buffer performance.

Same axes as Figure 4-3 with four stream buffers in parallel (LRU
allocation).  Paper landmarks: instruction-side performance is
virtually unchanged (a single buffer suffices for code), while data-side
removal nearly doubles to 43% overall, with liver — whose kernels
interleave several array streams — jumping from 7% to 60%.
"""

from __future__ import annotations

from typing import Optional

from .base import FigureResult
from .figure_4_3 import run_length_figure
from .workloads import suite

__all__ = ["run"]


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> FigureResult:
    traces = traces if traces is not None else suite(scale, seed)
    return run_length_figure(
        "figure_4_5",
        "Four-way stream buffer performance (4KB caches, 16B lines)",
        traces,
        ways=4,
        notes=[
            "paper: I-side unchanged vs. a single buffer; D-side removal nearly",
            "doubles to 43%, liver jumping from 7% to 60%",
        ],
    )
