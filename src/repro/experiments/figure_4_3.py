"""Figure 4-3: sequential (single) stream buffer performance.

Cumulative percent of misses removed by a four-entry single stream
buffer as a function of how many lines it is allowed to prefetch past
the allocating miss, for the baseline 4KB instruction and data caches.
Paper landmarks: the instruction side reaches ~72% total removal while
the data side stalls near 25%; most instruction streams break by the
6th successive line, while linpack's data stream keeps going (its
misses are one long sequential sweep) and liver's does not (its streams
are interleaved, flushing a single buffer).
"""

from __future__ import annotations

from typing import List, Optional

from ..common.config import CacheConfig
from .base import FigureResult, Series
from .sweeps import batch_run_sweeps
from .workloads import suite

__all__ = ["run", "run_length_figure", "RUN_LENGTHS"]

RUN_LENGTHS = list(range(0, 17))


def run_length_figure(
    experiment_id: str,
    title: str,
    traces,
    ways: int,
    notes: List[str],
) -> FigureResult:
    """Shared driver for Figures 4-3 (1-way) and 4-5 (4-way).

    Sweeps go through :func:`~repro.experiments.sweeps.batch_run_sweeps`
    so the figure inherits its execution modes: inline by default,
    fanned out with ``REPRO_JOBS > 1``, memoized point by point when a
    result store is active.
    """
    traces = list(traces)
    config = CacheConfig(4096, 16)
    sides = (("i", "L1 I-cache"), ("d", "L1 D-cache"))
    sweeps = batch_run_sweeps(
        traces, config, sides=[side for side, _ in sides],
        ways=ways, max_run=max(RUN_LENGTHS),
    )
    sweep_iter = iter(sweeps)
    series: List[Series] = []
    for _, side_label in sides:
        curves: List[List[float]] = []
        for trace in traces:
            sweep = next(sweep_iter)
            curve = [sweep.percent_removed(k) for k in RUN_LENGTHS]
            if sweep.total_misses > 0:
                curves.append(curve)
            series.append(Series(f"{side_label} {trace.name}", RUN_LENGTHS, curve))
        if curves:
            average = [
                sum(curve[i] for curve in curves) / len(curves)
                for i in range(len(RUN_LENGTHS))
            ]
        else:
            average = [0.0] * len(RUN_LENGTHS)
        series.append(Series(f"{side_label} average", RUN_LENGTHS, average))
    return FigureResult(
        experiment_id=experiment_id,
        title=title,
        xlabel="length of stream run (lines prefetched past the miss)",
        ylabel="cumulative percent of misses removed",
        series=series,
        notes=notes,
    )


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> FigureResult:
    traces = traces if traces is not None else suite(scale, seed)
    return run_length_figure(
        "figure_4_3",
        "Sequential stream buffer performance (4KB caches, 16B lines)",
        traces,
        ways=1,
        notes=[
            "paper: single buffer removes 72% of I-misses but only 25% of D-misses;",
            "linpack's sequential data keeps streaming, liver's interleaved data does not",
        ],
    )
