"""§3 quantified: direct-mapped + victim cache vs. real associativity.

The paper's framing: direct-mapped caches win on hit time (§2, citing
Hill), so the goal is to "have our cake and eat it too by somehow
providing additional associativity without adding to the critical
access path".  This experiment measures how much of set-associativity's
miss-rate benefit the victim cache actually recovers, per benchmark:

* misses of the 4KB direct-mapped cache (baseline);
* misses avoided by 2-way / 4-way / fully-associative organisations of
  the same capacity (the hit-time-expensive alternatives);
* misses removed by 1/2/4-entry victim caches behind the direct-mapped
  array (the paper's alternative);
* the *recovery ratio*: VC4 removal as a share of the DM→2-way gap.

A recovery ratio near (or above) 1.0 is the paper's argument in one
number: a few fully-associative lines beside the cache buy what a whole
extra way would, without touching the hit path.  Ratios above 1.0 are
possible because a victim cache is more flexible than one extra way —
it lends its entries to whichever sets are conflicting right now.
"""

from __future__ import annotations

from typing import List, Optional

from ..buffers.victim_cache import VictimCache
from ..caches.fully_associative import FullyAssociativeCache
from ..caches.set_associative import SetAssociativeCache
from ..common.config import CacheConfig
from ..common.stats import safe_div
from .base import TableResult
from .runner import run_level
from .workloads import suite

__all__ = ["run"]

CONFIG = CacheConfig(4096, 16)


def _misses(cache, addresses: List[int]) -> int:
    shift = CONFIG.offset_bits
    misses = 0
    for address in addresses:
        if not cache.access_and_fill(address >> shift):
            misses += 1
    return misses


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    rows = []
    for trace in traces:
        addresses = trace.data_addresses
        direct = run_level(addresses, CONFIG)
        dm_misses = direct.misses
        two_way = _misses(SetAssociativeCache(CONFIG, 2), addresses)
        four_way = _misses(SetAssociativeCache(CONFIG, 4), addresses)
        fully = _misses(FullyAssociativeCache(CONFIG.num_lines), addresses)
        vc_removed = {
            entries: run_level(addresses, CONFIG, VictimCache(entries)).removed
            for entries in (1, 2, 4)
        }
        two_way_gain = dm_misses - two_way
        recovery = safe_div(vc_removed[4], two_way_gain) if two_way_gain > 0 else float("inf")
        rows.append(
            [
                trace.name,
                dm_misses,
                dm_misses - two_way,
                dm_misses - four_way,
                dm_misses - fully,
                vc_removed[1],
                vc_removed[2],
                vc_removed[4],
                round(recovery, 2) if two_way_gain > 0 else "n/a",
            ]
        )
    return TableResult(
        experiment_id="ext_associativity",
        title="SS3 quantified: victim caching vs. real associativity (4KB data cache)",
        headers=[
            "program",
            "DM misses",
            "2-way gain",
            "4-way gain",
            "full-assoc gain",
            "VC1 removed",
            "VC2 removed",
            "VC4 removed",
            "VC4 / 2-way",
        ],
        rows=rows,
        notes=[
            "'gain' = misses the associative organisation avoids vs direct-mapped;",
            "VC4 / 2-way near or above 1.0 is the paper's case: a 4-line victim",
            "cache recovers an extra way's benefit without the hit-time cost",
        ],
    )
