"""Miss-rate time series: phase behaviour over a trace.

liver runs 14 kernels back to back; real programs move through phases
the same way, and a single aggregate miss rate hides it.  These helpers
chop a replay into fixed-size intervals and report the per-interval
miss (and removal) rate, ready for :func:`repro.experiments.plotting`
or any external tool.

::

    series = miss_rate_series(trace.data_addresses, CacheConfig(4096, 16))
    print(render_ascii_chart([series], title="liver, data side"))
"""

from __future__ import annotations

from typing import List, Optional

from ..buffers.base import L1Augmentation
from ..common.config import CacheConfig
from ..common.errors import ConfigurationError
from ..common.types import AccessOutcome
from ..hierarchy.level import CacheLevel
from .base import Series

__all__ = ["miss_rate_series", "removal_rate_series"]


def _interval_outcomes(
    byte_addresses,
    config: CacheConfig,
    augmentation: Optional[L1Augmentation],
    interval: int,
) -> List[List[int]]:
    """Per-interval [accesses, demand misses, removed misses]."""
    if interval < 1:
        raise ConfigurationError(f"interval must be >= 1, got {interval}")
    level = CacheLevel(config, augmentation)
    shift = config.offset_bits
    buckets: List[List[int]] = []
    current = [0, 0, 0]
    for address in byte_addresses:
        outcome = level.access_line(address >> shift)
        current[0] += 1
        if outcome is not AccessOutcome.HIT:
            current[1] += 1
            if outcome.is_removed_miss:
                current[2] += 1
        if current[0] == interval:
            buckets.append(current)
            current = [0, 0, 0]
    if current[0]:
        buckets.append(current)
    return buckets


def miss_rate_series(
    byte_addresses,
    config: CacheConfig,
    augmentation: Optional[L1Augmentation] = None,
    interval: int = 2000,
    label: str = "miss rate",
) -> Series:
    """Per-interval demand miss rate over the replay."""
    buckets = _interval_outcomes(byte_addresses, config, augmentation, interval)
    xs = [i * interval for i in range(len(buckets))]
    ys = [misses / accesses if accesses else 0.0 for accesses, misses, _ in buckets]
    return Series(label, xs, ys)


def removal_rate_series(
    byte_addresses,
    config: CacheConfig,
    augmentation: L1Augmentation,
    interval: int = 2000,
    label: str = "removal rate",
) -> Series:
    """Per-interval fraction of demand misses the structure removed."""
    buckets = _interval_outcomes(byte_addresses, config, augmentation, interval)
    xs = [i * interval for i in range(len(buckets))]
    ys = [removed / misses if misses else 0.0 for _, misses, removed in buckets]
    return Series(label, xs, ys)
