"""§3.5 extension: inclusion violations in the hierarchy.

Measures the two inclusion observations of §3.5 on the data side, using
a 64KB L2 proxy (capacity the synthetic traces exercise):

1. with matched 16B lines everywhere and no victim cache, inclusion
   violations come only from L2 replacement racing L1 residency;
2. the baseline's 128B L2 lines violate inclusion on their own ("this
   violates inclusion as well");
3. adding a victim cache adds its own violations — swapped-in lines the
   L2 replaced long ago.

Reported per configuration: the fraction of (sampled) steps with at
least one unbacked upper-level line, the average number of unbacked
lines on violating steps, and the share of violations living in the
victim cache.
"""

from __future__ import annotations

from typing import Optional

from ..classify.inclusion import InclusionMonitor
from ..common.config import CacheConfig
from ..common.stats import safe_div
from .base import TableResult
from .workloads import suite

__all__ = ["run"]

L1 = CacheConfig(4096, 16)
L2_MATCHED = CacheConfig(64 * 1024, 16)
L2_WIDE = CacheConfig(64 * 1024, 128)
SAMPLE = 8

_CONFIGS = [
    ("16B L2 lines, no VC", L2_MATCHED, 0),
    ("128B L2 lines, no VC", L2_WIDE, 0),
    ("128B L2 lines, VC4", L2_WIDE, 4),
]


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    rows = []
    for label, l2_config, victim_entries in _CONFIGS:
        total_steps = 0
        violating = 0
        line_steps = 0
        vc_line_steps = 0
        peak = 0
        for trace in traces:
            monitor = InclusionMonitor(L1, l2_config, victim_entries, SAMPLE)
            report = monitor.run(trace.data_addresses)
            total_steps += report.accesses
            violating += report.steps_with_violation
            line_steps += report.violating_line_steps
            vc_line_steps += report.victim_cache_violations
            peak = max(peak, report.peak_violations)
        rows.append(
            [
                label,
                round(100.0 * safe_div(violating, total_steps), 1),
                round(safe_div(line_steps, violating), 1),
                peak,
                round(100.0 * safe_div(vc_line_steps, line_steps), 1),
            ]
        )
    return TableResult(
        experiment_id="ext_inclusion",
        title="Extension (SS3.5): inclusion violations, data side (64KB L2 proxy)",
        headers=[
            "configuration",
            "% steps violated",
            "avg unbacked lines",
            "peak",
            "% of violations in VC",
        ],
        rows=rows,
        notes=[
            "SS3.5: victim caches violate inclusion - and so do the baseline's",
            "8-16x larger L2 lines; violations are lines a snoop filter at the",
            "L2 could not see (sampled every 8 references)",
        ],
    )
