"""§3.5 extension: victim caches for second-level caches.

The paper defers this study ("work on obtaining victim cache performance
for multi-megabyte second-level caches is underway") because megabyte
caches need billions of trace references.  We run the scaled-down
equivalent its argument actually rests on: a second-level cache whose
*line size* is large (conflict misses grow with line size, §3.4/§3.5)
and whose capacity is several times the L1, fed by the L1 miss stream.
The paper also notes a first-level victim cache can reduce second-level
conflict misses, so both configurations are reported.

The L2 here is 64KB with 128-byte lines — the baseline ratio of L2 line
to L1 line (8x), at a capacity the synthetic traces can actually
exercise.
"""

from __future__ import annotations

from typing import List, Optional

from ..buffers.victim_cache import VictimCache
from ..common.config import CacheConfig
from ..common.stats import percent
from ..hierarchy.level import CacheLevel
from .base import TableResult
from .workloads import suite

__all__ = ["run", "L2_CONFIG"]

L1_CONFIG = CacheConfig(4096, 16)
L2_CONFIG = CacheConfig(64 * 1024, 128)


def _run_two_level(addresses: List[int], l1_victims: int, l2_victims: int):
    """Replay one side through L1 (+optional VC) into L2 (+optional VC)."""
    l1 = CacheLevel(L1_CONFIG, VictimCache(l1_victims) if l1_victims else None)
    l2 = CacheLevel(
        L2_CONFIG, VictimCache(l2_victims) if l2_victims else None, classify=True
    )
    l1_shift = L1_CONFIG.offset_bits
    l2_shift = L2_CONFIG.offset_bits
    for now, address in enumerate(addresses):
        outcome = l1.access_line(address >> l1_shift, now)
        if outcome.goes_to_next_level:
            l2.access_line(address >> l2_shift, now)
    return l1, l2


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    rows = []
    for trace in traces:
        addresses = trace.data_addresses
        _, l2_plain = _run_two_level(addresses, l1_victims=0, l2_victims=0)
        _, l2_vc = _run_two_level(addresses, l1_victims=0, l2_victims=4)
        _, l2_both = _run_two_level(addresses, l1_victims=4, l2_victims=4)
        base_misses = l2_plain.stats.demand_misses
        rows.append(
            [
                trace.name,
                base_misses,
                round(l2_plain.classifier.percent_conflict, 1),
                l2_vc.stats.removed_misses,
                round(percent(l2_vc.stats.removed_misses, base_misses), 1),
                l2_both.stats.removed_misses,
                round(
                    percent(
                        l2_both.stats.removed_misses, l2_both.stats.demand_misses
                    ),
                    1,
                ),
            ]
        )
    return TableResult(
        experiment_id="ext_l2_victim",
        title="Extension (SS3.5): victim caching behind a 64KB/128B-line L2 (data side)",
        headers=[
            "program",
            "L2 misses",
            "% conflict",
            "L2 VC4 removed",
            "% of base misses",
            "removed w/ L1 VC4 too",
            "% of its misses",
        ],
        rows=rows,
        notes=[
            "scaled-down stand-in for the paper's deferred multi-megabyte study;",
            "large L2 lines raise the conflict share, which a victim cache attacks",
        ],
    )
