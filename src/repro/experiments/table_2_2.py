"""Table 2-2: baseline system first-level cache miss rates.

Replays each benchmark through the baseline system (split 4KB
direct-mapped L1s, 16-byte lines) and reports instruction and data miss
rates next to the paper's published values.  Calibration of the
synthetic workloads targeted these numbers; EXPERIMENTS.md records the
achieved deltas.
"""

from __future__ import annotations

from typing import Optional

from .base import TableResult
from .runner import run_system
from .workloads import suite

__all__ = ["run", "PAPER_MISS_RATES"]

#: Table 2-2: (instruction, data) miss rates on the baseline system.
PAPER_MISS_RATES = {
    "ccom": (0.096, 0.120),
    "grr": (0.061, 0.062),
    "yacc": (0.028, 0.040),
    "met": (0.017, 0.039),
    "linpack": (0.000, 0.144),
    "liver": (0.000, 0.273),
}


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    rows = []
    for trace in traces:
        result = run_system(trace)
        paper_i, paper_d = PAPER_MISS_RATES[trace.name]
        rows.append(
            [
                trace.name,
                round(result.imiss_rate, 3),
                paper_i,
                round(result.dmiss_rate, 3),
                paper_d,
            ]
        )
    return TableResult(
        experiment_id="table_2_2",
        title="Baseline system first-level cache miss rates",
        headers=["program", "instr (ours)", "instr (paper)", "data (ours)", "data (paper)"],
        rows=rows,
        notes=["4KB direct-mapped split I/D caches, 16B lines"],
    )
