"""Figure 3-3: conflict misses removed by miss caching.

Percent of conflict misses removed by miss caches of 1..15 entries
backing the baseline 4KB caches, per benchmark and as the paper's
equal-weight average, for both the instruction and data sides.  Thanks
to the LRU stack property the full sweep costs one simulation per
benchmark per side (see :mod:`repro.experiments.sweeps`).

Paper landmarks: a 2-entry miss cache removes 25% of data-cache conflict
misses on average (13% of all data misses), 4 entries remove 36% (18%
overall), and the payoff flattens beyond 4; instruction-side removal is
much weaker because instruction conflicts span more lines than a small
miss cache holds.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.config import CacheConfig
from .base import FigureResult, Series
from .sweeps import batch_entry_sweeps
from .workloads import suite

__all__ = ["run", "entry_sweep_figure"]

ENTRIES = list(range(0, 16))


def entry_sweep_figure(
    experiment_id: str,
    title: str,
    kind: str,
    traces,
    notes: List[str],
) -> FigureResult:
    """Shared driver for Figures 3-3 and 3-5 (only the structure differs).

    *kind* is the :func:`~repro.experiments.sweeps.batch_entry_sweeps`
    structure kind (``"miss"`` or ``"victim"``).  Routing through the
    batch helper means the figure inherits its execution modes: inline
    by default, fanned out with ``REPRO_JOBS > 1``, memoized point by
    point when a result store is active.
    """
    traces = list(traces)
    config = CacheConfig(4096, 16)
    sides = (("i", "L1 I-cache"), ("d", "L1 D-cache"))
    sweeps = batch_entry_sweeps(
        traces, config, kind=kind, sides=[side for side, _ in sides],
        max_entries=max(ENTRIES),
    )
    sweep_iter = iter(sweeps)
    series: List[Series] = []
    for _, side_label in sides:
        contributing: List[List[float]] = []
        for trace in traces:
            sweep = next(sweep_iter)
            curve = [sweep.percent_of_conflicts_removed(k) for k in ENTRIES]
            series.append(Series(f"{side_label} {trace.name}", ENTRIES, curve))
            # The paper's equal-weight average includes every benchmark
            # that *has* conflict misses — even one the structure fails
            # to help — and skips only those with nothing to remove
            # (linpack/liver instruction caches).
            if sweep.conflict_misses > 0:
                contributing.append(curve)
        if contributing:
            average = [
                sum(curve[i] for curve in contributing) / len(contributing)
                for i in range(len(ENTRIES))
            ]
        else:
            average = [0.0] * len(ENTRIES)
        series.append(Series(f"{side_label} average", ENTRIES, average))
    return FigureResult(
        experiment_id=experiment_id,
        title=title,
        xlabel="entries",
        ylabel="percent of conflict misses removed",
        series=series,
        notes=notes,
    )


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> FigureResult:
    traces = traces if traces is not None else suite(scale, seed)
    return entry_sweep_figure(
        "figure_3_3",
        "Conflict misses removed by miss caching (4KB caches, 16B lines)",
        "miss",
        traces,
        notes=[
            "paper: 2-entry MC removes 25% of data conflicts on average, 4-entry 36%;",
            "little gain beyond 4 entries; instruction side far weaker",
        ],
    )
