"""Table 1-1: the increasing cost of cache misses.

Analytic, not simulated: for each machine generation the miss cost in
cycles is the main-memory access time divided by the cycle time, and the
miss cost in instruction times is that divided by cycles-per-instruction.
The paper's point is the multiplicative blow-up from faster cycles and
lower CPI; the "?" row is its projected 1,000-MIPS-class machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .base import TableResult

__all__ = ["MachineGeneration", "MACHINES", "run"]


@dataclass(frozen=True)
class MachineGeneration:
    """One row of Table 1-1."""

    name: str
    cycles_per_instruction: float
    cycle_time_ns: float
    memory_time_ns: float

    @property
    def miss_cost_cycles(self) -> float:
        return self.memory_time_ns / self.cycle_time_ns

    @property
    def miss_cost_instructions(self) -> float:
        return self.miss_cost_cycles * (1.0 / self.cycles_per_instruction)


#: The paper's three generations: the VAX 11/780, the WRL Titan, and the
#: projected future machine.
MACHINES: List[MachineGeneration] = [
    MachineGeneration("VAX 11/780", cycles_per_instruction=10.0, cycle_time_ns=200.0, memory_time_ns=1200.0),
    MachineGeneration("WRL Titan", cycles_per_instruction=1.4, cycle_time_ns=45.0, memory_time_ns=540.0),
    MachineGeneration("?", cycles_per_instruction=0.5, cycle_time_ns=4.0, memory_time_ns=280.0),
]

#: Paper-reported miss costs in instruction times, for comparison.
PAPER_MISS_COST_INSTR = {"VAX 11/780": 0.6, "WRL Titan": 8.6, "?": 140.0}


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    rows = []
    for machine in MACHINES:
        rows.append(
            [
                machine.name,
                machine.cycles_per_instruction,
                machine.cycle_time_ns,
                machine.memory_time_ns,
                machine.miss_cost_cycles,
                machine.miss_cost_instructions,
                PAPER_MISS_COST_INSTR[machine.name],
            ]
        )
    return TableResult(
        experiment_id="table_1_1",
        title="The increasing cost of cache misses",
        headers=[
            "machine",
            "cycles/instr",
            "cycle (ns)",
            "mem (ns)",
            "miss (cycles)",
            "miss (instr)",
            "paper (instr)",
        ],
        rows=rows,
        notes=["analytic: miss cost = mem time / cycle time; instr cost = cycles x IPC"],
    )
