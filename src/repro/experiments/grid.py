"""Design-space grid sweeps.

The paper explores its design space one axis at a time (entries in
Figures 3-3/3-5, cache size in 3-6/4-6, line size in 3-7/4-7).  This
module generalises that: a cartesian sweep over cache sizes, line
sizes, and helper structures, returning a long-format table — the tool
a designer points at their own workload after reading the paper.

::

    from repro.experiments.grid import GridSpec, sweep_grid

    spec = GridSpec(
        cache_sizes_kb=[4, 8, 16],
        line_sizes=[16, 32],
        structures={"none": None, "vc4": lambda: VictimCache(4)},
    )
    table = sweep_grid(traces, spec, side="d")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..buffers.base import L1Augmentation
from ..buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from ..buffers.victim_cache import VictimCache
from ..common.config import CacheConfig
from ..common.errors import ConfigurationError
from ..common.stats import percent
from .base import TableResult
from .runner import run_level

__all__ = ["GridSpec", "sweep_grid", "default_structures"]

StructureFactory = Optional[Callable[[], L1Augmentation]]


def default_structures() -> Dict[str, StructureFactory]:
    """The paper's §5 shortlist as a ready-made structure axis."""
    return {
        "none": None,
        "vc4": lambda: VictimCache(4),
        "sb1x4": lambda: StreamBuffer(4),
        "sb4x4": lambda: MultiWayStreamBuffer(4, 4),
    }


@dataclass
class GridSpec:
    """Axes of a design-space sweep."""

    cache_sizes_kb: Sequence[int] = (4,)
    line_sizes: Sequence[int] = (16,)
    structures: Dict[str, StructureFactory] = field(default_factory=default_structures)
    #: Optional warm-up prefix (references) for steady-state numbers.
    warmup: int = 0

    def __post_init__(self) -> None:
        if not self.cache_sizes_kb or not self.line_sizes or not self.structures:
            raise ConfigurationError("every grid axis needs at least one point")

    @property
    def num_points(self) -> int:
        return len(self.cache_sizes_kb) * len(self.line_sizes) * len(self.structures)


def _parallel_rows(traces, spec: GridSpec, side: str, jobs: int) -> Optional[List[List]]:
    """Grid rows via the engine, or None when the sweep is not job-able.

    Every grid point must be expressible as a picklable job: each trace
    needs a registry rebuild recipe (:meth:`TraceKey.of`) and each
    structure factory must produce a spec-describable structure
    (:func:`spec_of`).  Anything else — hand-built traces, ablation
    structures with exotic options — falls back to the serial path,
    surfaced as a :class:`~repro.telemetry.core.ParallelFallbackWarning`
    plus a ``fallback_reason`` entry on the active telemetry scope.
    """
    from ..telemetry.core import record_fallback
    from .engine import LevelJob, TraceKey, run_jobs, spec_of

    trace_keys = [TraceKey.of(trace) for trace in traces]
    if any(key is None for key in trace_keys):
        unkeyed = [trace.name for trace, key in zip(traces, trace_keys) if key is None]
        record_fallback(
            "sweep_grid",
            f"trace(s) without a registry rebuild recipe: {', '.join(unkeyed)}",
            stacklevel=4,
        )
        return None
    structure_specs = {}
    for label, factory in spec.structures.items():
        structure_specs[label] = spec_of(factory() if factory is not None else None)
        if structure_specs[label] is None:
            record_fallback(
                "sweep_grid",
                f"structure {label!r} carries non-default options the engine "
                "cannot describe as a job spec",
                stacklevel=4,
            )
            return None
    job_list = []
    points = []
    for trace, key in zip(traces, trace_keys):
        for size_kb in spec.cache_sizes_kb:
            for line_size in spec.line_sizes:
                for label in spec.structures:
                    job_list.append(
                        LevelJob(
                            trace=key,
                            side=side,
                            size_bytes=size_kb * 1024,
                            line_size=line_size,
                            structure=structure_specs[label],
                            warmup=spec.warmup,
                        )
                    )
                    points.append((trace.name, size_kb, line_size, label))
    summaries = run_jobs(job_list, jobs=jobs)
    return [
        [
            name,
            size_kb,
            line_size,
            label,
            round(summary.miss_rate, 4),
            round(summary.percent_removed, 1),
            round(summary.effective_miss_rate, 4),
        ]
        for (name, size_kb, line_size, label), summary in zip(points, summaries)
    ]


def sweep_grid(
    traces,
    spec: GridSpec,
    side: str = "d",
    experiment_id: str = "grid",
    jobs: Optional[int] = None,
) -> TableResult:
    """Run every grid point for every trace; long-format results.

    Columns: trace, cache KB, line B, structure, miss rate, % removed,
    % reaching the next level.  Suitable for pivoting/plotting by the
    caller; each row is one independent simulation.

    With ``jobs > 1`` (or ``REPRO_JOBS`` set) the grid points fan out
    over the parallel engine; row order and values are identical to the
    serial sweep.  Traces without a registry recipe or structures the
    engine cannot describe fall back to serial execution.
    """
    from .engine import resolve_jobs

    traces = list(traces)
    rows: Optional[List[List]] = None
    if resolve_jobs(jobs) > 1:
        rows = _parallel_rows(traces, spec, side, resolve_jobs(jobs))
    if rows is None:
        rows = []
        for trace in traces:
            addresses = trace.stream(side)
            for size_kb in spec.cache_sizes_kb:
                for line_size in spec.line_sizes:
                    config = CacheConfig(size_kb * 1024, line_size)
                    for label, factory in spec.structures.items():
                        augmentation = factory() if factory is not None else None
                        run = run_level(
                            addresses, config, augmentation, warmup=spec.warmup
                        )
                        stats = run.stats
                        rows.append(
                            [
                                trace.name,
                                size_kb,
                                line_size,
                                label,
                                round(stats.miss_rate, 4),
                                round(percent(stats.removed_misses, stats.demand_misses), 1),
                                round(stats.effective_miss_rate, 4),
                            ]
                        )
    return TableResult(
        experiment_id=experiment_id,
        title=f"design-space grid sweep ({side}-side, {spec.num_points} points/trace)",
        headers=[
            "trace",
            "cache KB",
            "line B",
            "structure",
            "miss rate",
            "% removed",
            "effective rate",
        ],
        rows=rows,
        notes=["long format: one row per (trace, geometry, structure) simulation"],
    )
