"""Design-space grid sweeps.

The paper explores its design space one axis at a time (entries in
Figures 3-3/3-5, cache size in 3-6/4-6, line size in 3-7/4-7).  This
module generalises that: a cartesian sweep over cache sizes, line
sizes, and helper structures, returning a long-format table — the tool
a designer points at their own workload after reading the paper.

::

    from repro.experiments.grid import GridSpec, sweep_grid
    from repro.specs import VictimCacheSpec

    spec = GridSpec(
        cache_sizes_kb=[4, 8, 16],
        line_sizes=[16, 32],
        structures={"none": None, "vc4": VictimCacheSpec(4)},
    )
    table = sweep_grid(traces, spec, side="d")

Structure axis values are declarative :class:`~repro.specs.StructureSpec`
instances (preferred — any registered structure, any options, always
parallelizable) or legacy zero-argument factories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..buffers.base import L1Augmentation
from ..common.config import CacheConfig
from ..common.errors import ConfigurationError
from ..common.stats import percent
from ..specs import (
    MultiWayStreamBufferSpec,
    SpecError,
    StreamBufferSpec,
    StructureSpec,
    VictimCacheSpec,
    build,
    describe,
)
from .base import TableResult
from .runner import run_level

__all__ = ["GridSpec", "sweep_grid", "default_structures"]

#: A structure axis value: None (bare baseline), a declarative
#: :class:`~repro.specs.StructureSpec` (preferred — always job-able), or
#: a zero-argument factory returning a live structure (legacy style;
#: job-able only when the built structure is spec-describable).
StructureFactory = Union[None, StructureSpec, Callable[[], L1Augmentation]]


def default_structures() -> Dict[str, StructureFactory]:
    """The paper's §5 shortlist as a ready-made structure axis."""
    return {
        "none": None,
        "vc4": VictimCacheSpec(4),
        "sb1x4": StreamBufferSpec(4),
        "sb4x4": MultiWayStreamBufferSpec(4, 4),
    }


def _build_structure_value(value: StructureFactory) -> Optional[L1Augmentation]:
    """Live structure for one axis value (spec, factory, or None)."""
    if value is None or isinstance(value, StructureSpec):
        return build(value)
    return value()


def _spec_of_value(value: StructureFactory) -> Optional[StructureSpec]:
    """Declarative spec for one axis value, raising SpecError if none exists."""
    if value is None or isinstance(value, StructureSpec):
        return value
    return describe(value())


@dataclass
class GridSpec:
    """Axes of a design-space sweep."""

    cache_sizes_kb: Sequence[int] = (4,)
    line_sizes: Sequence[int] = (16,)
    structures: Dict[str, StructureFactory] = field(default_factory=default_structures)
    #: Optional warm-up prefix (references) for steady-state numbers.
    warmup: int = 0

    def __post_init__(self) -> None:
        if not self.cache_sizes_kb or not self.line_sizes or not self.structures:
            raise ConfigurationError("every grid axis needs at least one point")

    @property
    def num_points(self) -> int:
        return len(self.cache_sizes_kb) * len(self.line_sizes) * len(self.structures)


def _parallel_rows(
    traces, spec: GridSpec, side: str, jobs: int, warn: bool = True, resilience=None
) -> Optional[List[List]]:
    """Grid rows via the engine, or None when the sweep is not job-able.

    Every grid point must be expressible as a picklable job: each trace
    needs a workload spec (:func:`~repro.specs.workload_spec_of` — any
    spec-built trace qualifies, registry or pattern) and each structure
    axis value must be declarative — a
    :class:`~repro.specs.StructureSpec`, or a factory whose product
    :func:`~repro.specs.describe` can turn into one.  Anything else —
    hand-built traces, structures holding live callables, unregistered
    classes — falls back to the serial path, surfaced (when *warn* is
    set, i.e. the caller actually asked for parallelism) as a
    :class:`~repro.telemetry.core.ParallelFallbackWarning` plus a
    ``fallback_reason`` entry on the active telemetry scope.
    """
    from ..specs import SystemSpec, TraceSpec, unkeyed_reason
    from ..telemetry.core import record_fallback
    from .engine import LevelJob, run_jobs

    trace_keys = [TraceSpec.of(trace) for trace in traces]
    if any(key is None for key in trace_keys):
        if warn:
            reasons = [
                unkeyed_reason(trace) for trace, key in zip(traces, trace_keys) if key is None
            ]
            record_fallback(
                "sweep_grid",
                f"trace(s) without a workload spec: {'; '.join(reasons)}",
                stacklevel=4,
            )
        return None
    structure_specs = {}
    for label, value in spec.structures.items():
        try:
            structure_specs[label] = _spec_of_value(value)
        except SpecError as exc:
            if warn:
                record_fallback(
                    "sweep_grid",
                    f"structure {label!r} cannot be described as a declarative spec: {exc}",
                    stacklevel=4,
                )
            return None
    job_list = []
    points = []
    for trace, key in zip(traces, trace_keys):
        for size_kb in spec.cache_sizes_kb:
            for line_size in spec.line_sizes:
                config = CacheConfig(size_kb * 1024, line_size)
                for label in spec.structures:
                    job_list.append(
                        LevelJob(
                            SystemSpec.for_level(
                                key,
                                config,
                                side=side,
                                structure=structure_specs[label],
                                warmup=spec.warmup,
                            )
                        )
                    )
                    points.append((trace.name, size_kb, line_size, label))
    summaries = run_jobs(job_list, jobs=jobs, resilience=resilience)
    return [
        [
            name,
            size_kb,
            line_size,
            label,
            round(summary.miss_rate, 4),
            round(summary.percent_removed, 1),
            round(summary.effective_miss_rate, 4),
        ]
        for (name, size_kb, line_size, label), summary in zip(points, summaries)
    ]


def sweep_grid(
    traces,
    spec: GridSpec,
    side: str = "d",
    experiment_id: str = "grid",
    jobs: Optional[int] = None,
    resilience=None,
) -> TableResult:
    """Run every grid point for every trace; long-format results.

    Columns: trace, cache KB, line B, structure, miss rate, % removed,
    % reaching the next level.  Suitable for pivoting/plotting by the
    caller; each row is one independent simulation.

    With ``jobs > 1`` (or ``REPRO_JOBS`` set) the grid points fan out
    over the parallel engine; row order and values are identical to the
    serial sweep.  Traces without a registry recipe or structures the
    engine cannot describe fall back to serial execution.  An active
    result store also routes the grid through the engine at ``jobs=1``,
    so every point is memoized — a repeated grid re-simulates nothing.
    """
    from ..store import current_store
    from .engine import resolve_jobs

    traces = list(traces)
    rows: Optional[List[List]] = None
    if resolve_jobs(jobs) > 1 or current_store() is not None:
        rows = _parallel_rows(
            traces,
            spec,
            side,
            resolve_jobs(jobs),
            warn=resolve_jobs(jobs) > 1,
            resilience=resilience,
        )
    if rows is None:
        rows = []
        for trace in traces:
            addresses = trace.stream(side)
            for size_kb in spec.cache_sizes_kb:
                for line_size in spec.line_sizes:
                    config = CacheConfig(size_kb * 1024, line_size)
                    for label, value in spec.structures.items():
                        augmentation = _build_structure_value(value)
                        run = run_level(
                            addresses, config, augmentation, warmup=spec.warmup
                        )
                        stats = run.stats
                        rows.append(
                            [
                                trace.name,
                                size_kb,
                                line_size,
                                label,
                                round(stats.miss_rate, 4),
                                round(percent(stats.removed_misses, stats.demand_misses), 1),
                                round(stats.effective_miss_rate, 4),
                            ]
                        )
    return TableResult(
        experiment_id=experiment_id,
        title=f"design-space grid sweep ({side}-side, {spec.num_points} points/trace)",
        headers=[
            "trace",
            "cache KB",
            "line B",
            "structure",
            "miss rate",
            "% removed",
            "effective rate",
        ],
        rows=rows,
        notes=["long format: one row per (trace, geometry, structure) simulation"],
    )
