"""Ablations of the paper's design choices (DESIGN.md X-ABL).

Four questions the paper answers by construction, checked by measurement:

1. **Swap vs. copy on a victim-cache hit.**  The paper swaps (exclusive
   contents).  Keeping a copy instead duplicates lines, wasting entries
   exactly the way §3.2 says miss caching does.
2. **Victim cache vs. miss cache at equal size** — the paper's headline
   §3.2 claim, summarised per benchmark here.
3. **LRU vs. FIFO replacement in the victim cache.**  LRU is assumed
   throughout the paper.
4. **Head-only vs. all-entry comparators in a stream buffer.**  §4.1
   restricts matching to the head ("elements removed from the buffer
   must be removed strictly in sequence"); a full comparator lets the
   buffer skip over lines already in the cache — the quasi-sequential
   extension the paper leaves to future designs.
5. **DM + victim cache vs. 2-way set-associativity** — the alternative
   the paper rejects for cycle-time reasons; the miss-rate comparison
   shows how much of 2-way's benefit a 4-entry VC recovers.

All ablations run the data side of the baseline 4KB/16B cache.
"""

from __future__ import annotations

from typing import Optional

from ..buffers.miss_cache import MissCache
from ..buffers.stream_buffer import StreamBuffer
from ..buffers.victim_cache import VictimCache
from ..caches.fully_associative import ReplacementPolicy
from ..caches.set_associative import SetAssociativeCache
from ..common.config import CacheConfig
from ..common.stats import percent
from .base import TableResult
from .runner import run_level
from .workloads import suite

__all__ = ["run"]

CONFIG = CacheConfig(4096, 16)


def _removed_percent(addresses, augmentation) -> float:
    run = run_level(addresses, CONFIG, augmentation)
    return percent(run.removed, run.misses)


def _two_way_miss_reduction(addresses) -> float:
    """Percent of direct-mapped misses avoided by a 2-way cache."""
    direct = run_level(addresses, CONFIG)
    two_way = SetAssociativeCache(CONFIG, ways=2)
    misses = 0
    for address in addresses:
        if not two_way.access_and_fill(address >> CONFIG.offset_bits):
            misses += 1
    return percent(direct.misses - misses, direct.misses)


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    rows = []
    for trace in traces:
        addresses = trace.data_addresses
        rows.append(
            [
                trace.name,
                round(_removed_percent(addresses, VictimCache(4)), 1),
                round(_removed_percent(addresses, VictimCache(4, swap_on_hit=False)), 1),
                round(_removed_percent(addresses, MissCache(4)), 1),
                round(
                    _removed_percent(
                        addresses, VictimCache(4, policy=ReplacementPolicy.FIFO)
                    ),
                    1,
                ),
                round(_removed_percent(addresses, StreamBuffer(4)), 1),
                round(_removed_percent(addresses, StreamBuffer(4, head_only=False)), 1),
                round(_two_way_miss_reduction(addresses), 1),
            ]
        )
    return TableResult(
        experiment_id="ablations",
        title="Design-choice ablations, data side (percent of misses removed/avoided)",
        headers=[
            "program",
            "VC4 swap",
            "VC4 copy",
            "MC4",
            "VC4 FIFO",
            "SB head-only",
            "SB full-cmp",
            "2-way assoc",
        ],
        rows=rows,
        notes=[
            "swap >= copy (exclusivity) and VC >= MC (paper SS3.2);",
            "VC4 LRU == VC4 FIFO exactly: a swap-mode victim cache never refreshes",
            "an entry in place (hits remove it), so recency order equals insertion order;",
            "full-comparator stream buffers edge out head-only ones;",
            "2-way associativity removes conflicts at a hit-time cost the paper rejects",
        ],
    )
