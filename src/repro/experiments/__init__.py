"""One experiment module per table/figure of the paper.

Each module exposes ``run(traces=None, scale=None, seed=0)`` returning a
:class:`~repro.experiments.base.TableResult` or
:class:`~repro.experiments.base.FigureResult`.  :data:`ALL_EXPERIMENTS`
maps experiment ids to those functions; the ``repro-experiments`` CLI
(:mod:`repro.experiments.cli`) runs them by name.
"""

from typing import Callable, Dict

from . import (
    ablations,
    ext_associativity,
    ext_bandwidth,
    ext_cold_start,
    ext_inclusion,
    ext_l2_victim,
    ext_marginal_utility,
    ext_multiprog,
    ext_os,
    ext_penalty_sweep,
    ext_prefetch_traffic,
    ext_stride,
    ext_timing_fidelity,
    ext_write_policy,
    figure_2_2,
    figure_3_1,
    figure_3_3,
    figure_3_5,
    figure_3_6,
    figure_3_7,
    figure_4_1,
    figure_4_3,
    figure_4_5,
    figure_4_6,
    figure_4_7,
    figure_5_1,
    overlap_5,
    table_1_1,
    table_2_1,
    table_2_2,
)
from .base import FigureResult, Series, TableResult
from .plotting import plot_figure, render_ascii_chart
from .checks import CheckOutcome, ShapeCheck, render_outcomes, run_checks
from .engine import (
    EntrySweepJob,
    ExperimentJob,
    ExperimentOutcome,
    LevelJob,
    LevelSummary,
    RunSweepJob,
    TraceKey,
    build_structure,
    default_jobs,
    execute_job,
    resolve_jobs,
    run_experiments,
    run_jobs,
    spec_of,
    validate_jobs,
)
from .grid import GridSpec, default_structures, sweep_grid
from .timeseries import miss_rate_series, removal_rate_series
from .report import generate_report, write_report
from .runner import run_level, run_system
from .sweeps import (
    EntrySweep,
    RunLengthSweep,
    batch_entry_sweeps,
    batch_run_sweeps,
    miss_cache_sweep,
    stream_buffer_run_sweep,
    victim_cache_sweep,
)
from .workloads import materialized_trace, suite

#: Experiment id -> run function, in the paper's presentation order.
ALL_EXPERIMENTS: Dict[str, Callable] = {
    "table_1_1": table_1_1.run,
    "table_2_1": table_2_1.run,
    "table_2_2": table_2_2.run,
    "figure_2_2": figure_2_2.run,
    "figure_3_1": figure_3_1.run,
    "figure_3_3": figure_3_3.run,
    "figure_3_5": figure_3_5.run,
    "figure_3_6": figure_3_6.run,
    "figure_3_7": figure_3_7.run,
    "figure_4_1": figure_4_1.run,
    "figure_4_3": figure_4_3.run,
    "figure_4_5": figure_4_5.run,
    "figure_4_6": figure_4_6.run,
    "figure_4_7": figure_4_7.run,
    "figure_5_1": figure_5_1.run,
    "overlap_5": overlap_5.run,
    "ext_l2_victim": ext_l2_victim.run,
    "ext_bandwidth": ext_bandwidth.run,
    "ext_associativity": ext_associativity.run,
    "ext_marginal_utility": ext_marginal_utility.run,
    "ext_cold_start": ext_cold_start.run,
    "ext_penalty_sweep": ext_penalty_sweep.run,
    "ext_prefetch_traffic": ext_prefetch_traffic.run,
    "ext_timing_fidelity": ext_timing_fidelity.run,
    "ext_inclusion": ext_inclusion.run,
    "ext_stride": ext_stride.run,
    "ext_multiprog": ext_multiprog.run,
    "ext_os": ext_os.run,
    "ext_write_policy": ext_write_policy.run,
    "ablations": ablations.run,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "TableResult",
    "FigureResult",
    "Series",
    "suite",
    "materialized_trace",
    "run_level",
    "run_system",
    "TraceKey",
    "LevelJob",
    "LevelSummary",
    "EntrySweepJob",
    "RunSweepJob",
    "ExperimentJob",
    "ExperimentOutcome",
    "build_structure",
    "spec_of",
    "default_jobs",
    "resolve_jobs",
    "execute_job",
    "run_jobs",
    "run_experiments",
    "batch_entry_sweeps",
    "batch_run_sweeps",
    "miss_cache_sweep",
    "victim_cache_sweep",
    "stream_buffer_run_sweep",
    "EntrySweep",
    "RunLengthSweep",
    "plot_figure",
    "render_ascii_chart",
    "generate_report",
    "write_report",
    "ShapeCheck",
    "CheckOutcome",
    "run_checks",
    "render_outcomes",
    "GridSpec",
    "sweep_grid",
    "default_structures",
    "miss_rate_series",
    "removal_rate_series",
]
