"""Methodology check: cold-start share of the measured miss rates.

The paper's traces run 23M-145M instructions, so compulsory (first-
reference) misses are a negligible share of its Table 2-2 rates; the
synthetic traces are ~500x shorter, so some of each measured rate is
cold start.  This experiment quantifies it by measuring every benchmark
twice: cold (as Table 2-2 does) and steady-state (the first third of
the trace replayed as warm-up, counters reset, remainder measured).

The delta column is the honest error bar on the calibration; the
steady-state conflict share shows that the *conflict* behaviour — what
the paper's structures attack — is not a cold-start artifact.
"""

from __future__ import annotations

from typing import Optional

from ..common.config import CacheConfig
from .base import TableResult
from .runner import run_level
from .workloads import suite

__all__ = ["run"]

CONFIG = CacheConfig(4096, 16)


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> TableResult:
    traces = traces if traces is not None else suite(scale, seed)
    rows = []
    for trace in traces:
        addresses = trace.data_addresses
        warmup = len(addresses) // 3
        cold = run_level(addresses, CONFIG, classify=True)
        warm = run_level(addresses, CONFIG, classify=True, warmup=warmup)
        cold_rate = cold.stats.miss_rate
        warm_rate = warm.stats.miss_rate
        rows.append(
            [
                trace.name,
                round(cold_rate, 4),
                round(warm_rate, 4),
                round(100.0 * (cold_rate - warm_rate) / max(1e-12, cold_rate), 1),
                round(cold.classifier.percent_conflict, 1),
                round(warm.classifier.percent_conflict, 1),
            ]
        )
    return TableResult(
        experiment_id="ext_cold_start",
        title="Methodology: cold vs. steady-state data miss rates (warm-up = first third)",
        headers=[
            "program",
            "cold rate",
            "steady rate",
            "cold-start share %",
            "cold confl %",
            "steady confl %",
        ],
        rows=rows,
        notes=[
            "the paper's 10^8-instruction traces amortize cold start to noise;",
            "at synthetic scale this table is the error bar on Table 2-2's",
            "reproduction, and shows conflict shares survive steady state",
        ],
    )
