"""Extension: the paper's question re-asked on modern access classes.

The paper's victim-cache and stream-buffer results (Figures 3-5, 3-8)
come from six 1990-era program traces.  A cache in front of millions of
users sees different streams: Zipf-popular key lookups, hot/cold
working sets, bursty background scans, pointer chasing through linked
structures — and, above all, *mixtures* of tenants with skewed
popularity and phase churn.  This experiment replays the paper's
comparison — direct-mapped baseline vs. a 4-entry victim cache vs. a
4-way stream buffer — across one parameterized workload spec per access
class plus a multi-tenant mix, reporting per class:

* the baseline data-cache miss rate;
* percent of misses removed and the absolute miss-rate delta for each
  helper structure.

Every row is three :class:`~repro.experiments.engine.LevelJob` points
carrying the full workload spec, so the batch parallelizes under
``--jobs``/``REPRO_JOBS``, hits the result store warm, and can be
re-asked through ``repro-serve`` — the same path as every registry
benchmark.  Expected shape: the victim cache wins on conflict-prone
classes (hotspot, zipfian, the mix), the stream buffer on sequential
and bursty streams, and neither helps much on pure pointer chasing —
the paper's §5 "programs with many references to linked structures"
caveat, restated on modern traffic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..common.config import CacheConfig
from ..specs import (
    BurstySpec,
    HotspotSpec,
    MultiWayStreamBufferSpec,
    PointerChaseSpec,
    SequentialSpec,
    SystemSpec,
    TenantMixSpec,
    UniformRandomSpec,
    VictimCacheSpec,
    WorkloadSpec,
    ZipfianSpec,
)
from .base import TableResult
from .engine import LevelJob, run_jobs

__all__ = ["run", "default_workloads", "CONFIG", "STRUCTURES"]

CONFIG = CacheConfig(4096, 16)

#: The paper's two §3 winners at their headline sizes.
STRUCTURES = [
    ("vc4", VictimCacheSpec(entries=4)),
    ("sb4x4", MultiWayStreamBufferSpec(ways=4, entries=4)),
]

#: Reference count per access class: large enough for stable miss
#: rates, small enough that the full table simulates in seconds.
_LENGTH = 30_000


def default_workloads(scale: Optional[int] = None, seed: int = 0) -> List[WorkloadSpec]:
    """One default-parameter spec per access class, plus the tenant mix.

    *scale* overrides the per-class reference count; *seed* re-rolls
    every stream (each class stays deterministic per seed).
    """
    length = scale if scale is not None else _LENGTH
    classes: List[WorkloadSpec] = [
        SequentialSpec(length=length, seed=seed),
        UniformRandomSpec(length=length, seed=seed),
        ZipfianSpec(length=length, seed=seed),
        HotspotSpec(length=length, seed=seed),
        BurstySpec(length=length, seed=seed),
        PointerChaseSpec(length=length, seed=seed),
    ]
    tenants = tuple(
        type(spec)(length=length, seed=seed)
        for spec in (ZipfianSpec(), HotspotSpec(), SequentialSpec(), PointerChaseSpec())
    )
    classes.append(
        TenantMixSpec(tenants=tenants, length=length, phase_length=max(1, length // 4),
                      seed=seed)
    )
    return classes


def _jobs_for(workloads: Sequence[WorkloadSpec]) -> List[LevelJob]:
    jobs: List[LevelJob] = []
    for workload in workloads:
        for structure in [None] + [spec for _, spec in STRUCTURES]:
            system = SystemSpec.for_level(workload, CONFIG, side="d", structure=structure)
            assert system is not None  # WorkloadSpec input never returns None
            jobs.append(LevelJob(system))
    return jobs


def run(
    traces=None,
    scale: Optional[int] = None,
    seed: int = 0,
    workloads: Optional[Sequence[WorkloadSpec]] = None,
) -> TableResult:
    """Victim cache vs. stream buffer across the modern access classes.

    *traces* (the shared benchmark suite) is accepted for CLI harness
    compatibility and ignored — this experiment builds its own streams
    from workload specs.  Pass *workloads* (e.g. via ``--workload``) to
    replay the comparison on any spec list; default is one spec per
    access class plus a four-tenant mix.
    """
    del traces  # spec-driven: the benchmark suite plays no part here
    specs = list(workloads) if workloads else default_workloads(scale=scale, seed=seed)
    summaries = run_jobs(_jobs_for(specs))
    per_point = 1 + len(STRUCTURES)
    rows: List[List[object]] = []
    for index, workload in enumerate(specs):
        base, *helped = summaries[index * per_point: (index + 1) * per_point]
        row: List[object] = [workload.label, base.miss_rate]
        for summary in helped:
            row.append(summary.percent_removed)
            # Post-structure miss rate (misses that still go to the next
            # level) against the bare baseline: negative is better.
            row.append(summary.effective_miss_rate - base.miss_rate)
        rows.append(row)
    headers = ["workload", "base d-miss"]
    for label, _ in STRUCTURES:
        headers.append(f"{label} removed%")
        headers.append(f"{label} Δmiss")
    return TableResult(
        experiment_id="ext_modern_workloads",
        title="Victim cache & stream buffer on modern access classes (4KB/16B d-cache)",
        headers=headers,
        rows=rows,
        notes=[
            "Each row replays one declarative workload spec on the data side: "
            "direct-mapped baseline, +4-entry victim cache, +4-way/4-entry "
            "stream buffer.",
            "removed% = demand misses removed by the structure; Δmiss = "
            "change in demand miss rate vs. the baseline (negative is better).",
            "Every point is an engine job carrying the full workload spec — "
            "it parallelizes, memoizes in the result store, and is servable "
            "by repro-serve.",
        ],
    )
