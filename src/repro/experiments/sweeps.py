"""Single-pass multi-size sweep evaluators.

The entry-count sweeps of Figures 3-3 and 3-5 would naively cost one
full simulation per size per benchmark per side.  Two properties of the
paper's structures eliminate that cost:

* The L1 array is refilled on **every** miss, so its state evolution —
  and hence the miss stream and victim stream — is independent of the
  helper structure (§3.1/§3.2, and the contract of
  :class:`~repro.buffers.base.L1Augmentation`).
* Miss and victim caches are fully-associative **LRU**, so they obey the
  LRU stack property: fed the same insertion stream, the k-entry cache
  holds exactly the top-k of the LRU stack.

Therefore one run with a large structure that records the LRU stack
depth of every hit yields the hit count of *every* smaller size: a
k-entry structure captures exactly the hits at depths ``< k``.  The
equivalence with independent per-size simulation is verified by property
tests (``tests/test_sweep_equivalence.py``).

Stream-buffer run sweeps (Figures 4-3/4-5) follow the paper directly:
one unbounded-run simulation records, for every buffer hit, the line's
offset from the allocating miss; the cumulative histogram *is* the
"misses removed vs. lines the buffer may prefetch" curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..buffers.miss_cache import MissCache
from ..buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from ..buffers.victim_cache import VictimCache
from ..common.config import CacheConfig
from .runner import run_level

__all__ = [
    "EntrySweep",
    "miss_cache_sweep",
    "victim_cache_sweep",
    "RunLengthSweep",
    "stream_buffer_run_sweep",
    "batch_entry_sweeps",
    "batch_run_sweeps",
]


@dataclass
class EntrySweep:
    """Result of a single-pass miss/victim-cache size sweep."""

    #: Baseline direct-mapped demand misses (independent of the helper).
    total_misses: int
    #: Baseline conflict misses (3C classification).
    conflict_misses: int
    #: hits_by_entries[k] = misses removed by a k-entry structure,
    #: for k = 0 .. max_entries (index 0 is always 0).
    hits_by_entries: List[int]

    def removed(self, entries: int) -> int:
        return self.hits_by_entries[entries]

    def percent_of_conflicts_removed(self, entries: int) -> float:
        if self.conflict_misses == 0:
            return 0.0
        return 100.0 * self.hits_by_entries[entries] / self.conflict_misses

    def percent_of_misses_removed(self, entries: int) -> float:
        if self.total_misses == 0:
            return 0.0
        return 100.0 * self.hits_by_entries[entries] / self.total_misses


def _entry_sweep(
    byte_addresses: Sequence[int],
    config: CacheConfig,
    structure,
    max_entries: int,
) -> EntrySweep:
    run = run_level(byte_addresses, config, structure, classify=True)
    depths = structure.hit_depths
    assert depths is not None
    hits_by_entries = [depths.count_at_most(k - 1) if k else 0 for k in range(max_entries + 1)]
    return EntrySweep(
        total_misses=run.misses,
        conflict_misses=run.conflicts,
        hits_by_entries=hits_by_entries,
    )


def miss_cache_sweep(
    byte_addresses: Sequence[int], config: CacheConfig, max_entries: int = 15
) -> EntrySweep:
    """Figure 3-3's sweep: miss caches of 1..max_entries entries."""
    structure = MissCache(max_entries + 1, track_depths=True)
    return _entry_sweep(byte_addresses, config, structure, max_entries)


def victim_cache_sweep(
    byte_addresses: Sequence[int], config: CacheConfig, max_entries: int = 15
) -> EntrySweep:
    """Figure 3-5's sweep: victim caches of 1..max_entries entries."""
    structure = VictimCache(max_entries + 1, track_depths=True)
    return _entry_sweep(byte_addresses, config, structure, max_entries)


@dataclass
class RunLengthSweep:
    """Result of a stream-buffer run-length sweep."""

    total_misses: int
    #: removed_by_run[k] = buffer hits at run offsets <= k (cumulative),
    #: for k = 0 .. max_run.
    removed_by_run: List[int]

    def percent_removed(self, run_length: int) -> float:
        if self.total_misses == 0:
            return 0.0
        return 100.0 * self.removed_by_run[run_length] / self.total_misses


def stream_buffer_run_sweep(
    byte_addresses: Sequence[int],
    config: CacheConfig,
    ways: int = 1,
    entries: int = 4,
    max_run: int = 16,
) -> RunLengthSweep:
    """Figures 4-3/4-5: cumulative misses removed vs. stream-run length.

    As in the paper, a single unbounded-run simulation is histogrammed
    by the offset of each buffer hit from its allocating miss.
    """
    if ways == 1:
        buffer = StreamBuffer(entries=entries, track_run_offsets=True)
    else:
        buffer = MultiWayStreamBuffer(ways=ways, entries=entries, track_run_offsets=True)
    run = run_level(byte_addresses, config, buffer)
    offsets = buffer.run_offsets
    assert offsets is not None
    removed = [offsets.count_at_most(k) for k in range(max_run + 1)]
    return RunLengthSweep(total_misses=run.misses, removed_by_run=removed)


# -- engine-backed batch evaluation ------------------------------------------
#
# One figure evaluates a sweep per (benchmark, side) — a dozen
# independent simulations.  These helpers describe the whole batch as
# picklable engine jobs so it can fan out over worker processes; with
# jobs=1 they run inline and are exactly equivalent to calling the
# single-sweep functions in a loop.


def batch_entry_sweeps(
    traces,
    config: CacheConfig,
    kind: str = "miss",
    sides: Sequence[str] = ("i", "d"),
    max_entries: int = 15,
    jobs=None,
    resilience=None,
) -> List[EntrySweep]:
    """Entry sweeps for every (side, trace) pair, in nested order.

    Results are ordered ``for side in sides: for trace in traces`` —
    the iteration order of Figures 3-3/3-5.  Traces without a registry
    rebuild recipe run serially in the calling process; when that
    overrides a ``jobs > 1`` request the fallback is surfaced with a
    :class:`~repro.telemetry.core.ParallelFallbackWarning` and recorded
    on the active telemetry scope.

    An active result store also routes the batch through the engine at
    ``jobs=1``: inline execution there is equivalent to this loop, and
    engine jobs are what the store can memoize.
    """
    from ..specs import SystemSpec, TraceSpec
    from ..store import current_store
    from .engine import EntrySweepJob, resolve_jobs, run_jobs

    traces = list(traces)
    pairs = [(side, trace) for side in sides for trace in traces]
    keys = {id(trace): TraceSpec.of(trace) for trace in traces}
    sweep_fn = {"miss": miss_cache_sweep, "victim": victim_cache_sweep}[kind]
    if resolve_jobs(jobs) > 1 or current_store() is not None:
        if all(key is not None for key in keys.values()):
            job_list = [
                EntrySweepJob(
                    system=SystemSpec.for_level(keys[id(trace)], config, side=side),
                    kind=kind,
                    max_entries=max_entries,
                )
                for side, trace in pairs
            ]
            return run_jobs(job_list, jobs=jobs, resilience=resilience)
        if resolve_jobs(jobs) > 1:
            _note_fallback("batch_entry_sweeps", traces, keys)
    return [sweep_fn(trace.stream(side), config, max_entries) for side, trace in pairs]


def _note_fallback(component: str, traces, keys) -> None:
    """Warn + record that a parallel batch degraded to serial execution."""
    from ..specs import unkeyed_reason
    from ..telemetry.core import record_fallback

    reasons = [unkeyed_reason(trace) for trace in traces if keys[id(trace)] is None]
    record_fallback(
        component,
        f"trace(s) without a workload spec: {'; '.join(reasons)}",
        stacklevel=4,
    )


def batch_run_sweeps(
    traces,
    config: CacheConfig,
    sides: Sequence[str] = ("i", "d"),
    ways: int = 1,
    entries: int = 4,
    max_run: int = 16,
    jobs=None,
    resilience=None,
) -> List[RunLengthSweep]:
    """Stream-buffer run sweeps for every (side, trace) pair, nested order.

    Serial-fallback and result-store semantics match
    :func:`batch_entry_sweeps`.
    """
    from ..specs import SystemSpec, TraceSpec
    from ..store import current_store
    from .engine import RunSweepJob, resolve_jobs, run_jobs

    traces = list(traces)
    pairs = [(side, trace) for side in sides for trace in traces]
    keys = {id(trace): TraceSpec.of(trace) for trace in traces}
    if resolve_jobs(jobs) > 1 or current_store() is not None:
        if all(key is not None for key in keys.values()):
            job_list = [
                RunSweepJob(
                    system=SystemSpec.for_level(keys[id(trace)], config, side=side),
                    ways=ways,
                    entries=entries,
                    max_run=max_run,
                )
                for side, trace in pairs
            ]
            return run_jobs(job_list, jobs=jobs, resilience=resilience)
        if resolve_jobs(jobs) > 1:
            _note_fallback("batch_run_sweeps", traces, keys)
    return [
        stream_buffer_run_sweep(
            trace.stream(side), config, ways=ways, entries=entries, max_run=max_run
        )
        for side, trace in pairs
    ]
