"""Figure 3-6: victim cache performance vs. direct-mapped cache size.

Average percent of data-cache conflict misses removed by 1/2/4/15-entry
victim caches, as the data cache grows from 1KB to 128KB (16-byte lines
throughout), plus the percent of misses that are conflicts at each size
for reference.  Paper landmark: smaller direct-mapped caches benefit
most — the victim cache shrinks relative to the cache, and tight mapping
conflicts become rarer as sets multiply.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.config import CacheConfig
from ..common.stats import safe_div
from .base import FigureResult, Series
from .sweeps import victim_cache_sweep
from .workloads import suite

__all__ = ["run", "CACHE_SIZES_KB", "VC_ENTRIES"]

CACHE_SIZES_KB = [1, 2, 4, 8, 16, 32, 64, 128]
VC_ENTRIES = [1, 2, 4, 15]


def run(traces=None, scale: Optional[int] = None, seed: int = 0) -> FigureResult:
    traces = traces if traces is not None else suite(scale, seed)
    removal_curves: List[List[float]] = [[] for _ in VC_ENTRIES]
    conflict_percent: List[float] = []
    for size_kb in CACHE_SIZES_KB:
        config = CacheConfig(size_kb * 1024, 16)
        per_entry_percents: List[List[float]] = [[] for _ in VC_ENTRIES]
        conflict_shares: List[float] = []
        for trace in traces:
            sweep = victim_cache_sweep(trace.data_addresses, config, max(VC_ENTRIES))
            if sweep.conflict_misses == 0:
                continue
            for slot, entries in enumerate(VC_ENTRIES):
                per_entry_percents[slot].append(sweep.percent_of_conflicts_removed(entries))
            conflict_shares.append(100.0 * safe_div(sweep.conflict_misses, sweep.total_misses))
        for slot in range(len(VC_ENTRIES)):
            values = per_entry_percents[slot]
            removal_curves[slot].append(sum(values) / len(values) if values else 0.0)
        conflict_percent.append(
            sum(conflict_shares) / len(conflict_shares) if conflict_shares else 0.0
        )
    series = [
        Series(f"{entries}-entry victim cache", CACHE_SIZES_KB, removal_curves[slot])
        for slot, entries in enumerate(VC_ENTRIES)
    ]
    series.append(Series("percent conflict misses", CACHE_SIZES_KB, conflict_percent))
    return FigureResult(
        experiment_id="figure_3_6",
        title="Victim cache performance vs. direct-mapped data cache size",
        xlabel="cache size (KB)",
        ylabel="percent of conflict misses removed (avg over benchmarks)",
        series=series,
        notes=["paper: smaller direct-mapped caches benefit the most from victim caching"],
    )
