"""repro — a reproduction of Jouppi's victim-cache / stream-buffer paper.

"Improving Direct-Mapped Cache Performance by the Addition of a Small
Fully-Associative Cache and Prefetch Buffers" proposed three structures
behind a direct-mapped first-level cache: miss caches, victim caches, and
(multi-way) stream buffers.  This package provides:

* the structures themselves (:mod:`repro.buffers`);
* the cache models and two-level hierarchy simulator they plug into
  (:mod:`repro.caches`, :mod:`repro.hierarchy`);
* 3C miss classification (:mod:`repro.classify`);
* the six synthetic benchmark workloads standing in for the paper's
  proprietary traces (:mod:`repro.traces`);
* one experiment module per table/figure of the paper
  (:mod:`repro.experiments`).

Quickstart::

    from repro import MemorySystem, VictimCache, build_trace

    trace = build_trace("ccom").materialize()
    system = MemorySystem(daugmentation=VictimCache(entries=4))
    result = system.run(trace)
    print(f"data miss rate {result.dmiss_rate:.3f}, "
          f"{result.dstats.removed_misses} misses removed by the victim cache")
"""

from .buffers import (
    CompositeAugmentation,
    L1Augmentation,
    MissCache,
    MultiWayStreamBuffer,
    MultiWayStrideBuffer,
    NullAugmentation,
    PrefetchingCache,
    PrefetchScheme,
    StreamBuffer,
    StrideStreamBuffer,
    VictimCache,
)
from .caches import (
    Cache,
    DirectMappedCache,
    FullyAssociativeCache,
    ReplacementPolicy,
    SetAssociativeCache,
)
from .classify import MissClassifier
from .common import (
    Access,
    AccessKind,
    AccessOutcome,
    CacheConfig,
    MissKind,
    SystemConfig,
    TimingConfig,
    baseline_system,
)
from .hierarchy import (
    CacheLevel,
    LevelStats,
    MemorySystem,
    SystemPerformance,
    SystemResult,
    evaluate_performance,
)
from . import telemetry
from .specs import (
    CompositeSpec,
    MissCacheSpec,
    MultiWayStreamBufferSpec,
    MultiWayStrideBufferSpec,
    SpecError,
    StreamBufferSpec,
    StrideBufferSpec,
    StructureSpec,
    SystemSpec,
    TraceSpec,
    VictimCacheSpec,
    build,
    describe,
    spec_hash,
)
from .traces import (
    BENCHMARK_NAMES,
    CustomWorkload,
    MaterializedTrace,
    Trace,
    build_suite,
    build_trace,
    get_workload,
    list_workloads,
    load_trace,
    save_trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # common
    "Access",
    "AccessKind",
    "AccessOutcome",
    "MissKind",
    "CacheConfig",
    "SystemConfig",
    "TimingConfig",
    "baseline_system",
    # caches
    "Cache",
    "DirectMappedCache",
    "FullyAssociativeCache",
    "ReplacementPolicy",
    "SetAssociativeCache",
    # buffers
    "L1Augmentation",
    "NullAugmentation",
    "CompositeAugmentation",
    "MissCache",
    "VictimCache",
    "StreamBuffer",
    "MultiWayStreamBuffer",
    "StrideStreamBuffer",
    "MultiWayStrideBuffer",
    "PrefetchingCache",
    "PrefetchScheme",
    # classification
    "MissClassifier",
    # hierarchy
    "CacheLevel",
    "LevelStats",
    "MemorySystem",
    "SystemResult",
    "SystemPerformance",
    "evaluate_performance",
    # specs
    "SpecError",
    "StructureSpec",
    "MissCacheSpec",
    "VictimCacheSpec",
    "StreamBufferSpec",
    "MultiWayStreamBufferSpec",
    "StrideBufferSpec",
    "MultiWayStrideBufferSpec",
    "CompositeSpec",
    "TraceSpec",
    "SystemSpec",
    "build",
    "describe",
    "spec_hash",
    # telemetry
    "telemetry",
    # traces
    "CustomWorkload",
    "Trace",
    "MaterializedTrace",
    "BENCHMARK_NAMES",
    "build_trace",
    "build_suite",
    "get_workload",
    "list_workloads",
    "load_trace",
    "save_trace",
]
