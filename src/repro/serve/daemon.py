"""The ``repro-serve`` daemon: HTTP routes over :class:`AdvisorService`.

Endpoints
---------

=====================  ======================================================
``GET /healthz``        liveness: ``{"status": "ok", "inflight": n}``
``GET /readyz``         readiness: 200 ``ready``, 503 ``degraded`` (store
                        failures absorbed or breaker open) or ``draining``
``GET /v1/stats``       serving counters, admission knobs, breaker state,
                        store state, store root
``POST /v1/advise``     one advisor query (see :func:`~.service.parse_query`);
                        ``"stream": true`` switches the response to a chunked
                        NDJSON event stream (accepted → heartbeat/progress →
                        result)
=====================  ======================================================

Failure mapping: malformed queries → 400, unknown paths → 404, admission
rejection → 429 with a ``Retry-After`` header, open circuit breaker →
503 with ``Retry-After``, engine failure (after the PR 5 resilience
layer has retried/recovered) → 503, expired deadline budget → 504,
request during graceful drain → 503 + ``Connection: close``.  The daemon
never dies with a request: every handler error becomes a JSON error
response and a bumped counter.

``drain()`` implements graceful shutdown (the CLI wires it to SIGTERM):
stop accepting connections, answer in-flight requests, refuse new
requests on persistent connections with 503, and give everything up to
``drain_deadline`` seconds to finish before force-closing.

On close the daemon can fold its serving counters into a telemetry run
record (``--emit-metrics``), so a service run lands in the same JSON
Lines stream the batch CLI emits.
"""

from __future__ import annotations

import asyncio
import sys
import time
from dataclasses import dataclass
from typing import Optional

from ..common.config import baseline_system
from ..specs import SystemSpec
from ..telemetry.core import MetricsScope
from ..telemetry.record import append_record, build_run_record
from .breaker import CircuitBreaker
from .httpio import ChunkedJsonWriter, HttpError, Request, read_request, send_json
from .service import (
    AdviseError,
    AdvisorService,
    BadRequestError,
    BreakerOpenError,
    OverloadedError,
    parse_query,
)

__all__ = ["ServeConfig", "CacheAdvisorDaemon"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything the daemon needs to listen and admit work."""

    host: str = "127.0.0.1"
    #: 0 asks the OS for an ephemeral port (printed at startup; handy
    #: for tests and parallel CI jobs).
    port: int = 0
    #: Bound on distinct cold keys simulating concurrently.
    max_inflight: int = 4
    #: Worker processes per engine batch (1 = inline in the sim thread).
    jobs: int = 1
    #: Seconds between streamed heartbeats.
    heartbeat: float = 1.0
    #: Seconds an idle keep-alive connection may sit between requests
    #: before the server closes it.
    keepalive_timeout: float = 30.0
    #: Server-side ceiling on per-request deadline budgets, seconds
    #: (None = unbounded; clients may still send ``deadline_ms``).
    request_deadline: Optional[float] = None
    #: Seconds a graceful drain waits for in-flight work before
    #: force-closing connections.
    drain_deadline: float = 10.0
    #: Cold-dispatch failures within ``breaker_window`` seconds that open
    #: the circuit breaker (0 disables the breaker).
    breaker_threshold: int = 5
    breaker_window: float = 30.0
    #: Seconds an open breaker waits before admitting a half-open probe.
    breaker_cooldown: float = 5.0
    #: Seconds a degraded store waits between recovery probes.
    store_probe_interval: float = 5.0
    #: JSON Lines path for the shutdown run record (None = don't emit).
    emit_metrics: Optional[str] = None


class CacheAdvisorDaemon:
    """Asyncio server wiring HTTP to one :class:`AdvisorService`."""

    def __init__(self, config: ServeConfig, store=None) -> None:
        self.config = config
        breaker = None
        if config.breaker_threshold > 0:
            breaker = CircuitBreaker(
                threshold=config.breaker_threshold,
                window=config.breaker_window,
                cooldown=config.breaker_cooldown,
            )
        self.service = AdvisorService(
            store=store,
            max_inflight=config.max_inflight,
            jobs=config.jobs,
            heartbeat=config.heartbeat,
            request_deadline=config.request_deadline,
            breaker=breaker,
            store_probe_interval=config.store_probe_interval,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._started = time.perf_counter()
        self.port: Optional[int] = None
        #: Open connections, so shutdown can end idle keep-alive sessions.
        self._connections: set = set()
        #: Requests currently inside ``_dispatch`` (drain waits on these).
        self._active_requests = 0
        self._draining = False

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self._started = time.perf_counter()
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() must run first"
        print(
            f"repro-serve listening on http://{self.config.host}:{self.port} "
            f"(max_inflight={self.config.max_inflight}, jobs={self.config.jobs})",
            file=sys.stderr,
            flush=True,
        )
        async with self._server:
            await self._server.serve_forever()

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self, deadline: Optional[float] = None) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, then close.

        Steps: mark the daemon draining (``/readyz`` answers 503,
        requests arriving on persistent connections are refused with 503
        + ``Connection: close``), close the listening socket, then wait
        up to *deadline* (default ``config.drain_deadline``) seconds for
        active requests, inflight simulations, and open connections to
        finish on their own before force-closing what remains.  Safe to
        call more than once; ``aclose()`` afterwards flushes counters to
        the run record as usual.
        """
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()  # cancels serve_forever, stops accepting
        loop = asyncio.get_running_loop()
        budget = self.config.drain_deadline if deadline is None else deadline
        drain_until = loop.time() + max(0.0, budget)
        while loop.time() < drain_until:
            if (
                not self._active_requests
                and not self.service.inflight
                and not self._connections
            ):
                break
            await asyncio.sleep(0.02)
        # Whatever is still open missed the drain deadline (or is an
        # idle keep-alive session): force-close it.  close() is
        # idempotent, so racing the handlers' own finally-close (or the
        # idle reaper) is harmless.
        for writer in list(self._connections):
            writer.close()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            # Idle keep-alive connections would stall wait_closed (it
            # waits on handlers in newer asyncio); closing them delivers
            # EOF to their pending read and the handlers drain out.
            for writer in list(self._connections):
                writer.close()
            await self._server.wait_closed()
            self._server = None
        self.service.close()
        if self.config.emit_metrics:
            self._emit_run_record(self.config.emit_metrics)

    def _emit_run_record(self, path: str) -> None:
        """One telemetry run record for the whole serving session."""
        scope = MetricsScope()
        scope.record_serving(self.service.counters.as_dict())
        record = build_run_record(
            scope,
            run="serve",
            config=baseline_system(),
            wall_time_s=time.perf_counter() - self._started,
            jobs=self.config.jobs,
            spec=SystemSpec(trace=None, config=baseline_system()),
        )
        append_record(path, record)

    # -- request handling ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader), timeout=self.config.keepalive_timeout
                    )
                except asyncio.TimeoutError:
                    return  # idle keep-alive connection expired
                except (HttpError, asyncio.IncompleteReadError) as exc:
                    await send_json(writer, 400, {"error": f"bad request: {exc}"})
                    return
                if request is None:
                    return  # clean EOF between requests
                if self._draining:
                    # The in-flight request (read before the drain began)
                    # completed; anything arriving after is refused and
                    # the persistent connection ends.
                    self.service.counters.drain_rejects += 1
                    await send_json(
                        writer,
                        503,
                        {"error": "draining: daemon is shutting down"},
                        extra_headers={"Retry-After": "1"},
                        keep_alive=False,
                    )
                    return
                keep_alive = request.wants_keep_alive
                self._active_requests += 1
                try:
                    consumed = await self._dispatch(request, writer, keep_alive)
                finally:
                    self._active_requests -= 1
                if consumed or not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away; nothing to answer
        except Exception as exc:  # pragma: no cover - last-ditch guard
            self.service.counters.failed += 1
            try:
                await send_json(writer, 500, {"error": f"internal error: {exc}"})
            except (ConnectionError, OSError):
                pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool = False
    ) -> bool:
        """Answer one request; True when the response consumed the connection."""
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            await send_json(
                writer,
                200,
                {"status": "ok", "inflight": self.service.inflight},
                keep_alive=keep_alive,
            )
            return False
        if route == ("GET", "/readyz"):
            status, payload = self.readiness()
            await send_json(writer, status, payload, keep_alive=keep_alive)
            return False
        if route == ("GET", "/v1/stats"):
            await send_json(writer, 200, self.stats_payload(), keep_alive=keep_alive)
            return False
        if route == ("POST", "/v1/advise"):
            return await self._advise(request, writer, keep_alive)
        if request.path in ("/healthz", "/readyz", "/v1/stats", "/v1/advise"):
            await send_json(
                writer,
                405,
                {"error": f"{request.method} not allowed here"},
                keep_alive=keep_alive,
            )
            return False
        await send_json(
            writer,
            404,
            {"error": f"no such endpoint: {request.path}"},
            keep_alive=keep_alive,
        )
        return False

    def readiness(self) -> "tuple[int, dict]":
        """``(status, payload)`` for ``/readyz``.

        200 means "route traffic here"; 503 distinguishes
        live-but-degraded (store failures absorbed, or breaker open) and
        draining from dead (connection refused) for load balancers and
        the loadgen's ``wait_ready``.
        """
        breaker = self.service.breaker_payload()
        store_state = self.service.store_state
        if self._draining:
            state = "draining"
        elif store_state != "ok" or breaker.get("state") == "open":
            state = "degraded"
        else:
            state = "ready"
        payload = {
            "status": state,
            "store": store_state,
            "breaker": breaker.get("state", "disabled"),
            "inflight": self.service.inflight,
        }
        return (200 if state == "ready" else 503), payload

    def stats_payload(self) -> dict:
        return {
            "serving": self.service.counters.as_dict(),
            "inflight": self.service.inflight,
            "max_inflight": self.service.max_inflight,
            "jobs": self.service.jobs,
            "retry_after_hint_s": round(self.service.retry_after, 3),
            "uptime_s": round(time.perf_counter() - self._started, 3),
            "store_root": str(self.service.store.root),
            "store_state": self.service.store_state,
            "breaker": self.service.breaker_payload(),
            "draining": self._draining,
            "request_deadline_s": self.config.request_deadline,
        }

    async def _advise(
        self, request: Request, writer: asyncio.StreamWriter, keep_alive: bool = False
    ) -> bool:
        cached = await self.service.cached_bad_request(request.body)
        if cached is not None:
            await send_json(writer, 400, {"error": cached}, keep_alive=keep_alive)
            return False
        try:
            query = parse_query(request.json())
        except (HttpError, BadRequestError) as exc:
            await self.service.record_bad_request(request.body, str(exc))
            await send_json(writer, 400, {"error": str(exc)}, keep_alive=keep_alive)
            return False
        if query.stream:
            await self._advise_streaming(query, writer)
            return True
        try:
            payload = await self.service.advise(query)
        except (OverloadedError, BreakerOpenError) as exc:
            await send_json(
                writer,
                exc.status,
                {"error": str(exc), "retry_after_s": exc.retry_after},
                extra_headers={"Retry-After": str(max(1, int(exc.retry_after)))},
                keep_alive=keep_alive,
            )
            return False
        except AdviseError as exc:
            await send_json(
                writer, exc.status, {"error": str(exc)}, keep_alive=keep_alive
            )
            return False
        await send_json(writer, 200, payload, keep_alive=keep_alive)
        return False

    async def _advise_streaming(self, query, writer: asyncio.StreamWriter) -> None:
        events = self.service.advise_stream(query)
        chunked = ChunkedJsonWriter(writer)
        try:
            first = await events.__anext__()
        except StopAsyncIteration:  # pragma: no cover - stream always yields
            await send_json(writer, 500, {"error": "empty event stream"})
            return
        except (OverloadedError, BreakerOpenError) as exc:
            await send_json(
                writer,
                exc.status,
                {"error": str(exc), "retry_after_s": exc.retry_after},
                extra_headers={"Retry-After": str(max(1, int(exc.retry_after)))},
            )
            return
        except AdviseError as exc:
            await send_json(writer, exc.status, {"error": str(exc)})
            return
        await chunked.start(200)
        await chunked.send(first)
        try:
            async for event in events:
                await chunked.send(event)
        except AdviseError as exc:
            # The stream already started; deliver the failure as a final
            # event — the HTTP status is long gone.
            await chunked.send({"event": "error", "status": exc.status, "error": str(exc)})
        finally:
            await events.aclose()
            await chunked.close()
