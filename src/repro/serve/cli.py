"""Command-line entry point for the cache-advisor daemon.

Usage::

    repro-serve --result-store ~/.cache/repro-results
    repro-serve --port 8123 --max-inflight 8 --heartbeat 0.5
    repro-serve --port 0                     # ephemeral port, printed on stderr
    repro-serve --job-timeout 30 --retries 1 # resilience knobs, as in the batch CLI
    repro-serve --request-deadline 5         # 504 past a 5s per-request budget
    repro-serve --breaker-threshold 3 --breaker-cooldown 10

The daemon requires a result store — it *is* the warm path — so either
``--result-store DIR`` or ``$REPRO_RESULT_STORE`` must name one;
``--jobs``, ``--job-timeout``, ``--retries``, and ``--backend`` travel
through the same environment variables as ``repro-experiments`` so
engine code behaves identically under the daemon, and
``--request-deadline`` defaults from ``$REPRO_REQUEST_DEADLINE`` the
same way.  Malformed ``--port`` or ``--max-inflight`` values exit with
status 2, like every other CLI boundary in this repo.

Signals: SIGINT stops the daemon immediately (KeyboardInterrupt, as
before); SIGTERM triggers a *graceful drain* — stop accepting, answer
in-flight requests up to ``--drain-deadline`` seconds, then exit 0 —
so orchestrators that send TERM before KILL get clean handoffs.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import sys
from typing import List, Optional

from ..common.errors import ConfigurationError
from .daemon import CacheAdvisorDaemon, ServeConfig

__all__ = [
    "ENV_REQUEST_DEADLINE",
    "build_parser",
    "validate_port",
    "validate_max_inflight",
    "validate_request_deadline",
    "main",
]

#: Environment default for ``--request-deadline`` (seconds).
ENV_REQUEST_DEADLINE = "REPRO_REQUEST_DEADLINE"


def validate_port(port: int) -> int:
    """CLI-boundary port validation: 0 (ephemeral) through 65535."""
    if port < 0 or port > 65535:
        raise ConfigurationError(f"--port must be between 0 and 65535, got {port}")
    return port


def validate_max_inflight(value: int) -> int:
    """CLI-boundary admission-bound validation (reject, don't clamp)."""
    if value < 1:
        raise ConfigurationError(f"--max-inflight must be at least 1, got {value}")
    return value


def validate_heartbeat(value: float) -> float:
    if value <= 0:
        raise ConfigurationError(f"--heartbeat must be positive, got {value:g}")
    return value


def validate_request_deadline(value: Optional[float]) -> Optional[float]:
    """Flag value, else ``$REPRO_REQUEST_DEADLINE``, else None (unbounded)."""
    if value is None:
        raw = os.environ.get(ENV_REQUEST_DEADLINE, "").strip()
        if not raw:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise ConfigurationError(
                f"{ENV_REQUEST_DEADLINE} must be a number of seconds, got {raw!r}"
            ) from None
    if value <= 0:
        raise ConfigurationError(
            f"--request-deadline must be positive, got {value:g}"
        )
    return value


def validate_drain_deadline(value: float) -> float:
    if value < 0:
        raise ConfigurationError(
            f"--drain-deadline must be >= 0, got {value:g}"
        )
    return value


def validate_breaker(threshold: int, window: float, cooldown: float) -> int:
    """Breaker knobs: threshold 0 disables, window/cooldown must be positive."""
    if threshold < 0:
        raise ConfigurationError(
            f"--breaker-threshold must be >= 0 (0 disables), got {threshold}"
        )
    if window <= 0:
        raise ConfigurationError(f"--breaker-window must be positive, got {window:g}")
    if cooldown <= 0:
        raise ConfigurationError(
            f"--breaker-cooldown must be positive, got {cooldown:g}"
        )
    return threshold


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Async cache-advisor daemon: answers spec+trace queries from the "
            "result store, coalescing duplicate cold requests into single "
            "engine simulations."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: loopback)")
    parser.add_argument(
        "--port", type=int, default=8123,
        help="TCP port; 0 picks an ephemeral port (default: 8123)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=4,
        help="max distinct cold simulations in flight before 429 (default: 4)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="engine worker processes per simulation (default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=1.0,
        help="seconds between streamed heartbeats (default: 1.0)",
    )
    parser.add_argument(
        "--result-store", metavar="DIR", default=None,
        help="result store directory (default: $REPRO_RESULT_STORE; required)",
    )
    parser.add_argument(
        "--job-timeout", metavar="SECONDS", type=float, default=None,
        help="wall-clock ceiling per engine job (default: REPRO_JOB_TIMEOUT or unbounded)",
    )
    parser.add_argument(
        "--retries", type=int, default=None,
        help="re-run attempts per failed engine job (default: REPRO_RETRIES or 2)",
    )
    parser.add_argument(
        "--backend", metavar="BACKEND", default=None,
        help="simulation kernel backend: auto, python, or numpy (default: REPRO_BACKEND or auto)",
    )
    parser.add_argument(
        "--request-deadline", metavar="SECONDS", type=float, default=None,
        help=(
            "server-side ceiling on per-request time budgets; requests past "
            "it answer 504 (default: $REPRO_REQUEST_DEADLINE or unbounded)"
        ),
    )
    parser.add_argument(
        "--drain-deadline", metavar="SECONDS", type=float, default=10.0,
        help=(
            "seconds a SIGTERM graceful drain waits for in-flight work "
            "before force-closing connections (default: 10)"
        ),
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=5,
        help=(
            "cold-dispatch failures inside --breaker-window that open the "
            "circuit breaker; 0 disables it (default: 5)"
        ),
    )
    parser.add_argument(
        "--breaker-window", metavar="SECONDS", type=float, default=30.0,
        help="sliding window for breaker failure counting (default: 30)",
    )
    parser.add_argument(
        "--breaker-cooldown", metavar="SECONDS", type=float, default=5.0,
        help="seconds an open breaker waits before a half-open probe (default: 5)",
    )
    parser.add_argument(
        "--emit-metrics", metavar="PATH", default=None,
        help="append one serving run record (JSON Lines) to PATH on shutdown",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from ..kernels import ENV_BACKEND, validate_backend
    from ..experiments.engine import (
        ENV_JOB_TIMEOUT,
        ENV_RETRIES,
        validate_job_timeout,
        validate_jobs,
        validate_retries,
    )

    try:
        port = validate_port(args.port)
        max_inflight = validate_max_inflight(args.max_inflight)
        heartbeat = validate_heartbeat(args.heartbeat)
        jobs = validate_jobs(args.jobs)
        job_timeout = validate_job_timeout(args.job_timeout)
        retries = validate_retries(args.retries)
        backend = None if args.backend is None else validate_backend(args.backend)
        request_deadline = validate_request_deadline(args.request_deadline)
        drain_deadline = validate_drain_deadline(args.drain_deadline)
        breaker_threshold = validate_breaker(
            args.breaker_threshold, args.breaker_window, args.breaker_cooldown
        )
    except ConfigurationError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    # Knobs travel through the environment so engine worker processes
    # (and the sim threads' run_jobs calls) resolve the same values.
    if args.job_timeout is not None:
        os.environ[ENV_JOB_TIMEOUT] = str(job_timeout)
    if args.retries is not None:
        os.environ[ENV_RETRIES] = str(retries)
    if backend is not None:
        os.environ[ENV_BACKEND] = backend
    from ..store import current_store, set_store

    if args.result_store:
        set_store(args.result_store)
    if current_store() is None:
        print(
            "repro-serve: a result store is required (pass --result-store DIR "
            "or set $REPRO_RESULT_STORE)",
            file=sys.stderr,
        )
        return 2
    config = ServeConfig(
        host=args.host,
        port=port,
        max_inflight=max_inflight,
        jobs=jobs,
        heartbeat=heartbeat,
        request_deadline=request_deadline,
        drain_deadline=drain_deadline,
        breaker_threshold=breaker_threshold,
        breaker_window=args.breaker_window,
        breaker_cooldown=args.breaker_cooldown,
        emit_metrics=args.emit_metrics,
    )
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:
        pass
    return 0


async def _serve(config: ServeConfig) -> None:
    daemon = CacheAdvisorDaemon(config)
    await daemon.start()
    loop = asyncio.get_running_loop()
    drain_task: List[Optional[asyncio.Task]] = [None]

    def _on_sigterm() -> None:
        if drain_task[0] is None:
            print("repro-serve: SIGTERM received, draining", file=sys.stderr, flush=True)
            drain_task[0] = loop.create_task(daemon.drain())

    forever = asyncio.ensure_future(daemon.serve_forever())

    def _on_sigint() -> None:
        # Immediate stop (Ctrl-C semantics).  Registered explicitly
        # because a daemon backgrounded by a non-interactive shell
        # inherits SIGINT as ignored — kill -INT (the CI smoke job's
        # shutdown) must still stop it and emit the run record.
        forever.cancel()

    try:
        # SIGTERM drains gracefully; SIGINT stops immediately.
        loop.add_signal_handler(signal.SIGTERM, _on_sigterm)
        loop.add_signal_handler(signal.SIGINT, _on_sigint)
    except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix loop
        pass
    try:
        await forever
    except asyncio.CancelledError:
        # drain() closed the listener (or SIGINT cancelled us).
        pass
    finally:
        if drain_task[0] is not None:
            await drain_task[0]
        await daemon.aclose()


if __name__ == "__main__":
    sys.exit(main())
