"""Load generator for the cache-advisor daemon, with latency percentiles.

ROADMAP's "heavy traffic from millions of users" becomes a measured
claim here: :func:`run_loadgen` drives the daemon through its three
request classes and reports per-class latency percentiles —

* **warm** — keys already in the result store (pure store reads);
* **cold** — fresh keys, each a real engine simulation;
* **duplicate** — bursts of concurrent queries for one cold key, which
  the daemon must coalesce into a single simulation;
* **deadline** — cold keys carrying a tight ``deadline_ms`` budget
  (expected to 504 when simulations run long);
* **bad** — deliberately malformed queries (expected to 400).

Every HTTP response lands in its class's ``statuses`` histogram;
``errors`` counts *transport* failures only (connection drops,
client-side timeouts), so a daemon that degrades into typed 4xx/5xx
answers — the whole point of the resilience layer — is distinguishable
from one that falls over.

The ``repro-serve-loadgen`` console script wraps it for the CI smoke
and chaos jobs (``--assert-coalescing`` fails the run unless the
daemon's counters prove warm hits cost zero simulations and duplicate
bursts coalesced; ``--assert-resilience`` fails it on any untyped 500
or transport-level drop), and ``benchmarks/test_serve_latency.py``
reuses :func:`run_loadgen` to pin p50/p95/p99 into ``BENCH_core.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..common.errors import ConfigurationError
from .httpio import JsonClient, request_json

__all__ = [
    "percentiles",
    "ClassReport",
    "LoadReport",
    "run_loadgen",
    "wait_ready",
    "check_coalescing",
    "check_resilience",
    "main",
]


def percentiles(samples: List[float], points=(50.0, 95.0, 99.0)) -> Dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` by linear interpolation."""
    if not samples:
        return {f"p{point:g}": 0.0 for point in points}
    ordered = sorted(samples)
    result: Dict[str, float] = {}
    for point in points:
        rank = (len(ordered) - 1) * point / 100.0
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        value = ordered[low] + (ordered[high] - ordered[low]) * (rank - low)
        result[f"p{point:g}"] = value
    return result


@dataclass
class ClassReport:
    """Latencies and outcomes of one request class (warm/cold/duplicate)."""

    name: str
    latencies_s: List[float] = field(default_factory=list)
    served_from: Dict[str, int] = field(default_factory=dict)
    #: HTTP status histogram, e.g. ``{"200": 20, "504": 3}``.
    statuses: Dict[str, int] = field(default_factory=dict)
    #: Transport failures only — connection drops, client timeouts.
    errors: int = 0
    rejected: int = 0

    @property
    def count(self) -> int:
        return len(self.latencies_s)

    @property
    def responses(self) -> int:
        """Requests that got *any* HTTP answer, typed errors included."""
        return sum(self.statuses.values())

    def observe(self, latency: float, source: str) -> None:
        self.latencies_s.append(latency)
        self.served_from[source] = self.served_from.get(source, 0) + 1

    def note_status(self, status: int) -> None:
        key = str(status)
        self.statuses[key] = self.statuses.get(key, 0) + 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.count,
            "errors": self.errors,
            "rejected": self.rejected,
            "statuses": dict(self.statuses),
            "served_from": dict(self.served_from),
            "latency_s": {
                key: round(value, 6) for key, value in percentiles(self.latencies_s).items()
            },
        }


@dataclass
class LoadReport:
    """Everything one load-generation run measured."""

    classes: Dict[str, ClassReport]
    server_stats: Dict[str, object]
    elapsed_s: float
    #: Round trips that reused an already-open keep-alive connection.
    reused_round_trips: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "elapsed_s": round(self.elapsed_s, 3),
            "reused_round_trips": self.reused_round_trips,
            "classes": {name: report.as_dict() for name, report in self.classes.items()},
            "server": self.server_stats,
        }

    def render(self) -> str:
        lines = [
            f"loadgen finished in {self.elapsed_s:.2f}s "
            f"({self.reused_round_trips} round trips on reused connections)"
        ]
        for name, report in self.classes.items():
            pct = percentiles(report.latencies_s)
            sources = " ".join(
                f"{source}:{count}" for source, count in sorted(report.served_from.items())
            )
            typed = " ".join(
                f"{code}:{count}"
                for code, count in sorted(report.statuses.items())
                if code != "200"
            )
            lines.append(
                f"  {name:<10} {report.count:>4} ok "
                f"p50 {pct['p50'] * 1e3:8.2f}ms  p95 {pct['p95'] * 1e3:8.2f}ms  "
                f"p99 {pct['p99'] * 1e3:8.2f}ms  [{sources}]"
                + (f"  typed:[{typed}]" if typed else "")
                + (f"  rejected:{report.rejected}" if report.rejected else "")
                + (f"  errors:{report.errors}" if report.errors else "")
            )
        serving = self.server_stats.get("serving", {})
        if serving:
            lines.append(
                "  server     "
                + " ".join(f"{key}:{value}" for key, value in sorted(serving.items()))
            )
        return "\n".join(lines)


def _query(trace: str, scale: Optional[int], seed: int, structure: Optional[str],
           warmup: int = 0) -> Dict[str, object]:
    return {
        "trace": {"name": trace, "scale": scale, "seed": seed},
        "structure": structure,
        "side": "d",
        "warmup": warmup,
    }


async def wait_ready(host: str, port: int, timeout: float = 20.0) -> None:
    """Poll ``/readyz`` until the daemon reports ready.

    Falls back to ``/healthz`` against daemons predating ``/readyz``
    (404/405 on the first probe).  The timeout error distinguishes a
    daemon that never listened (connection refused) from one that is
    listening but stuck degraded or draining — the two need different
    fixes, so the message should not conflate them.
    """
    deadline = time.perf_counter() + timeout
    path = "/readyz"
    last = "no response yet"
    while True:
        try:
            status, _, body = await request_json(host, port, "GET", path, timeout=2.0)
            if status == 200:
                return
            if status in (404, 405) and path == "/readyz":
                path = "/healthz"  # pre-/readyz daemon; liveness is the best we get
                continue
            state = body.get("status") if isinstance(body, dict) else None
            last = f"listening but {state or f'answering HTTP {status}'}"
        except (ConnectionError, OSError, asyncio.TimeoutError):
            last = "connection refused (daemon not listening)"
        if time.perf_counter() >= deadline:
            raise TimeoutError(
                f"repro-serve at {host}:{port} not ready after {timeout:g}s: {last}"
            )
        await asyncio.sleep(0.1)


async def _timed_advise(host: str, port: int, payload: Dict, report: ClassReport,
                        timeout: float, client: Optional[JsonClient] = None) -> None:
    started = time.perf_counter()
    try:
        if client is not None:
            status, _, body = await client.request(
                "POST", "/v1/advise", payload, timeout=timeout
            )
        else:
            status, _, body = await request_json(
                host, port, "POST", "/v1/advise", payload, timeout=timeout
            )
    except (ConnectionError, OSError, asyncio.TimeoutError):
        report.errors += 1
        return
    latency = time.perf_counter() - started
    report.note_status(status)
    if status == 200 and isinstance(body, dict):
        report.observe(latency, str(body.get("served_from", "unknown")))
    elif status == 429:
        report.rejected += 1
    # Other typed answers (400/503/504) live in the statuses histogram;
    # they are the daemon *working*, not a loadgen transport error.


async def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 8123,
    trace: str = "linpack",
    scale: Optional[int] = 2000,
    seed: int = 0,
    structure: Optional[str] = "vc4",
    warm_requests: int = 20,
    cold_requests: int = 3,
    duplicates: int = 4,
    deadline_requests: int = 0,
    deadline_ms: float = 50.0,
    bad_requests: int = 0,
    concurrency: int = 8,
    timeout: float = 120.0,
    warmup_key: bool = True,
) -> LoadReport:
    """Drive the request classes and collect a :class:`LoadReport`.

    Cold keys are synthesised by varying the spec's ``warmup`` field —
    same trace (no rematerialization cost), different ``spec_hash`` —
    starting above any key the warm phase primed.  The duplicate burst
    fires ``duplicates`` concurrent copies of one further fresh key.
    Deadline requests (fresh keys at ``warmup >= 200``, budget
    ``deadline_ms``) run *before* the cold phase so a chaos plan like
    ``slow_sim@0x3:3`` lands on them deterministically; bad requests
    send a query with a negative ``deadline_ms`` (always a 400) last.
    """
    started = time.perf_counter()
    classes = {
        "warm": ClassReport("warm"),
        "cold": ClassReport("cold"),
        "duplicate": ClassReport("duplicate"),
        "deadline": ClassReport("deadline"),
        "bad": ClassReport("bad"),
    }
    base = _query(trace, scale, seed, structure)
    if warmup_key:
        # Prime the warm key (not measured): first touch simulates.
        prime = ClassReport("prime")
        await _timed_advise(host, port, base, prime, timeout)
        if prime.errors or not prime.count:
            raise RuntimeError(
                f"priming request failed against {host}:{port}: "
                f"statuses={prime.statuses} transport_errors={prime.errors}"
            )
    gate = asyncio.Semaphore(max(1, concurrency))
    # One persistent keep-alive connection per concurrency slot: requests
    # check a client out of the pool so connections are reused across the
    # whole run instead of handshaking per request.
    pool = [JsonClient(host, port) for _ in range(max(1, concurrency))]
    idle: asyncio.Queue = asyncio.Queue()
    for client in pool:
        idle.put_nowait(client)

    async def gated(payload: Dict, report: ClassReport) -> None:
        async with gate:
            client = await idle.get()
            try:
                await _timed_advise(host, port, payload, report, timeout, client=client)
            finally:
                idle.put_nowait(client)

    try:
        await asyncio.gather(
            *(gated(dict(base), classes["warm"]) for _ in range(warm_requests))
        )
        for index in range(deadline_requests):
            payload = _query(trace, scale, seed, structure, warmup=200 + index)
            payload["deadline_ms"] = deadline_ms
            await gated(payload, classes["deadline"])
        for index in range(cold_requests):
            await gated(
                _query(trace, scale, seed, structure, warmup=100 + index), classes["cold"]
            )
        duplicate_query = _query(trace, scale, seed, structure, warmup=100 + cold_requests)
        await asyncio.gather(
            *(gated(dict(duplicate_query), classes["duplicate"]) for _ in range(duplicates))
        )
        bad_payload = dict(base)
        bad_payload["deadline_ms"] = -1  # rejected by parse_query, always
        await asyncio.gather(
            *(gated(dict(bad_payload), classes["bad"]) for _ in range(bad_requests))
        )
        _, _, stats = await request_json(host, port, "GET", "/v1/stats", timeout=timeout)
    finally:
        for client in pool:
            await client.aclose()
    return LoadReport(
        classes=classes,
        server_stats=stats if isinstance(stats, dict) else {},
        elapsed_s=time.perf_counter() - started,
        reused_round_trips=sum(client.reused for client in pool),
    )


def check_coalescing(report: LoadReport) -> List[str]:
    """Acceptance probes for the smoke job; returns failure reasons."""
    failures = []
    warm = report.classes["warm"]
    if warm.count and warm.served_from.get("store", 0) != warm.count:
        failures.append(
            f"warm requests not all served from the store: {warm.served_from}"
        )
    duplicate = report.classes["duplicate"]
    if duplicate.count:
        simulated = duplicate.served_from.get("simulated", 0)
        coalesced = duplicate.served_from.get("coalesced", 0)
        # A follower that arrives after the shared job settled is served
        # from the store — still zero extra simulations, so both count.
        followers = coalesced + duplicate.served_from.get("store", 0)
        if simulated != 1:
            failures.append(
                f"duplicate burst ran {simulated} simulations (expected exactly 1): "
                f"{duplicate.served_from}"
            )
        if followers != duplicate.count - 1:
            failures.append(
                f"duplicate burst resolved {followers} of {duplicate.count - 1} "
                f"followers without a simulation: {duplicate.served_from}"
            )
    serving = report.server_stats.get("serving", {})
    observed = report.classes["duplicate"].served_from.get("coalesced", 0)
    if isinstance(serving, dict) and serving.get("coalesced", 0) < observed:
        failures.append(
            f"server counters disagree with observed coalescing "
            f"({observed} seen): {serving}"
        )
    return failures


def check_resilience(report: LoadReport) -> List[str]:
    """Acceptance probes for the chaos job; returns failure reasons.

    Passing means every failure the daemon produced was *typed*: no
    untyped 500s, no transport-level drops, deadline-budgeted requests
    actually 504ed, and malformed queries all 400ed.
    """
    failures = []
    totals: Dict[str, int] = {}
    for klass in report.classes.values():
        for code, count in klass.statuses.items():
            totals[code] = totals.get(code, 0) + count
    for code in sorted(totals):
        if code.startswith("5") and code not in ("503", "504"):
            failures.append(
                f"{totals[code]} untyped HTTP {code} responses (daemon bug): {totals}"
            )
    transport = {
        name: klass.errors for name, klass in report.classes.items() if klass.errors
    }
    if transport:
        failures.append(f"transport-level failures (connection drops): {transport}")
    deadline = report.classes.get("deadline")
    if deadline is not None and deadline.responses and not deadline.statuses.get("504"):
        failures.append(
            f"deadline-budgeted requests never 504ed: {deadline.statuses}"
        )
    bad = report.classes.get("bad")
    if bad is not None and bad.responses != bad.statuses.get("400", 0):
        failures.append(f"malformed queries not all answered 400: {bad.statuses}")
    return failures


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve-loadgen",
        description="Generate warm/cold/duplicate load against repro-serve and report latency percentiles.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8123)
    parser.add_argument("--trace", default="linpack", help="workload name (default: linpack)")
    parser.add_argument("--scale", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--structure", default="vc4",
        help='helper-structure code, e.g. vc4, mc4, sb4, sb4x4, or "none" (default: vc4)',
    )
    parser.add_argument("--warm-requests", type=int, default=20)
    parser.add_argument("--cold-requests", type=int, default=3)
    parser.add_argument("--duplicates", type=int, default=4)
    parser.add_argument(
        "--deadline-requests", type=int, default=0,
        help="cold keys sent with a --deadline-ms budget (default: 0)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=50.0,
        help="per-request deadline budget for the deadline class (default: 50)",
    )
    parser.add_argument(
        "--bad-requests", type=int, default=0,
        help="deliberately malformed queries, expected to 400 (default: 0)",
    )
    parser.add_argument(
        "--no-warmup-key", action="store_true",
        help="skip the unmeasured priming request (chaos runs: every sim is cold)",
    )
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument(
        "--wait-ready", type=float, default=20.0, metavar="SECONDS",
        help="poll /healthz up to SECONDS before generating load (default: 20)",
    )
    parser.add_argument("--json", action="store_true", help="print the report as JSON")
    parser.add_argument(
        "--assert-coalescing",
        action="store_true",
        help="exit 1 unless warm hits cost zero simulations and duplicates coalesced",
    )
    parser.add_argument(
        "--assert-resilience",
        action="store_true",
        help=(
            "exit 1 on any untyped 500, transport-level drop, missing 504 for "
            "deadline requests, or non-400 answer to malformed queries"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.port < 1 or args.port > 65535:
            raise ConfigurationError(f"--port must be between 1 and 65535, got {args.port}")
        for name in (
            "warm_requests",
            "cold_requests",
            "duplicates",
            "deadline_requests",
            "bad_requests",
            "concurrency",
        ):
            if getattr(args, name) < 0 or (name == "concurrency" and args.concurrency < 1):
                flag = "--" + name.replace("_", "-")
                raise ConfigurationError(f"{flag} must be non-negative, got {getattr(args, name)}")
    except ConfigurationError as exc:
        print(f"repro-serve-loadgen: {exc}", file=sys.stderr)
        return 2
    structure = None if args.structure in (None, "", "none") else args.structure

    async def _run() -> LoadReport:
        await wait_ready(args.host, args.port, timeout=args.wait_ready)
        return await run_loadgen(
            host=args.host,
            port=args.port,
            trace=args.trace,
            scale=args.scale,
            seed=args.seed,
            structure=structure,
            warm_requests=args.warm_requests,
            cold_requests=args.cold_requests,
            duplicates=args.duplicates,
            deadline_requests=args.deadline_requests,
            deadline_ms=args.deadline_ms,
            bad_requests=args.bad_requests,
            concurrency=args.concurrency,
            timeout=args.timeout,
            warmup_key=not args.no_warmup_key,
        )

    try:
        report = asyncio.run(_run())
    except (TimeoutError, RuntimeError, ConnectionError, OSError) as exc:
        print(f"repro-serve-loadgen: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(report.as_dict(), indent=2) if args.json else report.render())
    exit_code = 0
    if args.assert_coalescing:
        failures = check_coalescing(report)
        for failure in failures:
            print(f"repro-serve-loadgen: FAIL {failure}", file=sys.stderr)
        if failures:
            exit_code = 1
        else:
            print("repro-serve-loadgen: coalescing checks passed", file=sys.stderr)
    if args.assert_resilience:
        failures = check_resilience(report)
        for failure in failures:
            print(f"repro-serve-loadgen: FAIL {failure}", file=sys.stderr)
        if failures:
            exit_code = 1
        else:
            print("repro-serve-loadgen: resilience checks passed", file=sys.stderr)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
