"""The cache-advisor core: warm hits, coalesced cold misses, backpressure.

This is the paper's question — *"what does a small fully-associative
buffer buy this workload?"* — turned into an online service.  One
:class:`AdvisorService` sits over the three layers earlier PRs built:

* the **spec layer** keys each query: a request parses into a frozen
  :class:`~repro.specs.SystemSpec`, whose ``spec_hash`` plus the trace's
  content fingerprint is the request identity;
* the **result store** is the memo: a warm key is answered from disk
  with zero simulation;
* the **engine** is the backend: a cold key becomes one
  :class:`~repro.experiments.engine.LevelJob` executed (with the PR 5
  resilience layer — retries, timeouts, recorded degradations) on a
  bounded thread pool.

Three serving behaviours make it production-shaped rather than a CLI
with a socket:

* **Request coalescing** — N concurrent queries for the same cold key
  share *one* engine job; the result fans out to every waiter and is
  flushed to the store once.
* **Admission control** — at most ``max_inflight`` distinct cold keys
  simulate at once; one more cold query is rejected with a retry hint
  (HTTP 429 + ``Retry-After`` at the daemon layer) instead of queueing
  unboundedly.  Warm hits and coalesced joins are always admitted — they
  cost no simulation.
* **Progress streaming** — subscribers get heartbeat events while their
  simulation runs, fed by the engine's
  :class:`~repro.telemetry.core.JobProgress` callbacks plus a
  daemon-side ticker (a single inline job blocks its executor thread, so
  the engine alone cannot heartbeat mid-job).
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Optional

from ..common.config import baseline_system
from ..common.errors import ConfigurationError, UnknownWorkloadError
from ..specs import (
    SpecError,
    SystemSpec,
    TraceSpec,
    parse_structure_code,
    spec_hash,
    workload_from_dict,
)
from ..specs.structures import structure_from_dict
from ..store import ResultKey, ResultStore, current_store
from ..store.codec import BadQuery, encode_result
from ..traces.registry import get_workload
from ..experiments.engine import (
    LevelJob,
    ResilienceOptions,
    _store_key,
    resolve_resilience,
    run_jobs,
)

__all__ = [
    "AdviseError",
    "BadRequestError",
    "OverloadedError",
    "UpstreamError",
    "AdviseQuery",
    "ServingCounters",
    "AdvisorService",
]


class AdviseError(Exception):
    """Base class for request-path failures with an HTTP shape."""

    status = 500


class BadRequestError(AdviseError):
    """The query could not be parsed into a valid simulation point."""

    status = 400


class OverloadedError(AdviseError):
    """Admission control rejected a new cold simulation."""

    status = 429

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class UpstreamError(AdviseError):
    """The engine could not produce a result (after its own resilience)."""

    status = 503


@dataclass(frozen=True)
class AdviseQuery:
    """One parsed advisor query: the spec plus transport options."""

    spec: SystemSpec
    stream: bool = False


class ServingCounters:
    """Monotonic request-path counters, exposed at ``/v1/stats``.

    ``cold_misses`` counts *simulations dispatched* — the number the
    acceptance benchmark pins: a warm sweep leaves it untouched and N
    coalesced duplicates bump it exactly once.
    """

    __slots__ = (
        "requests", "warm_hits", "cold_misses", "coalesced",
        "rejected", "failed", "streams", "negative_hits",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.warm_hits = 0
        self.cold_misses = 0
        self.coalesced = 0
        self.rejected = 0
        self.failed = 0
        self.streams = 0
        self.negative_hits = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


@dataclass
class _Inflight:
    """One cold key being simulated, shared by every coalesced waiter."""

    future: asyncio.Future
    started: float
    waiters: int = 1
    #: Streaming subscribers; each receives JobProgress-shaped dicts and
    #: a ``None`` sentinel when the job settles.
    subscribers: List[asyncio.Queue] = field(default_factory=list)


def parse_query(payload: object) -> AdviseQuery:
    """Parse a request body into an :class:`AdviseQuery`.

    Accepted shapes (everything but the trace is optional)::

        {"spec": {...full canonical SystemSpec dict...}}
        {"trace": "ccom"
                  | {"name": "ccom", "scale": 20000, "seed": 0}
                  | {"kind": "zipfian", ...any workload-spec JSON...},
         "structure": "vc4" | {"kind": "victim_cache", ...} | null,
         "side": "d", "warmup": 0, "classify": false,
         "cache": {"size_bytes": 16384, "line_size": 32},
         "stream": false}

    The trace accepts inline workload-spec JSON — any registered kind,
    including the parameterized patterns and ``tenant_mix`` — alongside
    the registry-name shorthand.  Malformed input raises
    :class:`BadRequestError` with a message safe to echo to the client.
    """
    if not isinstance(payload, dict):
        raise BadRequestError("request body must be a JSON object")
    stream = bool(payload.get("stream", False))
    try:
        if "spec" in payload:
            spec = SystemSpec.from_dict(payload["spec"])
            if spec.trace is None:
                raise BadRequestError("spec must carry a trace reference")
        else:
            spec = _spec_from_shorthand(payload)
    except BadRequestError:
        raise
    except (ConfigurationError, SpecError, KeyError, TypeError, ValueError) as exc:
        raise BadRequestError(f"invalid query: {exc}") from None
    if isinstance(spec.trace, TraceSpec):
        # Registry references are validated up front so an unknown name
        # is a 400, not a failed cold simulation.
        try:
            get_workload(spec.trace.name)
        except UnknownWorkloadError as exc:
            # KeyError subclass: str() would wrap the message in repr quotes.
            raise BadRequestError(exc.args[0] if exc.args else str(exc)) from None
    return AdviseQuery(spec=spec, stream=stream)


def _spec_from_shorthand(payload: Dict) -> SystemSpec:
    trace_raw = payload.get("trace")
    if isinstance(trace_raw, str):
        trace_raw = {"name": trace_raw}
    if not isinstance(trace_raw, dict) or not ("name" in trace_raw or "kind" in trace_raw):
        raise BadRequestError(
            'query needs a trace: {"trace": {"name": ..., "scale": ..., "seed": ...}} '
            'or inline workload-spec JSON ({"trace": {"kind": ...}})'
        )
    trace = workload_from_dict(trace_raw)
    structure_raw = payload.get("structure")
    if structure_raw is None or isinstance(structure_raw, str):
        structure = parse_structure_code(structure_raw)
    elif isinstance(structure_raw, dict):
        structure = structure_from_dict(structure_raw)
    else:
        raise BadRequestError("structure must be a short code, a spec object, or null")
    side = payload.get("side", "d")
    base = baseline_system()
    cache = base.icache if side == "i" else base.dcache
    cache_raw = payload.get("cache")
    if cache_raw is not None:
        if not isinstance(cache_raw, dict):
            raise BadRequestError("cache must be an object with size_bytes/line_size")
        cache = cache.__class__(
            size_bytes=int(cache_raw.get("size_bytes", cache.size_bytes)),
            line_size=int(cache_raw.get("line_size", cache.line_size)),
        )
    spec = SystemSpec.for_level(
        trace,
        cache,
        side=side,
        structure=structure,
        warmup=int(payload.get("warmup", 0)),
        classify=bool(payload.get("classify", False)),
    )
    assert spec is not None  # WorkloadSpec input never returns None
    return spec


def _summary_payload(summary) -> Dict[str, object]:
    """Client-facing derived rates alongside the raw counters."""
    return {
        "miss_rate": round(summary.miss_rate, 6),
        "effective_miss_rate": round(summary.effective_miss_rate, 6),
        "percent_misses_removed": round(summary.percent_removed, 3),
    }


class AdvisorService:
    """Coalescing, admission-controlled advisor over engine + store.

    Must be created (and used) inside a running event loop.  *store*
    defaults to :func:`~repro.store.current_store` — the daemon CLI
    guarantees one is configured before construction.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        max_inflight: int = 4,
        jobs: int = 1,
        heartbeat: float = 1.0,
        resilience: Optional[ResilienceOptions] = None,
    ) -> None:
        store = store if store is not None else current_store()
        if store is None:
            raise ConfigurationError(
                "AdvisorService needs a result store (set REPRO_RESULT_STORE "
                "or pass store=)"
            )
        if max_inflight < 1:
            raise ConfigurationError(f"max_inflight must be at least 1, got {max_inflight}")
        self.store = store
        self.max_inflight = max_inflight
        self.jobs = max(1, jobs)
        self.heartbeat = heartbeat
        self.resilience = resolve_resilience(resilience)
        self.counters = ServingCounters()
        self._inflight: Dict[str, _Inflight] = {}
        #: Simulations: one thread per admitted cold key.
        self._sim_pool = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve-sim"
        )
        #: Key derivation + store reads: kept off the sim pool so warm
        #: hits never queue behind long cold simulations.
        self._lookup_pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-serve-lookup"
        )
        #: EWMA of cold-simulation seconds, feeding Retry-After hints.
        self._cold_seconds = 0.0

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self._sim_pool.shutdown(wait=False, cancel_futures=True)
        self._lookup_pool.shutdown(wait=False, cancel_futures=True)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    @property
    def retry_after(self) -> float:
        """Seconds a rejected client should wait before retrying."""
        return min(60.0, max(1.0, self._cold_seconds))

    # -- the negative cache ----------------------------------------------------
    #
    # Malformed and unsatisfiable bodies are memoized too: parsing is
    # cheap, but some rejections are not (an unknown workload name, a
    # structure code that fails validation), and a misconfigured client
    # retries the *same bytes* in a tight loop.  The key is the hash of
    # the raw body, so the cache can be consulted before any parsing.

    @staticmethod
    def _bad_request_key(body: bytes) -> ResultKey:
        return ResultKey(
            job_kind="bad-query",
            spec_hash=hashlib.sha256(body).hexdigest(),
            trace_fingerprint="-",
        )

    async def cached_bad_request(self, body: bytes) -> Optional[str]:
        """The memoized 400 message for this exact body, or None."""
        loop = asyncio.get_running_loop()
        cached, _nbytes = await loop.run_in_executor(
            self._lookup_pool, self.store.get, self._bad_request_key(body)
        )
        if isinstance(cached, BadQuery):
            self.counters.negative_hits += 1
            return cached.error
        return None

    async def record_bad_request(self, body: bytes, message: str) -> None:
        """Memoize a rejection so retries of the same body skip parsing."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._lookup_pool,
            self.store.put,
            self._bad_request_key(body),
            BadQuery(error=message),
        )

    # -- the request path ------------------------------------------------------

    async def advise(self, query: AdviseQuery) -> Dict[str, object]:
        """Answer one query; raises an :class:`AdviseError` subclass."""
        self.counters.requests += 1
        loop = asyncio.get_running_loop()
        try:
            job, key, cached = await loop.run_in_executor(
                self._lookup_pool, self._lookup, query.spec
            )
        except AdviseError:
            raise
        except Exception as exc:
            raise BadRequestError(f"query could not be keyed: {exc}") from None
        if cached is not None:
            self.counters.warm_hits += 1
            return self._payload(query.spec, key, cached, served_from="store")
        entry, coalesced = self._attach_or_dispatch(job, key)
        try:
            summary = await asyncio.shield(entry.future)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.counters.failed += 1
            raise UpstreamError(f"simulation failed: {exc}") from exc
        return self._payload(
            query.spec, key, summary,
            served_from="coalesced" if coalesced else "simulated",
        )

    async def advise_stream(self, query: AdviseQuery) -> AsyncIterator[Dict[str, object]]:
        """Like :meth:`advise`, but yields accepted/heartbeat/progress
        events while the simulation runs, ending with ``result`` (or
        raising before the first event for rejected/malformed queries).
        """
        self.counters.requests += 1
        self.counters.streams += 1
        loop = asyncio.get_running_loop()
        job, key, cached = await loop.run_in_executor(
            self._lookup_pool, self._lookup, query.spec
        )
        if cached is not None:
            self.counters.warm_hits += 1
            yield {"event": "accepted", "served_from": "store"}
            yield dict(
                self._payload(query.spec, key, cached, served_from="store"),
                event="result",
            )
            return
        entry, coalesced = self._attach_or_dispatch(job, key)
        served_from = "coalesced" if coalesced else "simulated"
        yield {"event": "accepted", "served_from": served_from}
        queue: asyncio.Queue = asyncio.Queue()
        entry.subscribers.append(queue)
        started = time.perf_counter()
        try:
            while True:
                try:
                    item = await asyncio.wait_for(queue.get(), timeout=self.heartbeat)
                except asyncio.TimeoutError:
                    yield {
                        "event": "heartbeat",
                        "elapsed_s": round(time.perf_counter() - started, 3),
                        "inflight": self.inflight,
                    }
                    continue
                if item is None:
                    break
                yield dict(item, event="progress")
        finally:
            if queue in entry.subscribers:
                entry.subscribers.remove(queue)
        try:
            summary = await asyncio.shield(entry.future)
        except Exception as exc:
            self.counters.failed += 1
            raise UpstreamError(f"simulation failed: {exc}") from exc
        yield dict(
            self._payload(query.spec, key, summary, served_from=served_from),
            event="result",
        )

    # -- internals -------------------------------------------------------------

    def _lookup(self, spec: SystemSpec):
        """(sync, lookup pool) Build the job, its key, and probe the store.

        Materializes the trace (process-memoized) the first time a
        workload is referenced — the fingerprint half of the key needs
        the content.
        """
        job = LevelJob(spec)
        key = _store_key(job)
        assert key is not None  # LevelJob with a TraceSpec is always keyable
        cached, _nbytes = self.store.get(key)
        return job, key, cached

    def _attach_or_dispatch(self, job: LevelJob, key):
        """``(entry, coalesced)``: join the inflight simulation for *key*
        or admit a new one.

        Runs on the event loop, so the check-then-create on
        ``_inflight`` is race-free.
        """
        digest = key.digest()
        entry = self._inflight.get(digest)
        if entry is not None:
            entry.waiters += 1
            self.counters.coalesced += 1
            return entry, True
        if len(self._inflight) >= self.max_inflight:
            self.counters.rejected += 1
            raise OverloadedError(
                f"{len(self._inflight)} simulations already in flight "
                f"(max_inflight={self.max_inflight})",
                retry_after=self.retry_after,
            )
        self.counters.cold_misses += 1
        loop = asyncio.get_running_loop()
        entry = _Inflight(future=loop.create_future(), started=time.perf_counter())
        self._inflight[digest] = entry

        def _progress(update) -> None:
            # Called from the sim thread: marshal onto the loop.
            if not entry.subscribers:
                return
            payload = {
                "done": update.done,
                "total": update.total,
                "elapsed_s": round(update.elapsed, 3),
                "store_hits": update.store_hits,
                "retries": update.retries,
                "note": update.note,
                "backend": update.backend,
            }
            loop.call_soon_threadsafe(self._fan_out, entry, payload)

        def _simulate():
            summary = run_jobs(
                [job],
                jobs=self.jobs,
                progress=_progress,
                heartbeat=self.heartbeat,
                resilience=self.resilience,
            )[0]
            # The engine flushes to the env-resolved store; when the
            # service was handed a different one, flush there too or the
            # warm path never warms.
            active = current_store()
            if active is None or active.root != self.store.root:
                self.store.put(key, summary)
            return summary

        task = loop.run_in_executor(self._sim_pool, _simulate)
        task.add_done_callback(lambda done: self._settle(digest, entry, done))
        return entry, False

    def _fan_out(self, entry: _Inflight, payload: Optional[Dict]) -> None:
        for queue in entry.subscribers:
            queue.put_nowait(payload)

    def _settle(self, digest: str, entry: _Inflight, done) -> None:
        self._inflight.pop(digest, None)
        if done.cancelled():
            entry.future.cancel()
        else:
            exc = done.exception()
            if exc is not None:
                entry.future.set_exception(exc)
                # Mark retrieved: waiters re-raise their own copy, and a
                # waiterless failure must not log "never retrieved".
                entry.future.exception()
            else:
                elapsed = time.perf_counter() - entry.started
                self._cold_seconds = (
                    elapsed if self._cold_seconds == 0.0
                    else 0.7 * self._cold_seconds + 0.3 * elapsed
                )
                entry.future.set_result(done.result())
        self._fan_out(entry, None)

    def _payload(self, spec, key, summary, served_from: str) -> Dict[str, object]:
        return {
            "served_from": served_from,
            "spec_hash": spec_hash(spec),
            "trace_fingerprint": key.trace_fingerprint,
            "key_digest": key.digest(),
            "result": encode_result(summary),
            "summary": _summary_payload(summary),
        }
