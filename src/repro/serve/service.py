"""The cache-advisor core: warm hits, coalesced cold misses, backpressure.

This is the paper's question — *"what does a small fully-associative
buffer buy this workload?"* — turned into an online service.  One
:class:`AdvisorService` sits over the three layers earlier PRs built:

* the **spec layer** keys each query: a request parses into a frozen
  :class:`~repro.specs.SystemSpec`, whose ``spec_hash`` plus the trace's
  content fingerprint is the request identity;
* the **result store** is the memo: a warm key is answered from disk
  with zero simulation;
* the **engine** is the backend: a cold key becomes one
  :class:`~repro.experiments.engine.LevelJob` executed (with the PR 5
  resilience layer — retries, timeouts, recorded degradations) on a
  bounded thread pool.

Three serving behaviours make it production-shaped rather than a CLI
with a socket:

* **Request coalescing** — N concurrent queries for the same cold key
  share *one* engine job; the result fans out to every waiter and is
  flushed to the store once.
* **Admission control** — at most ``max_inflight`` distinct cold keys
  simulate at once; one more cold query is rejected with a retry hint
  (HTTP 429 + ``Retry-After`` at the daemon layer) instead of queueing
  unboundedly.  Warm hits and coalesced joins are always admitted — they
  cost no simulation.
* **Progress streaming** — subscribers get heartbeat events while their
  simulation runs, fed by the engine's
  :class:`~repro.telemetry.core.JobProgress` callbacks plus a
  daemon-side ticker (a single inline job blocks its executor thread, so
  the engine alone cannot heartbeat mid-job).
"""

from __future__ import annotations

import asyncio
import hashlib
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Optional, Tuple

from ..common.config import baseline_system
from ..common.errors import ConfigurationError, UnknownWorkloadError
from ..specs import (
    SpecError,
    SystemSpec,
    TraceSpec,
    parse_structure_code,
    spec_hash,
    workload_from_dict,
)
from ..specs.structures import structure_from_dict
from ..store import ResultKey, ResultStore, current_store
from ..store.codec import BadQuery, encode_result
from ..traces.registry import get_workload
from ..experiments.engine import (
    LevelJob,
    ResilienceOptions,
    _store_key,
    resolve_resilience,
    run_jobs,
)
from ..experiments.faults import InjectedFault, ServeFaults
from .breaker import CircuitBreaker

__all__ = [
    "AdviseError",
    "BadRequestError",
    "OverloadedError",
    "UpstreamError",
    "DeadlineExceededError",
    "BreakerOpenError",
    "StoreDegradedWarning",
    "AdviseQuery",
    "ServingCounters",
    "AdvisorService",
]


class AdviseError(Exception):
    """Base class for request-path failures with an HTTP shape."""

    status = 500


class BadRequestError(AdviseError):
    """The query could not be parsed into a valid simulation point."""

    status = 400


class OverloadedError(AdviseError):
    """Admission control rejected a new cold simulation."""

    status = 429

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class UpstreamError(AdviseError):
    """The engine could not produce a result (after its own resilience)."""

    status = 503


class DeadlineExceededError(AdviseError):
    """The request's deadline budget ran out before a result landed.

    Abandoning is waiter-local: the shared cold job keeps running for the
    other coalesced waiters (and to warm the store), only this request's
    connection is answered 504.
    """

    status = 504


class BreakerOpenError(AdviseError):
    """The cold-dispatch circuit breaker is open: failing fast."""

    status = 503

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class StoreDegradedWarning(UserWarning):
    """The service dropped to store=degraded after a store failure."""


@dataclass(frozen=True)
class AdviseQuery:
    """One parsed advisor query: the spec plus transport options."""

    spec: SystemSpec
    stream: bool = False
    #: Client-requested deadline budget (``"deadline_ms"``), seconds.
    deadline_s: Optional[float] = None


class ServingCounters:
    """Monotonic request-path counters, exposed at ``/v1/stats``.

    ``cold_misses`` counts *simulations dispatched* — the number the
    acceptance benchmark pins: a warm sweep leaves it untouched and N
    coalesced duplicates bump it exactly once.
    """

    __slots__ = (
        "requests", "warm_hits", "cold_misses", "coalesced",
        "rejected", "failed", "streams", "negative_hits",
        "deadline_expired", "breaker_fastfail", "breaker_opens",
        "store_errors", "degraded_serves", "drain_rejects",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.warm_hits = 0
        self.cold_misses = 0
        self.coalesced = 0
        self.rejected = 0
        self.failed = 0
        self.streams = 0
        self.negative_hits = 0
        # Resilience-layer outcomes (PR 10): requests answered 504 by a
        # deadline budget, cold dispatches refused by the open breaker,
        # breaker open transitions, store failures absorbed, requests
        # served while the store was degraded, and requests refused
        # during graceful drain.
        self.deadline_expired = 0
        self.breaker_fastfail = 0
        self.breaker_opens = 0
        self.store_errors = 0
        self.degraded_serves = 0
        self.drain_rejects = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


@dataclass
class _Inflight:
    """One cold key being simulated, shared by every coalesced waiter."""

    future: asyncio.Future
    started: float
    waiters: int = 1
    #: Streaming subscribers; each receives JobProgress-shaped dicts and
    #: a ``None`` sentinel when the job settles.
    subscribers: List[asyncio.Queue] = field(default_factory=list)
    #: Set from the sim thread when the dispatch re-probe found the key
    #: already flushed (a request raced a just-finished simulation).
    from_store: bool = False


class _GuardedStore:
    """The service's fault-aware, self-degrading view of its ResultStore.

    :class:`~repro.store.core.ResultStore` already survives most damage
    on its own, but the daemon must survive *any* store exception — an
    injected ``store_read_fail``/``store_write_fail`` fault, a dying
    disk, a store mount that vanished — without 500ing.  The guard wraps
    every read and write the service performs:

    * a failure degrades the store (``state == "degraded"``): reads
      answer as misses (serve-from-engine), writes become no-ops
      (skip memoization), and one :class:`StoreDegradedWarning` marks
      the transition;
    * while degraded the store is skipped entirely until
      ``probe_interval`` seconds pass, then one operation probes it —
      success recovers to ``"ok"``, failure restarts the clock.

    Mutations happen on lookup-pool and sim threads; the races between
    them are benign (worst case: one extra probe or a double-counted
    failure), so no lock is taken on the request path.
    """

    def __init__(
        self,
        store: ResultStore,
        faults: ServeFaults,
        counters: "ServingCounters",
        probe_interval: float = 5.0,
    ) -> None:
        self._store = store
        self._faults = faults
        self._counters = counters
        self.probe_interval = probe_interval
        self.state = "ok"
        self._failed_at = 0.0

    def get(self, key: ResultKey) -> Tuple[Optional[object], int]:
        if not self._attempt_allowed():
            self._counters.degraded_serves += 1
            return None, 0
        try:
            clause = self._faults.fire("store_read_fail")
            if clause is not None:
                raise InjectedFault(f"injected store read failure ({clause.action})")
            result = self._store.get(key)
        except Exception as exc:
            self._note_failure("read", exc)
            return None, 0
        self._note_success()
        return result

    def put(self, key: ResultKey, result: object) -> None:
        if not self._attempt_allowed():
            return
        try:
            clause = self._faults.fire("store_write_fail")
            if clause is not None:
                raise InjectedFault(f"injected store write failure ({clause.action})")
            self._store.put(key, result)
        except Exception as exc:
            self._note_failure("write", exc)
            return
        self._note_success()

    # -- state ----------------------------------------------------------------

    def _attempt_allowed(self) -> bool:
        if self.state == "ok":
            return True
        return time.monotonic() - self._failed_at >= self.probe_interval

    def _note_failure(self, op: str, exc: BaseException) -> None:
        self._counters.store_errors += 1
        self._failed_at = time.monotonic()
        if self.state == "ok":
            self.state = "degraded"
            warnings.warn(
                f"result store {op} failed ({exc}); serving degraded — "
                f"answers come from the engine and are not memoized until "
                f"the store recovers",
                StoreDegradedWarning,
                stacklevel=3,
            )

    def _note_success(self) -> None:
        self.state = "ok"


def parse_query(payload: object) -> AdviseQuery:
    """Parse a request body into an :class:`AdviseQuery`.

    Accepted shapes (everything but the trace is optional)::

        {"spec": {...full canonical SystemSpec dict...}}
        {"trace": "ccom"
                  | {"name": "ccom", "scale": 20000, "seed": 0}
                  | {"kind": "zipfian", ...any workload-spec JSON...},
         "structure": "vc4" | {"kind": "victim_cache", ...} | null,
         "side": "d", "warmup": 0, "classify": false,
         "cache": {"size_bytes": 16384, "line_size": 32},
         "stream": false, "deadline_ms": 2000}

    The trace accepts inline workload-spec JSON — any registered kind,
    including the parameterized patterns and ``tenant_mix`` — alongside
    the registry-name shorthand.  ``deadline_ms`` asks the daemon to
    answer (or 504) within that budget; the effective deadline is the
    tighter of this and the server's ``--request-deadline``.  Malformed
    input raises :class:`BadRequestError` with a message safe to echo to
    the client.
    """
    if not isinstance(payload, dict):
        raise BadRequestError("request body must be a JSON object")
    stream = bool(payload.get("stream", False))
    deadline_s: Optional[float] = None
    if payload.get("deadline_ms") is not None:
        raw_deadline = payload["deadline_ms"]
        if isinstance(raw_deadline, bool) or not isinstance(raw_deadline, (int, float)):
            raise BadRequestError("deadline_ms must be a number of milliseconds")
        if raw_deadline <= 0:
            raise BadRequestError(f"deadline_ms must be positive, got {raw_deadline}")
        deadline_s = float(raw_deadline) / 1000.0
    try:
        if "spec" in payload:
            spec = SystemSpec.from_dict(payload["spec"])
            if spec.trace is None:
                raise BadRequestError("spec must carry a trace reference")
        else:
            spec = _spec_from_shorthand(payload)
    except BadRequestError:
        raise
    except (ConfigurationError, SpecError, KeyError, TypeError, ValueError) as exc:
        raise BadRequestError(f"invalid query: {exc}") from None
    if isinstance(spec.trace, TraceSpec):
        # Registry references are validated up front so an unknown name
        # is a 400, not a failed cold simulation.
        try:
            get_workload(spec.trace.name)
        except UnknownWorkloadError as exc:
            # KeyError subclass: str() would wrap the message in repr quotes.
            raise BadRequestError(exc.args[0] if exc.args else str(exc)) from None
    return AdviseQuery(spec=spec, stream=stream, deadline_s=deadline_s)


def _spec_from_shorthand(payload: Dict) -> SystemSpec:
    trace_raw = payload.get("trace")
    if isinstance(trace_raw, str):
        trace_raw = {"name": trace_raw}
    if not isinstance(trace_raw, dict) or not ("name" in trace_raw or "kind" in trace_raw):
        raise BadRequestError(
            'query needs a trace: {"trace": {"name": ..., "scale": ..., "seed": ...}} '
            'or inline workload-spec JSON ({"trace": {"kind": ...}})'
        )
    trace = workload_from_dict(trace_raw)
    structure_raw = payload.get("structure")
    if structure_raw is None or isinstance(structure_raw, str):
        structure = parse_structure_code(structure_raw)
    elif isinstance(structure_raw, dict):
        structure = structure_from_dict(structure_raw)
    else:
        raise BadRequestError("structure must be a short code, a spec object, or null")
    side = payload.get("side", "d")
    base = baseline_system()
    cache = base.icache if side == "i" else base.dcache
    cache_raw = payload.get("cache")
    if cache_raw is not None:
        if not isinstance(cache_raw, dict):
            raise BadRequestError("cache must be an object with size_bytes/line_size")
        cache = cache.__class__(
            size_bytes=int(cache_raw.get("size_bytes", cache.size_bytes)),
            line_size=int(cache_raw.get("line_size", cache.line_size)),
        )
    spec = SystemSpec.for_level(
        trace,
        cache,
        side=side,
        structure=structure,
        warmup=int(payload.get("warmup", 0)),
        classify=bool(payload.get("classify", False)),
    )
    assert spec is not None  # WorkloadSpec input never returns None
    return spec


def _summary_payload(summary) -> Dict[str, object]:
    """Client-facing derived rates alongside the raw counters."""
    return {
        "miss_rate": round(summary.miss_rate, 6),
        "effective_miss_rate": round(summary.effective_miss_rate, 6),
        "percent_misses_removed": round(summary.percent_removed, 3),
    }


class AdvisorService:
    """Coalescing, admission-controlled advisor over engine + store.

    Must be created (and used) inside a running event loop.  *store*
    defaults to :func:`~repro.store.current_store` — the daemon CLI
    guarantees one is configured before construction.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        max_inflight: int = 4,
        jobs: int = 1,
        heartbeat: float = 1.0,
        resilience: Optional[ResilienceOptions] = None,
        request_deadline: Optional[float] = None,
        breaker: Optional[CircuitBreaker] = None,
        store_probe_interval: float = 5.0,
    ) -> None:
        store = store if store is not None else current_store()
        if store is None:
            raise ConfigurationError(
                "AdvisorService needs a result store (set REPRO_RESULT_STORE "
                "or pass store=)"
            )
        if max_inflight < 1:
            raise ConfigurationError(f"max_inflight must be at least 1, got {max_inflight}")
        if request_deadline is not None and request_deadline <= 0:
            raise ConfigurationError(
                f"request_deadline must be positive, got {request_deadline:g}"
            )
        self.store = store
        self.max_inflight = max_inflight
        self.jobs = max(1, jobs)
        self.heartbeat = heartbeat
        self.resilience = resolve_resilience(resilience)
        #: Server-side ceiling on every request's deadline budget (s).
        self.request_deadline = request_deadline
        #: Cold-dispatch circuit breaker; None = disabled.
        self.breaker = breaker
        self.counters = ServingCounters()
        self.faults = ServeFaults()
        #: Every store access the *service* makes goes through the guard,
        #: so store failures degrade serving instead of 500ing requests.
        self.guarded_store = _GuardedStore(
            store, self.faults, self.counters, probe_interval=store_probe_interval
        )
        self._inflight: Dict[str, _Inflight] = {}
        #: Simulations: one thread per admitted cold key.
        self._sim_pool = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-serve-sim"
        )
        #: Key derivation + store reads: kept off the sim pool so warm
        #: hits never queue behind long cold simulations.
        self._lookup_pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-serve-lookup"
        )
        #: EWMA of cold-simulation seconds, feeding Retry-After hints.
        self._cold_seconds = 0.0

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self._sim_pool.shutdown(wait=False, cancel_futures=True)
        self._lookup_pool.shutdown(wait=False, cancel_futures=True)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    @property
    def retry_after(self) -> float:
        """Seconds a rejected client should wait before retrying."""
        return min(60.0, max(1.0, self._cold_seconds))

    @property
    def store_state(self) -> str:
        """``"ok"`` or ``"degraded"`` (store failures absorbed recently)."""
        return self.guarded_store.state

    def breaker_payload(self) -> Dict[str, object]:
        """Breaker state for ``/v1/stats`` and ``/readyz``."""
        if self.breaker is None:
            return {"state": "disabled"}
        return self.breaker.as_dict()

    def effective_deadline(self, query: AdviseQuery) -> Optional[float]:
        """The binding deadline: the tighter of client ask and server cap."""
        budgets = [
            budget
            for budget in (query.deadline_s, self.request_deadline)
            if budget is not None
        ]
        return min(budgets) if budgets else None

    # -- the negative cache ----------------------------------------------------
    #
    # Malformed and unsatisfiable bodies are memoized too: parsing is
    # cheap, but some rejections are not (an unknown workload name, a
    # structure code that fails validation), and a misconfigured client
    # retries the *same bytes* in a tight loop.  The key is the hash of
    # the raw body, so the cache can be consulted before any parsing.

    @staticmethod
    def _bad_request_key(body: bytes) -> ResultKey:
        return ResultKey(
            job_kind="bad-query",
            spec_hash=hashlib.sha256(body).hexdigest(),
            trace_fingerprint="-",
        )

    async def cached_bad_request(self, body: bytes) -> Optional[str]:
        """The memoized 400 message for this exact body, or None."""
        loop = asyncio.get_running_loop()
        cached, _nbytes = await loop.run_in_executor(
            self._lookup_pool, self.guarded_store.get, self._bad_request_key(body)
        )
        if isinstance(cached, BadQuery):
            self.counters.negative_hits += 1
            return cached.error
        return None

    async def record_bad_request(self, body: bytes, message: str) -> None:
        """Memoize a rejection so retries of the same body skip parsing."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            self._lookup_pool,
            self.guarded_store.put,
            self._bad_request_key(body),
            BadQuery(error=message),
        )

    # -- the request path ------------------------------------------------------

    async def advise(self, query: AdviseQuery) -> Dict[str, object]:
        """Answer one query; raises an :class:`AdviseError` subclass.

        The deadline budget (client ``deadline_ms`` capped by the
        server's ``request_deadline``) covers the whole path — store
        lookup and the wait on a cold simulation.  Expiry answers *this*
        request 504 and detaches it from the shared inflight entry;
        the underlying job is never cancelled, because other waiters may
        be coalesced onto it and its result still warms the store.
        """
        self.counters.requests += 1
        loop = asyncio.get_running_loop()
        deadline_s = self.effective_deadline(query)
        deadline_at = None if deadline_s is None else loop.time() + deadline_s
        lookup = loop.run_in_executor(self._lookup_pool, self._lookup, query.spec)
        try:
            job, key, cached = await self._bounded(
                lookup, deadline_at, deadline_s, phase="store lookup"
            )
        except AdviseError:
            raise
        except Exception as exc:
            raise BadRequestError(f"query could not be keyed: {exc}") from None
        if cached is not None:
            self.counters.warm_hits += 1
            return self._payload(query.spec, key, cached, served_from="store")
        entry, coalesced = self._attach_or_dispatch(job, key)
        try:
            summary = await self._bounded(
                asyncio.shield(entry.future), deadline_at, deadline_s,
                phase="cold simulation", entry=entry,
            )
        except asyncio.CancelledError:
            raise
        except UpstreamError:
            self.counters.failed += 1
            raise
        except AdviseError:
            raise
        except Exception as exc:
            self.counters.failed += 1
            raise UpstreamError(f"simulation failed: {exc}") from exc
        if coalesced:
            served_from = "coalesced"
        else:
            served_from = "store" if entry.from_store else "simulated"
        return self._payload(query.spec, key, summary, served_from=served_from)

    async def _bounded(self, awaitable, deadline_at, deadline_s, phase: str,
                       entry: Optional[_Inflight] = None):
        """Await *awaitable* within the request's remaining budget.

        On expiry the abandoning is waiter-safe: the timeout cancels only
        this request's :func:`asyncio.wait_for` wrapper (the shared
        future is shielded by the caller), the waiter count is released,
        and a :class:`DeadlineExceededError` carries the 504.
        """
        if deadline_at is None:
            return await awaitable
        loop = asyncio.get_running_loop()
        remaining = deadline_at - loop.time()
        try:
            if remaining > 0:
                return await asyncio.wait_for(awaitable, remaining)
            # Budget already gone: still consume the awaitable's
            # cancellation cleanly before raising.
            asyncio.ensure_future(awaitable).cancel()
        except asyncio.TimeoutError:
            pass
        if entry is not None:
            entry.waiters -= 1
        self.counters.deadline_expired += 1
        raise DeadlineExceededError(
            f"deadline of {deadline_s:g}s exceeded during {phase}"
        )

    async def advise_stream(self, query: AdviseQuery) -> AsyncIterator[Dict[str, object]]:
        """Like :meth:`advise`, but yields accepted/heartbeat/progress
        events while the simulation runs, ending with ``result`` (or
        raising before the first event for rejected/malformed queries).
        """
        self.counters.requests += 1
        self.counters.streams += 1
        loop = asyncio.get_running_loop()
        job, key, cached = await loop.run_in_executor(
            self._lookup_pool, self._lookup, query.spec
        )
        if cached is not None:
            self.counters.warm_hits += 1
            yield {"event": "accepted", "served_from": "store"}
            yield dict(
                self._payload(query.spec, key, cached, served_from="store"),
                event="result",
            )
            return
        entry, coalesced = self._attach_or_dispatch(job, key)
        served_from = "coalesced" if coalesced else "simulated"
        yield {"event": "accepted", "served_from": served_from}
        queue: asyncio.Queue = asyncio.Queue()
        entry.subscribers.append(queue)
        started = time.perf_counter()
        try:
            while True:
                try:
                    item = await asyncio.wait_for(queue.get(), timeout=self.heartbeat)
                except asyncio.TimeoutError:
                    yield {
                        "event": "heartbeat",
                        "elapsed_s": round(time.perf_counter() - started, 3),
                        "inflight": self.inflight,
                    }
                    continue
                if item is None:
                    break
                yield dict(item, event="progress")
        finally:
            if queue in entry.subscribers:
                entry.subscribers.remove(queue)
        try:
            summary = await asyncio.shield(entry.future)
        except UpstreamError:
            self.counters.failed += 1
            raise
        except AdviseError:
            raise
        except Exception as exc:
            self.counters.failed += 1
            raise UpstreamError(f"simulation failed: {exc}") from exc
        if not coalesced and entry.from_store:
            served_from = "store"
        yield dict(
            self._payload(query.spec, key, summary, served_from=served_from),
            event="result",
        )

    # -- internals -------------------------------------------------------------

    def _lookup(self, spec: SystemSpec):
        """(sync, lookup pool) Build the job, its key, and probe the store.

        Materializes the trace (process-memoized) the first time a
        workload is referenced — the fingerprint half of the key needs
        the content.  The store probe goes through the degraded-mode
        guard: a failing store answers "miss" and the query is served
        from the engine instead.
        """
        job = LevelJob(spec)
        key = _store_key(job)
        assert key is not None  # LevelJob with a TraceSpec is always keyable
        cached, _nbytes = self.guarded_store.get(key)
        return job, key, cached

    def _attach_or_dispatch(self, job: LevelJob, key):
        """``(entry, coalesced)``: join the inflight simulation for *key*
        or admit a new one.

        Runs on the event loop, so the check-then-create on
        ``_inflight`` is race-free.  Joins are always admitted; a *new*
        dispatch must pass the circuit breaker (open breaker → 503
        fast-fail) and then admission control (full → 429).
        """
        digest = key.digest()
        entry = self._inflight.get(digest)
        if entry is not None:
            entry.waiters += 1
            self.counters.coalesced += 1
            return entry, True
        if self.breaker is not None and not self.breaker.allow():
            self.counters.breaker_fastfail += 1
            raise BreakerOpenError(
                f"circuit breaker open after repeated simulation failures "
                f"(state={self.breaker.state})",
                retry_after=self.breaker.retry_after(),
            )
        if len(self._inflight) >= self.max_inflight:
            self.counters.rejected += 1
            raise OverloadedError(
                f"{len(self._inflight)} simulations already in flight "
                f"(max_inflight={self.max_inflight})",
                retry_after=self.retry_after,
            )
        self.counters.cold_misses += 1
        loop = asyncio.get_running_loop()
        entry = _Inflight(future=loop.create_future(), started=time.perf_counter())
        self._inflight[digest] = entry

        def _progress(update) -> None:
            # Called from the sim thread: marshal onto the loop.
            if not entry.subscribers:
                return
            payload = {
                "done": update.done,
                "total": update.total,
                "elapsed_s": round(update.elapsed, 3),
                "store_hits": update.store_hits,
                "retries": update.retries,
                "note": update.note,
                "backend": update.backend,
            }
            loop.call_soon_threadsafe(self._fan_out, entry, payload)

        def _simulate():
            # Re-probe the store first: this request's lookup may have
            # missed just before another request's simulation of the
            # same key flushed and settled (lookup and attach are not
            # one atomic step).  The inflight entry is already
            # published, so concurrent duplicates coalesce here instead
            # of dispatching a third time.
            cached, _nbytes = self.guarded_store.get(key)
            if cached is not None:
                entry.from_store = True
                return cached
            # Serve-scoped faults: a slow_sim clause stalls the dispatch
            # (tripping request deadlines deterministically); a
            # reject_sim clause fails it (driving the circuit breaker).
            # Both counters advance *before* any sleep, so occurrence
            # numbers equal dispatch order even while earlier slow
            # dispatches are still asleep on their sim threads.
            slow = self.faults.fire("slow_sim")
            reject = self.faults.fire("reject_sim")
            if slow is not None:
                time.sleep(slow.seconds)
            if reject is not None:
                raise InjectedFault("injected reject_sim: cold dispatch refused")
            summary = run_jobs(
                [job],
                jobs=self.jobs,
                progress=_progress,
                heartbeat=self.heartbeat,
                resilience=self.resilience,
            )[0]
            # The engine flushes to the env-resolved store; when the
            # service was handed a different one, flush there too or the
            # warm path never warms.  Degraded stores skip memoization.
            active = current_store()
            if active is None or active.root != self.store.root:
                self.guarded_store.put(key, summary)
            return summary

        task = loop.run_in_executor(self._sim_pool, _simulate)
        task.add_done_callback(lambda done: self._settle(digest, entry, done))
        return entry, False

    def _fan_out(self, entry: _Inflight, payload: Optional[Dict]) -> None:
        for queue in entry.subscribers:
            queue.put_nowait(payload)

    def _settle(self, digest: str, entry: _Inflight, done) -> None:
        """Resolve the shared future when the sim-thread task finishes.

        The inflight entry is *always* removed first — a failed cold job
        must never leave a dead entry new requests would coalesce onto —
        and failures reach every waiter as one shared typed
        :class:`UpstreamError`, so a late waiter can never observe a
        forever-pending future after an earlier waiter saw the failure.
        """
        self._inflight.pop(digest, None)
        if done.cancelled():
            entry.future.cancel()
        else:
            exc = done.exception()
            if exc is not None:
                if self.breaker is not None and self.breaker.record_failure():
                    self.counters.breaker_opens += 1
                if not isinstance(exc, AdviseError):
                    exc = UpstreamError(f"simulation failed: {exc}")
                entry.future.set_exception(exc)
                # Mark retrieved: waiters re-raise their own copy, and a
                # waiterless failure must not log "never retrieved".
                entry.future.exception()
            else:
                if self.breaker is not None and not entry.from_store:
                    self.breaker.record_success()
                if not entry.from_store:
                    elapsed = time.perf_counter() - entry.started
                    self._cold_seconds = (
                        elapsed if self._cold_seconds == 0.0
                        else 0.7 * self._cold_seconds + 0.3 * elapsed
                    )
                entry.future.set_result(done.result())
        self._fan_out(entry, None)

    def _payload(self, spec, key, summary, served_from: str) -> Dict[str, object]:
        return {
            "served_from": served_from,
            "spec_hash": spec_hash(spec),
            "trace_fingerprint": key.trace_fingerprint,
            "key_digest": key.digest(),
            "result": encode_result(summary),
            "summary": _summary_payload(summary),
        }
