"""Circuit breaker for the cold-simulation dispatch path.

The paper's structures exist because a direct-mapped cache's fast path
has a failure mode (conflict misses) worth guarding with a tiny
dedicated structure; the daemon's fast path — "dispatch a cold key to
the engine" — has one too: a broken pool or a poisoned spec makes every
dispatch burn an admission slot, a sim thread, and the engine's whole
retry budget before failing.  The breaker is the tiny dedicated
structure for that case: after ``threshold`` dispatch failures inside a
sliding ``window``, new cold dispatches fail *fast* (HTTP 503 +
``Retry-After`` at the daemon layer) until a ``cooldown`` passes, then
exactly one probe dispatch is let through to test recovery.

States (the classic three):

``closed``
    Normal operation; failures are timestamped and pruned to ``window``.
``open``
    Every ``allow()`` is False until ``cooldown`` seconds elapse.
``half_open``
    One probe dispatch allowed; its success closes the breaker, its
    failure re-opens it (and restarts the cooldown).

The breaker is driven from the event-loop thread (``allow()`` at
dispatch, ``record_*`` when the shared future settles) so no locking is
needed; a late success from a dispatch that predates the open state is
deliberately ignored — only the probe can close an open breaker.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Failure-rate breaker: closed → open → half-open probe → closed."""

    def __init__(
        self,
        threshold: int = 5,
        window: float = 30.0,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be at least 1, got {threshold}")
        if window <= 0 or cooldown <= 0:
            raise ValueError("breaker window and cooldown must be positive")
        self.threshold = threshold
        self.window = window
        self.cooldown = cooldown
        self._clock = clock
        self.state = "closed"
        self.opens = 0          # lifetime closed/half-open -> open transitions
        self._failures: Deque[float] = deque()
        self._opened_at = 0.0
        self._probing = False   # a half-open probe dispatch is in flight

    # -- dispatch-side ---------------------------------------------------------

    def allow(self) -> bool:
        """May a new cold dispatch proceed right now?"""
        if self.state == "closed":
            return True
        now = self._clock()
        if self.state == "open":
            if now - self._opened_at < self.cooldown:
                return False
            self.state = "half_open"
            self._probing = False
        # half_open: exactly one probe at a time.
        if self._probing:
            return False
        self._probing = True
        return True

    def retry_after(self) -> float:
        """Seconds until the next probe could be admitted (>= 1s hint)."""
        if self.state == "open":
            remaining = self.cooldown - (self._clock() - self._opened_at)
            return max(1.0, remaining)
        return 1.0

    # -- settle-side -----------------------------------------------------------

    def record_success(self) -> None:
        if self.state == "half_open":
            self.state = "closed"
            self._probing = False
            self._failures.clear()
        elif self.state == "closed":
            # Recent history only: a success between failures does not
            # erase the window, but keeps it from growing unboundedly.
            self._prune(self._clock())

    def record_failure(self) -> bool:
        """Note one dispatch failure; True when this one opened the breaker."""
        now = self._clock()
        if self.state == "half_open":
            self._open(now)
            return True
        if self.state == "open":
            return False  # stale failure from a pre-open dispatch
        self._prune(now)
        self._failures.append(now)
        if len(self._failures) >= self.threshold:
            self._open(now)
            return True
        return False

    # -- observability ---------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Breaker state for ``/v1/stats`` and ``/readyz``."""
        return {
            "state": self.state,
            "threshold": self.threshold,
            "window_s": self.window,
            "cooldown_s": self.cooldown,
            "recent_failures": len(self._failures),
            "opens": self.opens,
            "retry_after_s": round(self.retry_after(), 3) if self.state == "open" else 0.0,
        }

    # -- internals -------------------------------------------------------------

    def _open(self, now: float) -> None:
        self.state = "open"
        self.opens += 1
        self._opened_at = now
        self._probing = False
        self._failures.clear()

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        while self._failures and self._failures[0] < cutoff:
            self._failures.popleft()
