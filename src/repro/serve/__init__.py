"""The cache-advisor service layer: ``repro-serve`` and its clients.

Turns the batch reproduction into an online question-answering service:
an asyncio HTTP/JSON daemon (:mod:`repro.serve.daemon`) keyed by
``spec_hash`` + trace fingerprint, answering warm keys straight from the
:mod:`result store <repro.store>` and coalescing duplicate concurrent
cold keys into single :mod:`engine <repro.experiments.engine>` jobs,
with admission control and streamed progress heartbeats.  See
``docs/API.md`` ("Serving") for the endpoint and schema reference.
"""

from .breaker import CircuitBreaker
from .daemon import CacheAdvisorDaemon, ServeConfig
from .loadgen import LoadReport, percentiles, run_loadgen
from .service import (
    AdviseError,
    AdviseQuery,
    AdvisorService,
    BadRequestError,
    BreakerOpenError,
    DeadlineExceededError,
    OverloadedError,
    ServingCounters,
    StoreDegradedWarning,
    UpstreamError,
    parse_query,
)

__all__ = [
    "CacheAdvisorDaemon",
    "ServeConfig",
    "AdvisorService",
    "AdviseQuery",
    "AdviseError",
    "BadRequestError",
    "BreakerOpenError",
    "CircuitBreaker",
    "DeadlineExceededError",
    "OverloadedError",
    "StoreDegradedWarning",
    "UpstreamError",
    "ServingCounters",
    "parse_query",
    "LoadReport",
    "run_loadgen",
    "percentiles",
]
