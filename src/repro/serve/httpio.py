"""Minimal HTTP/1.1 over asyncio streams: just enough for repro-serve.

The daemon deliberately has **zero third-party dependencies** — no
aiohttp, no uvicorn — so it runs wherever the simulator runs.  This
module is the wire layer both sides share: request parsing and response
writing for the server, and a small JSON client (plain and chunked-
streaming) for the load generator, the tests, and the CI smoke job.

Scope intentionally small: ``Content-Length`` bodies on requests,
fixed-length or chunked (NDJSON event stream) bodies on responses,
and HTTP/1.1 persistent connections — the server answers requests in
sequence on one connection until a side says ``Connection: close``
(HTTP/1.0 requests close by default, per the spec), and
:class:`JsonClient` is the matching reusable client.  Streaming
responses still end the connection: the chunked terminator doubles as
the end-of-response signal and streams are long-lived anyway.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, Optional, Tuple

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "send_json",
    "ChunkedJsonWriter",
    "JsonClient",
    "request_json",
    "stream_json_events",
]

#: Ceiling on request bodies: advisor queries are small JSON documents.
MAX_BODY_BYTES = 1 << 20
#: Ceiling on one request/status/header line.
MAX_LINE_BYTES = 16 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A malformed or oversized HTTP message (either direction)."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def wants_keep_alive(self) -> bool:
        """Whether the connection should survive this request.

        HTTP/1.1 keeps the connection unless the client says
        ``Connection: close``; HTTP/1.0 closes unless the client says
        ``Connection: keep-alive``.
        """
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> object:
        """The request body decoded as JSON (``{}`` when empty)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(f"request body is not valid JSON: {exc}") from None


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    line = await reader.readline()
    if len(line) > MAX_LINE_BYTES:
        raise HttpError("header line too long")
    return line


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; None on a clean EOF."""
    line = await _read_line(reader)
    if not line:
        return None
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(f"malformed request line: {line!r}")
    method, target, version = parts
    path, _, query = target.partition("?")
    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").rstrip("\r\n").partition(":")
        if not sep:
            raise HttpError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    length_raw = headers.get("content-length", "0")
    try:
        length = int(length_raw)
    except ValueError:
        raise HttpError(f"malformed Content-Length: {length_raw!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(f"request body of {length} bytes out of bounds")
    body = await reader.readexactly(length) if length else b""
    return Request(
        method=method.upper(),
        path=path,
        query=query,
        headers=headers,
        body=body,
        version=version,
    )


def _status_head(status: int, headers: Dict[str, str]) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines += [f"{name}: {value}" for name, value in headers.items()]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: object,
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = False,
) -> None:
    """Write one complete JSON response and flush it."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "keep-alive" if keep_alive else "close",
    }
    if extra_headers:
        headers.update(extra_headers)
    writer.write(_status_head(status, headers) + body)
    await writer.drain()


class ChunkedJsonWriter:
    """Chunked NDJSON event stream: one JSON object per chunk per line.

    The server's streaming responses (``"stream": true`` advisor
    queries) send an event object per chunk so clients render progress
    as it happens; :func:`stream_json_events` is the matching reader.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._started = False

    async def start(self, status: int = 200) -> None:
        headers = {
            "Content-Type": "application/x-ndjson",
            "Transfer-Encoding": "chunked",
            "Connection": "close",
        }
        self._writer.write(_status_head(status, headers))
        await self._writer.drain()
        self._started = True

    async def send(self, event: object) -> None:
        assert self._started, "start() must run before send()"
        line = json.dumps(event, sort_keys=True).encode("utf-8") + b"\n"
        self._writer.write(f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n")
        await self._writer.drain()

    async def close(self) -> None:
        if self._started:
            self._writer.write(b"0\r\n\r\n")
            await self._writer.drain()


# -- client side --------------------------------------------------------------


def _request_head(method: str, path: str, host: str, body: bytes, close: bool = True) -> bytes:
    connection = "close" if close else "keep-alive"
    return (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n\r\n"
    ).encode("latin-1")


async def _read_response_head(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str]]:
    line = await _read_line(reader)
    if not line:
        raise HttpError("connection closed before the status line")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise HttpError(f"malformed status line: {line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").rstrip("\r\n").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def _read_json_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], object]:
    """Read one full response: status, headers, decoded JSON body.

    Chunked responses are drained whole and decoded as the *last* JSON
    line (the final ``result``/``error`` event), so callers that do not
    care about streaming can issue the same queries streaming clients do.
    """
    status, headers = await _read_response_head(reader)
    if headers.get("transfer-encoding", "").lower() == "chunked":
        raw = b"".join([chunk async for chunk in _iter_chunks(reader)])
    else:
        length = int(headers.get("content-length", "0"))
        raw = await reader.readexactly(length) if length else b""
    decoded: object = None
    if raw:
        lines = [line for line in raw.decode("utf-8").splitlines() if line.strip()]
        decoded = json.loads(lines[-1]) if lines else None
    return status, headers, decoded


async def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[object] = None,
    timeout: float = 60.0,
) -> Tuple[int, Dict[str, str], object]:
    """One JSON round trip on a fresh connection (see :func:`_read_json_response`)."""

    async def _roundtrip():
        reader, writer = await asyncio.open_connection(host, port)
        try:
            body = b"" if payload is None else json.dumps(payload).encode("utf-8")
            writer.write(_request_head(method, path, f"{host}:{port}", body) + body)
            await writer.drain()
            return await _read_json_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    return await asyncio.wait_for(_roundtrip(), timeout)


class JsonClient:
    """A JSON client that keeps one connection alive across requests.

    Requests are sent with ``Connection: keep-alive`` and the socket is
    reused until the server answers ``Connection: close`` (streaming
    responses do) or drops an idle connection — a reused connection
    that turns out to be stale is reopened and the request retried
    once, which is safe because advisor queries are idempotent reads.
    Not safe for concurrent use; the load generator holds one client
    per in-flight slot.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        #: Round trips that reused an already-open connection.
        self.reused = 0

    async def request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        timeout: float = 60.0,
    ) -> Tuple[int, Dict[str, str], object]:
        """One JSON round trip: ``(status, headers, decoded body)``."""
        return await asyncio.wait_for(self._roundtrip(method, path, payload), timeout)

    async def _roundtrip(
        self, method: str, path: str, payload: Optional[object]
    ) -> Tuple[int, Dict[str, str], object]:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        head = _request_head(method, path, f"{self.host}:{self.port}", body, close=False)
        while True:
            reusing = self._writer is not None
            if not reusing:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
            try:
                self._writer.write(head + body)
                await self._writer.drain()
                status, headers, decoded = await _read_json_response(self._reader)
            except (ConnectionError, OSError, asyncio.IncompleteReadError, HttpError):
                await self.aclose()
                if reusing:
                    continue  # stale keep-alive connection; retry once fresh
                raise
            if reusing:
                self.reused += 1
            if headers.get("connection", "").lower() == "close":
                await self.aclose()
            return status, headers, decoded

    async def aclose(self) -> None:
        """Close the underlying connection (reopened on the next request)."""
        writer, self._reader, self._writer = self._writer, None, None
        if writer is None:
            return
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass

    async def __aenter__(self) -> "JsonClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()


async def _iter_chunks(reader: asyncio.StreamReader) -> AsyncIterator[bytes]:
    """Decode a chunked body, yielding each chunk's payload."""
    while True:
        size_line = await _read_line(reader)
        if not size_line:
            raise HttpError("connection closed mid chunked body")
        try:
            size = int(size_line.strip().split(b";")[0], 16)
        except ValueError:
            raise HttpError(f"malformed chunk size: {size_line!r}") from None
        if size == 0:
            await reader.readline()  # trailing CRLF (or trailers; none sent)
            return
        yield await reader.readexactly(size)
        await reader.readexactly(2)  # chunk-terminating CRLF


async def stream_json_events(
    host: str,
    port: int,
    path: str,
    payload: object,
    timeout: float = 120.0,
) -> Tuple[int, list]:
    """POST a query and collect every NDJSON event of the chunked reply.

    Returns ``(status, events)``; non-chunked error replies come back as
    a single-event list so callers handle both shapes uniformly.
    """

    async def _collect():
        reader, writer = await asyncio.open_connection(host, port)
        try:
            body = json.dumps(payload).encode("utf-8")
            writer.write(_request_head("POST", path, f"{host}:{port}", body) + body)
            await writer.drain()
            status, headers = await _read_response_head(reader)
            events = []
            if headers.get("transfer-encoding", "").lower() == "chunked":
                buffered = b""
                async for chunk in _iter_chunks(reader):
                    buffered += chunk
                    while b"\n" in buffered:
                        line, buffered = buffered.split(b"\n", 1)
                        if line.strip():
                            events.append(json.loads(line))
                if buffered.strip():
                    events.append(json.loads(buffered))
            else:
                length = int(headers.get("content-length", "0"))
                raw = await reader.readexactly(length) if length else b""
                if raw:
                    events.append(json.loads(raw))
            return status, events
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    return await asyncio.wait_for(_collect(), timeout)
