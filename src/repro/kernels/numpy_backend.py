"""Vectorized whole-trace simulation kernels (numpy backend).

The reference simulator is exact but interpreted: one Python-level
dispatch per memory reference.  For the *bare* direct-mapped structures
— a single cache level, or the split-L1/L2 baseline system — the entire
replay is a pure function of the reference stream, so it can be computed
in a handful of whole-trace array passes instead:

* **Direct-mapped hit resolution** (:func:`direct_mapped_hit_mask`) —
  group references by cache slot with one stable argsort of the slot
  index; within a slot's subsequence a reference hits iff the previous
  occupant of its slot is the same line, which after sorting is a single
  adjacent-element compare.
* **3C miss classification** (:func:`classify_misses`) — the classifier's
  fully-associative LRU shadow hits iff a reference's *reuse distance*
  (distinct lines referenced since its previous occurrence) is below the
  shadow capacity.  Previous occurrences come from a stable argsort by
  line (:func:`prev_occurrence`); reuse distances reduce to a
  rank-counting problem solved level-by-level over a merge tree with
  ``np.searchsorted`` (:func:`_rank_left_leq`) in O(n log n).

Equivalence with the interpreter — every counter of
:class:`~repro.hierarchy.level.LevelStats`, every classification bucket,
warm-up semantics included — is pinned by ``tests/test_kernels.py``.
Callers normally go through :func:`repro.kernels.select_backend` rather
than importing this module (which requires numpy) directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Optional, Tuple

import numpy as np

from ..common.config import CacheConfig, SystemConfig, baseline_system
from ..common.stats import percent
from ..common.types import AccessKind
from ..hierarchy.level import LevelStats
from ..hierarchy.system import L2Stats, SystemResult
from ..telemetry.core import current as _telemetry_scope

__all__ = [
    "stream_array",
    "direct_mapped_hit_mask",
    "prev_occurrence",
    "lru_shadow_hit_mask",
    "classify_misses",
    "KernelLevelResult",
    "simulate_level",
    "simulate_level_summary",
    "KernelSystemRun",
    "simulate_system",
]

_INT64 = np.int64


# -- array views --------------------------------------------------------------


def stream_array(trace, side: str) -> np.ndarray:
    """One side's byte addresses as an int64 array.

    Packed traces expose cached zero-copy views
    (:meth:`~repro.traces.packed.PackedTrace.stream_array`); anything
    else pays one conversion from its list stream.
    """
    getter = getattr(trace, "stream_array", None)
    if getter is not None:
        return getter(side)
    return np.asarray(trace.stream(side), dtype=_INT64)


def _trace_arrays(trace) -> Tuple[np.ndarray, np.ndarray]:
    """A materialized trace's (kinds, addresses) as arrays."""
    getter = getattr(trace, "as_arrays", None)
    if getter is not None:
        return getter()
    n = len(trace)
    kinds = np.fromiter((kind for kind, _ in trace), dtype=np.int8, count=n)
    addresses = np.fromiter((addr for _, addr in trace), dtype=_INT64, count=n)
    return kinds, addresses


def _index_dtype(num_lines: int):
    """Smallest dtype holding a slot index — radix-sorting 2-byte keys is
    ~2.4x faster than argsorting the int64 lines they came from."""
    if num_lines <= 1 << 16:
        return np.uint16
    if num_lines <= 1 << 32:
        return np.uint32
    return _INT64


# -- direct-mapped resolution -------------------------------------------------


def direct_mapped_hit_mask(
    lines: np.ndarray, num_lines: int, warm: Optional[np.ndarray] = None
) -> np.ndarray:
    """Hit/miss of every reference against one direct-mapped tag array.

    A direct-mapped slot holds exactly the last line that mapped to it,
    so a reference hits iff the nearest earlier reference to the same
    slot used the same line.  One stable argsort of the slot indices
    makes each slot's references adjacent (still in trace order), turning
    that into an adjacent-element compare, scattered back to trace order.

    *warm* optionally gives one initially-resident line per valid slot;
    the warm lines are prepended as pseudo-references and dropped from
    the returned mask, so a warm-started cache is the same pass over a
    slightly longer input.
    """
    if warm is not None and len(warm):
        full = np.concatenate((warm.astype(_INT64, copy=False), lines))
        prefix = len(warm)
    else:
        full = lines
        prefix = 0
    index = (full & (num_lines - 1)).astype(_index_dtype(num_lines), copy=False)
    order = np.argsort(index, kind="stable")
    sorted_index = index[order]
    sorted_lines = full[order]
    hit_sorted = np.empty(len(full), dtype=bool)
    if len(full):
        hit_sorted[0] = False
        hit_sorted[1:] = (sorted_index[1:] == sorted_index[:-1]) & (
            sorted_lines[1:] == sorted_lines[:-1]
        )
    hits = np.empty(len(full), dtype=bool)
    hits[order] = hit_sorted
    return hits[prefix:] if prefix else hits


def _final_residents(lines: np.ndarray, num_lines: int) -> np.ndarray:
    """Resident line per slot after filling *lines* in order (last one wins)."""
    if not len(lines):
        return lines[:0]
    index = (lines & (num_lines - 1)).astype(_index_dtype(num_lines), copy=False)
    order = np.argsort(index, kind="stable")
    sorted_index = index[order]
    is_last = np.empty(len(order), dtype=bool)
    is_last[-1] = True
    is_last[:-1] = sorted_index[1:] != sorted_index[:-1]
    return lines[order[is_last]]


# -- LRU shadow / 3C classification -------------------------------------------


def prev_occurrence(lines: np.ndarray) -> np.ndarray:
    """Position of each reference's previous reference to the same line.

    ``-1`` marks a line's first occurrence.  Same trick as the hit mask,
    grouping by line value instead of slot index.
    """
    n = len(lines)
    prev = np.full(n, -1, dtype=_INT64)
    if n:
        order = np.argsort(lines, kind="stable")
        same = lines[order][1:] == lines[order][:-1]
        prev[order[1:][same]] = order[:-1][same]
    return prev


def _rank_left_leq(
    values: np.ndarray,
    queries: Optional[np.ndarray] = None,
    thresholds: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``rank[i] = #{j < i : values[j] <= thresholds[i]}`` for non-negative ints.

    *thresholds* defaults to *values* itself, giving the classic
    ``values[j] <= values[i]`` self-rank; the assist kernels pass a
    separate per-query threshold array (any entries in ``[-1,
    values.max()]``) to count dominating positions against a different
    cut per query.

    Every pair ``j < i`` falls in exactly one level of a merge tree where
    ``j`` sits in the left half and ``i`` in the right half of the same
    block, so summing per-level counts gives the full rank.  At each
    level the blocks are already sorted (maintained by block-wise
    ``np.sort``), and one global ``searchsorted`` answers every query at
    once: adding ``half_id * offset`` to both sides keeps the whole
    block-sorted array globally ordered while confining each query to
    its own pair's left half (earlier pairs contribute a fixed,
    subtracted count).  O(n log n) total, no sequential state.

    *queries* restricts which positions are counted (all when None);
    the returned array holds garbage zeros at non-queried positions.
    """
    n = len(values)
    rank = np.zeros(n, dtype=_INT64)
    if n < 2:
        return rank
    if queries is None:
        queries = np.arange(n, dtype=_INT64)
    elif not len(queries):
        return rank
    size = 1 << (n - 1).bit_length()
    sentinel = int(values.max()) + 1  # above every real value: never counted
    offset = sentinel + 1
    padded = np.full(size, sentinel, dtype=_INT64)
    padded[:n] = values
    cuts = padded if thresholds is None else np.asarray(thresholds, dtype=_INT64)
    block_sorted = padded.copy()
    positions = np.arange(size, dtype=_INT64)
    shift = 0  # width == 1 << shift
    while (1 << shift) < size:
        width = 1 << shift
        # Queries with the `width` position bit set sit in a right half.
        at_level = queries[(queries & width) != 0]
        if len(at_level):
            pair_of = at_level >> (shift + 1)
            # half_id = position // width: left half of pair k gets
            # 2k*offset, right half (2k+1)*offset — globally sorted, and
            # a query offset by 2k*offset sees earlier pairs in full
            # (2*width*k elements) plus its own left half partially.
            augmented = block_sorted + ((positions >> shift) * offset)
            rank[at_level] += (
                np.searchsorted(
                    augmented, cuts[at_level] + (pair_of << 1) * offset, side="right"
                )
                - pair_of * (2 * width)
            )
        shift += 1
        if (1 << shift) < size:
            block_sorted = np.sort(
                block_sorted.reshape(-1, 1 << shift), axis=1
            ).ravel()
    return rank


def _shadow_hits(
    lines: np.ndarray,
    prev: np.ndarray,
    capacity: int,
    queries: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Hit mask of the fully-associative LRU shadow of size *capacity*.

    LRU keeps lines in recency order, so a reference hits iff fewer than
    *capacity* distinct lines were referenced since its previous
    occurrence ``p``.  That count is ``rank - (p + 1)``: each distinct
    line in the window ``(p, i)`` contributes exactly one position ``j``
    there with ``prev[j] <= p`` (its first occurrence inside the
    window), and every ``j <= p`` satisfies ``prev[j] <= p`` trivially.

    With *queries*, the mask is only valid at the queried positions —
    classification uses this to pay the rank pass for the misses it
    actually has to label, not every reference.
    """
    seen = prev >= 0
    if len(lines) - int(np.count_nonzero(seen)) <= capacity:
        # Footprint fits: the shadow never evicts, every revisit hits.
        return seen
    distinct_since = _rank_left_leq(prev + 1, queries) - (prev + 1)
    return seen & (distinct_since < capacity)


def lru_shadow_hit_mask(lines: np.ndarray, capacity: int) -> np.ndarray:
    """Hit mask of a fully-associative LRU cache over the whole stream."""
    return _shadow_hits(lines, prev_occurrence(lines), capacity)


def _effective_warmup(warmup: int, n: int) -> int:
    """The measurement window start, replicating ``run_level`` exactly.

    The interpreter zeroes counters *when* the warm-up boundary is
    crossed — a warm-up longer than the stream never fires, so the full
    stream is measured; a warm-up equal to the stream zeroes everything.
    """
    return warmup if 0 < warmup <= n else 0


def classify_misses(
    lines: np.ndarray, hits: np.ndarray, capacity: int, warmup: int = 0
) -> Dict[str, float]:
    """3C classification counts, in the exact shape of
    :meth:`~repro.classify.miss_classifier.MissClassifier.summary`.

    Flags (first reference, shadow hit) are computed over the *full*
    stream while counting starts at the warm-up boundary — matching the
    classifier, whose ``reset_counts`` keeps shadow and first-reference
    state so warm-touched lines are not reclassified as compulsory.
    """
    n = len(lines)
    prev = prev_occurrence(lines)
    start = _effective_warmup(warmup, n)
    # Shadow verdicts only matter where a counted miss needs the
    # conflict/capacity split: non-first misses inside the window.
    candidates = np.nonzero((~hits) & (prev >= 0))[0]
    queries = candidates[candidates >= start].astype(_INT64, copy=False)
    shadow_full = _shadow_hits(lines, prev, capacity, queries)
    window = slice(start, None)
    miss = ~hits[window]
    first = prev[window] < 0
    shadow = shadow_full[window]
    misses = int(np.count_nonzero(miss))
    compulsory = int(np.count_nonzero(miss & first))
    conflict = int(np.count_nonzero(miss & ~first & shadow))
    return {
        "accesses": len(miss),
        "misses": misses,
        "compulsory": compulsory,
        "capacity": misses - compulsory - conflict,
        "conflict": conflict,
        "coherence": 0,
        "percent_conflict": percent(conflict, misses),
    }


# -- whole-run kernels --------------------------------------------------------


@dataclass
class KernelLevelResult:
    """Statistics of one vectorized single-level replay."""

    stats: LevelStats
    #: :meth:`MissClassifier.summary`-shaped dict; None unless classified.
    classification: Optional[Dict[str, float]] = None

    @property
    def misses(self) -> int:
        return self.stats.demand_misses

    @property
    def conflicts(self) -> int:
        if self.classification is None:
            raise ValueError("simulate_level(..., classify=True) required for conflicts")
        return int(self.classification["conflict"])


def simulate_level(
    byte_addresses,
    config: CacheConfig,
    classify: bool = False,
    warmup: int = 0,
) -> KernelLevelResult:
    """Vectorized :func:`~repro.experiments.runner.run_level` for the bare level.

    Only the augmentation-free configuration is expressible — helper
    structures are stateful per-reference machines; dispatch through
    :func:`repro.kernels.select_backend` keeps them on the interpreter.
    """
    addresses = np.asarray(byte_addresses, dtype=_INT64)
    lines = addresses >> config.offset_bits
    hits = direct_mapped_hit_mask(lines, config.num_lines)
    start = _effective_warmup(warmup, len(lines))
    stats = LevelStats()
    stats.accesses = len(lines) - start
    stats.hits = int(np.count_nonzero(hits[start:]))
    # Bare level: every demand miss goes to the next level, none removed.
    stats.misses_to_next_level = stats.accesses - stats.hits
    classification = (
        classify_misses(lines, hits, config.num_lines, warmup) if classify else None
    )
    return KernelLevelResult(stats, classification)


def simulate_level_summary(system):
    """Execute one qualifying :class:`LevelJob` spec point vectorized.

    Mirrors the interpreter path end to end: same
    :class:`~repro.experiments.engine.LevelSummary` counters and the same
    telemetry observation (one ``observe_level_run`` per replay).
    """
    from ..experiments.engine import LevelSummary

    scope = _telemetry_scope()
    started = perf_counter() if scope is not None else 0.0
    addresses = stream_array(system.trace.trace(), system.side)
    run = simulate_level(
        addresses, system.cache_config, classify=system.classify, warmup=system.warmup
    )
    if scope is not None:
        scope.observe_level_run(run.stats, perf_counter() - started)
    return LevelSummary(
        accesses=run.stats.accesses,
        demand_misses=run.stats.demand_misses,
        removed_misses=run.stats.removed_misses,
        misses_to_next_level=run.stats.misses_to_next_level,
        stream_stall_cycles=run.stats.stream_stall_cycles,
        conflict_misses=run.conflicts if system.classify else None,
    )


@dataclass
class KernelSystemRun:
    """One vectorized full-system replay of the bare two-level hierarchy."""

    result: SystemResult
    iclassification: Optional[Dict[str, float]] = None
    dclassification: Optional[Dict[str, float]] = None


def simulate_system(
    trace,
    config: Optional[SystemConfig] = None,
    classify: bool = False,
    prewarm_l2: bool = False,
) -> KernelSystemRun:
    """Vectorized :meth:`MemorySystem.run` for the augmentation-free system.

    Splits the trace into instruction/data streams with one mask, runs
    the direct-mapped pass per L1 side, scatters the two miss masks back
    into trace order to form the L2 demand stream, and runs the same pass
    at L2 geometry.  ``prewarm_l2`` starts the L2 with the trace's
    footprint resident (the interpreter's
    :meth:`~repro.hierarchy.system.MemorySystem.prewarm_l2` steady-state
    model), expressed as warm pseudo-references.  *trace* must be
    materialized (sized, repeatable).
    """
    config = config if config is not None else baseline_system()
    scope = _telemetry_scope()
    started = perf_counter() if scope is not None else 0.0
    kinds, addresses = _trace_arrays(trace)
    is_ifetch = kinds == int(AccessKind.IFETCH)

    ilines = addresses[is_ifetch] >> config.icache.offset_bits
    dlines = addresses[~is_ifetch] >> config.dcache.offset_bits
    ihits = direct_mapped_hit_mask(ilines, config.icache.num_lines)
    dhits = direct_mapped_hit_mask(dlines, config.dcache.num_lines)

    # L2 sees every L1 demand miss, in trace order: scatter the per-side
    # miss masks back to trace positions and select.
    missed = np.empty(len(addresses), dtype=bool)
    missed[is_ifetch] = ~ihits
    missed[~is_ifetch] = ~dhits
    l2_all = addresses >> config.l2.offset_bits
    warm = (
        _final_residents(l2_all, config.l2.num_lines) if prewarm_l2 else None
    )
    l2_demand = l2_all[missed]
    l2_hits = direct_mapped_hit_mask(l2_demand, config.l2.num_lines, warm=warm)

    istats = LevelStats()
    istats.accesses = len(ilines)
    istats.hits = int(np.count_nonzero(ihits))
    istats.misses_to_next_level = istats.accesses - istats.hits
    dstats = LevelStats()
    dstats.accesses = len(dlines)
    dstats.hits = int(np.count_nonzero(dhits))
    dstats.misses_to_next_level = dstats.accesses - dstats.hits
    l2stats = L2Stats()
    l2stats.demand_accesses = len(l2_demand)
    l2stats.demand_misses = len(l2_demand) - int(np.count_nonzero(l2_hits))

    result = SystemResult(
        instructions=len(ilines),
        data_references=len(dlines),
        istats=istats,
        dstats=dstats,
        l2stats=l2stats,
    )
    if scope is not None:
        scope.observe_system_run(result, perf_counter() - started)
    if not classify:
        return KernelSystemRun(result)
    return KernelSystemRun(
        result,
        iclassification=classify_misses(ilines, ihits, config.icache.num_lines),
        dclassification=classify_misses(dlines, dhits, config.dcache.num_lines),
    )
