"""Simulation kernel backends: whole-trace array passes vs. the interpreter.

The reference simulator walks traces one reference at a time through
live cache objects — exact, fully general, and bounded by the Python
interpreter.  This package adds a second implementation of that work: a
numpy backend (:mod:`repro.kernels.numpy_backend`) that simulates a
direct-mapped cache level — and the bare split-L1/L2 system — over an
entire packed trace in vectorized array passes, including 3C miss
classification, and an assist-structure layer
(:mod:`repro.kernels.assist`) that extends the same treatment to the
paper's helper structures.  Because every structure is consulted only on
an L1 miss and updated only on a refill, the direct-mapped pass first
emits the *ordered miss stream* (positions, lines, victims) and the
structure is then resolved over that much shorter stream, in one of two
modes (:func:`kernel_mode`):

* :data:`VECTOR` — the structure's hit condition closes over the miss
  stream in array form: LRU miss/victim caches reduce to one
  reuse-distance rank pass (which yields hits for *every* capacity at
  once, collapsing entry sweeps to a single pass), and the single-way
  sequential stream buffer reduces to a consecutive-chain scan.
* :data:`MISS_REPLAY` — the live interpreter structure replays only the
  compressed miss stream (multi-way buffers, stride prefetchers,
  non-LRU policies, availability modelling, composites).

Both backends produce **identical statistics**, pinned by the
equivalence suite in ``tests/test_kernels.py``; which one runs is a pure
performance decision.

Backend selection
-----------------

:func:`select_backend` is the single dispatch point.  It combines three
inputs:

* the **request** — ``REPRO_BACKEND`` (``auto`` | ``python`` | ``numpy``,
  default ``auto``) or the CLI's ``--backend`` flag, validated by
  :func:`validate_backend`;
* the **spec** — any :class:`~repro.specs.SystemSpec` whose structure is
  a registered spec kind qualifies; :func:`disqualification` (all
  reasons, ``"; "``-joined) and :func:`disqualifications` (one reason
  per offending part) name what is left out: non-spec inputs and
  unregistered structure types;
* **availability** — numpy is an optional dependency (the ``fast``
  extra).  When it is missing the python backend runs instead; an
  explicit ``REPRO_BACKEND=numpy`` request additionally records a
  one-time :class:`KernelFallbackWarning` so the degradation is never
  silent.

Selection **never raises for a non-qualifying spec** — an undescribable
structure under ``REPRO_BACKEND=numpy`` silently (and correctly) runs
the interpreter, so one environment setting can cover a heterogeneous
sweep.
"""

from __future__ import annotations

import os
import warnings
from typing import List, Optional, Tuple

from ..common.errors import ConfigurationError

__all__ = [
    "AUTO",
    "PYTHON",
    "NUMPY",
    "BACKENDS",
    "VECTOR",
    "MISS_REPLAY",
    "ENV_BACKEND",
    "KernelFallbackWarning",
    "numpy_available",
    "numpy_unavailable_reason",
    "validate_backend",
    "default_backend",
    "structure_mode",
    "kernel_mode",
    "disqualification",
    "disqualifications",
    "qualifies",
    "select_backend",
]

AUTO = "auto"
PYTHON = "python"
NUMPY = "numpy"
BACKENDS = (AUTO, PYTHON, NUMPY)

#: Assist-structure execution modes on the numpy backend.
VECTOR = "vector"
MISS_REPLAY = "miss-replay"

#: Environment knob mirrored by the CLI's ``--backend`` flag.
ENV_BACKEND = "REPRO_BACKEND"


class KernelFallbackWarning(UserWarning):
    """A requested vectorized backend was unavailable; python ran instead."""


# -- availability -------------------------------------------------------------

#: ``None`` until probed, then ``(available, reason_if_not)``.
_NUMPY_PROBE: Optional[Tuple[bool, str]] = None
_WARNED_UNAVAILABLE = False


def _probe_numpy() -> Tuple[bool, str]:
    global _NUMPY_PROBE
    if _NUMPY_PROBE is None:
        try:
            import numpy  # noqa: F401

            _NUMPY_PROBE = (True, "")
        except Exception as exc:  # pragma: no cover - depends on environment
            _NUMPY_PROBE = (False, f"numpy is not importable ({exc!r})")
    return _NUMPY_PROBE


def numpy_available() -> bool:
    """Whether the numpy backend can run (probed once per process)."""
    return _probe_numpy()[0]


def numpy_unavailable_reason() -> str:
    """Why numpy is unavailable, or ``""`` when it is available."""
    return _probe_numpy()[1]


def _reset_probe_for_tests(
    probe: Optional[Tuple[bool, str]] = None, warned: bool = False
) -> None:
    """Test hook: override (or clear) the availability probe state."""
    global _NUMPY_PROBE, _WARNED_UNAVAILABLE
    _NUMPY_PROBE = probe
    _WARNED_UNAVAILABLE = warned


def _warn_unavailable_once(reason: str) -> None:
    """One recorded warning per process for an unsatisfiable numpy request.

    The warning always fires (so an ignored ``REPRO_BACKEND=numpy`` is
    visible without telemetry); when a
    :class:`~repro.telemetry.core.MetricsScope` is active the event is
    additionally recorded for the run record, next to the engine's
    serial-fallback reasons.
    """
    global _WARNED_UNAVAILABLE
    if _WARNED_UNAVAILABLE:
        return
    _WARNED_UNAVAILABLE = True
    message = f"REPRO_BACKEND=numpy requested but {reason}; using the python backend"
    warnings.warn(message, KernelFallbackWarning, stacklevel=3)
    from ..telemetry.core import current as _telemetry_scope

    scope = _telemetry_scope()
    if scope is not None:
        scope.record_fallback("kernels", message)


# -- request validation -------------------------------------------------------


def validate_backend(value: str) -> str:
    """Validate a user-supplied backend name (CLI boundary: reject loudly)."""
    if value not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {', '.join(BACKENDS)}; got {value!r}"
        )
    return value


def default_backend() -> str:
    """The requested backend from ``REPRO_BACKEND`` (default ``auto``)."""
    raw = os.environ.get(ENV_BACKEND, "")
    if not raw:
        return AUTO
    if raw not in BACKENDS:
        raise ConfigurationError(
            f"{ENV_BACKEND} must be one of {', '.join(BACKENDS)}; got {raw!r}"
        )
    return raw


# -- spec qualification -------------------------------------------------------


def structure_mode(spec) -> Optional[str]:
    """Execution mode of one structure spec on the numpy backend.

    ``VECTOR`` when the structure's hit condition is expressible as
    array passes over the miss stream, ``MISS_REPLAY`` when the live
    interpreter structure must replay the (compressed) miss stream, and
    ``None`` for ``spec`` values that are not registered structure
    specs.  The vector conditions mirror
    :mod:`repro.kernels.assist` exactly:

    * miss cache — LRU replacement (the reuse-distance rank pass *is*
      LRU stack depth);
    * victim cache — LRU replacement with ``swap_on_hit`` (a hit must
      invalidate, which is what keeps the finite cache a prefix of the
      unbounded stack);
    * stream buffer (single way) — head-only matching without
      availability modelling or the allocation filter (the hit
      condition then closes over consecutive-miss chains alone).
    """
    from ..specs.structures import StructureSpec

    if spec is None:
        return VECTOR
    if not isinstance(spec, StructureSpec):
        return None
    kind = spec.kind
    if kind == "miss_cache":
        return VECTOR if spec.policy == "lru" else MISS_REPLAY
    if kind == "victim_cache":
        return VECTOR if spec.policy == "lru" and spec.swap_on_hit else MISS_REPLAY
    if kind == "stream_buffer":
        vector = (
            spec.head_only
            and not spec.model_availability
            and not spec.allocation_filter
        )
        return VECTOR if vector else MISS_REPLAY
    if kind == "composite":
        if any(structure_mode(member) is None for member in spec.members):
            return None
        return MISS_REPLAY
    if kind in (
        "multi_way_stream_buffer",
        "stride_buffer",
        "multi_way_stride_buffer",
    ):
        return MISS_REPLAY
    return None


def disqualifications(system) -> Tuple[str, ...]:
    """Every reason a spec point cannot run vectorized (empty when it can).

    One entry per offending part — a composite with several
    unsupported members names each of them — so the fallback warning
    for a heterogeneous sweep is actionable in one read.
    """
    from ..specs import SystemSpec
    from ..specs.structures import StructureSpec

    if not isinstance(system, SystemSpec):
        return (f"not a SystemSpec: {type(system).__name__}",)
    structure = system.structure
    if structure is None:
        return ()
    reasons: List[str] = []
    if not isinstance(structure, StructureSpec):
        reasons.append(
            f"structure is not a StructureSpec: {type(structure).__name__}"
        )
    elif structure.kind == "composite":
        for member in structure.members:
            if structure_mode(member) is None:
                kind = getattr(member, "kind", type(member).__name__)
                reasons.append(
                    f"composite member {kind!r} has no kernel mode"
                )
    elif structure_mode(structure) is None:
        reasons.append(f"structure kind {structure.kind!r} has no kernel mode")
    return tuple(reasons)


def disqualification(system) -> Optional[str]:
    """All reasons a spec point cannot run vectorized (``"; "``-joined),
    or None when it can."""
    reasons = disqualifications(system)
    return "; ".join(reasons) if reasons else None


def qualifies(system) -> bool:
    """Whether :func:`select_backend` could ever pick numpy for *system*."""
    return not disqualifications(system)


def kernel_mode(system) -> Optional[str]:
    """How *system* would execute on the numpy backend, or None.

    ``VECTOR`` for structure-free points and vectorizable structures,
    ``MISS_REPLAY`` for structures that replay the compressed miss
    stream, ``None`` when the point is disqualified outright.  This is
    a property of the spec alone — combine with
    :func:`select_backend` to learn what actually runs.
    """
    from ..specs import SystemSpec

    if not isinstance(system, SystemSpec):
        return None
    if disqualifications(system):
        return None
    return structure_mode(system.structure)


def select_backend(system, requested: Optional[str] = None) -> str:
    """The backend one spec point will execute on: ``"numpy"`` | ``"python"``.

    *requested* overrides the environment (it must already be a valid
    backend name; CLI input goes through :func:`validate_backend`
    first).  Non-qualifying specs always fall back to python — never an
    error — and an explicit numpy request on a machine without numpy
    records a one-time :class:`KernelFallbackWarning`.
    """
    request = default_backend() if requested is None else requested
    if request == PYTHON:
        return PYTHON
    if disqualification(system) is not None:
        return PYTHON
    available, reason = _probe_numpy()
    if not available:
        if request == NUMPY:
            _warn_unavailable_once(reason)
        return PYTHON
    return NUMPY
