"""Simulation kernel backends: whole-trace array passes vs. the interpreter.

The reference simulator walks traces one reference at a time through
live cache objects — exact, fully general, and bounded by the Python
interpreter.  This package adds a second implementation of the
*structure-free* subset of that work: a numpy backend
(:mod:`repro.kernels.numpy_backend`) that simulates a direct-mapped
cache level — and the bare split-L1/L2 system — over an entire packed
trace in vectorized array passes, including 3C miss classification.
Both backends produce **identical statistics**, pinned by the
equivalence suite in ``tests/test_kernels.py``; which one runs is a pure
performance decision.

Backend selection
-----------------

:func:`select_backend` is the single dispatch point.  It combines three
inputs:

* the **request** — ``REPRO_BACKEND`` (``auto`` | ``python`` | ``numpy``,
  default ``auto``) or the CLI's ``--backend`` flag, validated by
  :func:`validate_backend`;
* the **spec** — only structure-free
  :class:`~repro.specs.SystemSpec` points qualify
  (:func:`disqualification` names the reason otherwise): helper
  structures (miss/victim caches, stream buffers, stride prefetchers)
  are stateful per-reference machines the array passes cannot express,
  so they always run on the reference interpreter;
* **availability** — numpy is an optional dependency (the ``fast``
  extra).  When it is missing the python backend runs instead; an
  explicit ``REPRO_BACKEND=numpy`` request additionally records a
  one-time :class:`KernelFallbackWarning` so the degradation is never
  silent.

Selection **never raises for a non-qualifying spec** — a stateful
structure under ``REPRO_BACKEND=numpy`` silently (and correctly) runs
the interpreter, so one environment setting can cover a heterogeneous
sweep.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Tuple

from ..common.errors import ConfigurationError

__all__ = [
    "AUTO",
    "PYTHON",
    "NUMPY",
    "BACKENDS",
    "ENV_BACKEND",
    "KernelFallbackWarning",
    "numpy_available",
    "numpy_unavailable_reason",
    "validate_backend",
    "default_backend",
    "disqualification",
    "qualifies",
    "select_backend",
]

AUTO = "auto"
PYTHON = "python"
NUMPY = "numpy"
BACKENDS = (AUTO, PYTHON, NUMPY)

#: Environment knob mirrored by the CLI's ``--backend`` flag.
ENV_BACKEND = "REPRO_BACKEND"


class KernelFallbackWarning(UserWarning):
    """A requested vectorized backend was unavailable; python ran instead."""


# -- availability -------------------------------------------------------------

#: ``None`` until probed, then ``(available, reason_if_not)``.
_NUMPY_PROBE: Optional[Tuple[bool, str]] = None
_WARNED_UNAVAILABLE = False


def _probe_numpy() -> Tuple[bool, str]:
    global _NUMPY_PROBE
    if _NUMPY_PROBE is None:
        try:
            import numpy  # noqa: F401

            _NUMPY_PROBE = (True, "")
        except Exception as exc:  # pragma: no cover - depends on environment
            _NUMPY_PROBE = (False, f"numpy is not importable ({exc!r})")
    return _NUMPY_PROBE


def numpy_available() -> bool:
    """Whether the numpy backend can run (probed once per process)."""
    return _probe_numpy()[0]


def numpy_unavailable_reason() -> str:
    """Why numpy is unavailable, or ``""`` when it is available."""
    return _probe_numpy()[1]


def _reset_probe_for_tests(
    probe: Optional[Tuple[bool, str]] = None, warned: bool = False
) -> None:
    """Test hook: override (or clear) the availability probe state."""
    global _NUMPY_PROBE, _WARNED_UNAVAILABLE
    _NUMPY_PROBE = probe
    _WARNED_UNAVAILABLE = warned


def _warn_unavailable_once(reason: str) -> None:
    """One recorded warning per process for an unsatisfiable numpy request.

    The warning always fires (so an ignored ``REPRO_BACKEND=numpy`` is
    visible without telemetry); when a
    :class:`~repro.telemetry.core.MetricsScope` is active the event is
    additionally recorded for the run record, next to the engine's
    serial-fallback reasons.
    """
    global _WARNED_UNAVAILABLE
    if _WARNED_UNAVAILABLE:
        return
    _WARNED_UNAVAILABLE = True
    message = f"REPRO_BACKEND=numpy requested but {reason}; using the python backend"
    warnings.warn(message, KernelFallbackWarning, stacklevel=3)
    from ..telemetry.core import current as _telemetry_scope

    scope = _telemetry_scope()
    if scope is not None:
        scope.record_fallback("kernels", message)


# -- request validation -------------------------------------------------------


def validate_backend(value: str) -> str:
    """Validate a user-supplied backend name (CLI boundary: reject loudly)."""
    if value not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {', '.join(BACKENDS)}; got {value!r}"
        )
    return value


def default_backend() -> str:
    """The requested backend from ``REPRO_BACKEND`` (default ``auto``)."""
    raw = os.environ.get(ENV_BACKEND, "")
    if not raw:
        return AUTO
    if raw not in BACKENDS:
        raise ConfigurationError(
            f"{ENV_BACKEND} must be one of {', '.join(BACKENDS)}; got {raw!r}"
        )
    return raw


# -- spec qualification -------------------------------------------------------


def disqualification(system) -> Optional[str]:
    """Why a spec point cannot run vectorized, or None when it can.

    The vectorized kernel expresses exactly what a bare
    :class:`~repro.hierarchy.level.CacheLevel` does: a direct-mapped tag
    array (any geometry, either side, any warm-up) with optional 3C
    classification.  Helper structures keep per-reference state the
    array passes cannot reproduce, so any ``structure`` disqualifies.
    """
    from ..specs import SystemSpec

    if not isinstance(system, SystemSpec):
        return f"not a SystemSpec: {type(system).__name__}"
    if system.structure is not None:
        return f"stateful structure {system.structure.kind!r} needs the interpreter"
    return None


def qualifies(system) -> bool:
    """Whether :func:`select_backend` could ever pick numpy for *system*."""
    return disqualification(system) is None


def select_backend(system, requested: Optional[str] = None) -> str:
    """The backend one spec point will execute on: ``"numpy"`` | ``"python"``.

    *requested* overrides the environment (it must already be a valid
    backend name; CLI input goes through :func:`validate_backend`
    first).  Non-qualifying specs always fall back to python — never an
    error — and an explicit numpy request on a machine without numpy
    records a one-time :class:`KernelFallbackWarning`.
    """
    request = default_backend() if requested is None else requested
    if request == PYTHON:
        return PYTHON
    if disqualification(system) is not None:
        return PYTHON
    available, reason = _probe_numpy()
    if not available:
        if request == NUMPY:
            _warn_unavailable_once(reason)
        return PYTHON
    return NUMPY
