"""Vectorized assist-structure kernels over the direct-mapped miss stream.

The paper's helper structures all live behind the L1 cache: consulted
only on a miss (``lookup_on_miss``), updated only on a refill
(``on_l1_fill``), never told about hits.  Because the direct-mapped
array is refilled on *every* miss, its state evolution — and therefore
the ordered miss stream and the victim evicted by each refill — is
completely independent of the structure (the property §3 of the paper
relies on).  That splits any structure run into two passes:

* **Pass 1** (:func:`extract_miss_stream`) — the existing vectorized
  direct-mapped resolution, extended to emit the ordered miss stream:
  trace positions, requested lines, and the line each refill evicted
  (the previous reference to the same slot).
* **Pass 2** — resolve the structure over that much shorter stream, in
  one of two modes (:func:`repro.kernels.structure_mode`):

  - ``vector``: the hit condition closes over the miss stream in array
    form.  An LRU **miss cache** of capacity N hits iff fewer than N
    distinct miss-lines occurred since the previous miss to the same
    line — one reuse-distance rank pass, which yields the hit count for
    *every* capacity at once (:func:`entry_sweep` runs the whole
    Figure 3-3/3-5 sweep in a single pass).  An LRU **victim cache**
    with swap-on-hit is the same stack-depth question over the
    interleaved lookup/insert token stream (:func:`_victim_depths`),
    using the exclusivity invariant (a line is never in both L1 and the
    victim cache, at any capacity) and the fact that a hit-invalidation
    keeps the finite cache a prefix of the unbounded LRU stack.  A
    single-way head-only **stream buffer** hits exactly on consecutive
    miss-line chains, with ``max_run`` cutting each chain into
    ``max_run + 1``-long segments (:func:`_stream_buffer_hits`).
  - ``miss-replay``: the live interpreter structure replays the
    compressed miss stream (:func:`_replay_structure`) with ``now`` set
    to the original trace position, so availability modelling, LRU way
    rotation, stride detection and composites stay bit-exact while
    paying Python dispatch only per *miss*, not per reference.

Warm-up follows the interpreter exactly: structure and cache state are
warmed over the full stream; counters only accumulate inside the
measurement window.  Equivalence — every
:class:`~repro.hierarchy.level.LevelStats` counter, every sweep bucket —
is pinned by ``tests/test_kernels.py`` across randomized streams, all
named traces, and the pattern workload specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import List, Optional, Tuple

import numpy as np

from ..common.config import CacheConfig
from ..common.types import AccessOutcome
from ..hierarchy.level import LevelStats
from ..telemetry.core import current as _telemetry_scope
from . import MISS_REPLAY, VECTOR, structure_mode
from .numpy_backend import (
    _INT64,
    _effective_warmup,
    _index_dtype,
    _rank_left_leq,
    classify_misses,
    direct_mapped_hit_mask,
    prev_occurrence,
    stream_array,
    KernelLevelResult,
)

__all__ = [
    "MissStream",
    "extract_miss_stream",
    "simulate_assist_level",
    "simulate_assist_summary",
    "entry_sweep",
    "entry_sweep_summary",
    "run_length_sweep",
    "run_length_sweep_summary",
]


# -- pass 1: the ordered miss stream ------------------------------------------


@dataclass
class MissStream:
    """Everything pass 2 needs about one direct-mapped replay."""

    #: Full-stream line addresses (len == trace length).
    lines: np.ndarray
    #: Full-stream direct-mapped hit mask.
    hits: np.ndarray
    #: Trace positions of the misses, ascending.
    positions: np.ndarray
    #: Requested line per miss.
    miss_lines: np.ndarray
    #: Line evicted by each refill; ``-1`` when the slot was cold.
    victims: np.ndarray


def extract_miss_stream(lines: np.ndarray, num_lines: int) -> MissStream:
    """Resolve a direct-mapped level and emit its ordered miss stream.

    The victim of a refill is the previous reference to the same slot
    (hit or miss — the slot always holds the last line referenced
    through it), which falls out of the same stable argsort-by-slot the
    hit mask uses.  On a miss the previous occupant necessarily differs
    from the requested line, so it is always a genuine eviction.
    """
    n = len(lines)
    hits = direct_mapped_hit_mask(lines, num_lines)
    resident_before = np.full(n, -1, dtype=_INT64)
    if n:
        index = (lines & (num_lines - 1)).astype(_index_dtype(num_lines), copy=False)
        order = np.argsort(index, kind="stable")
        same = index[order][1:] == index[order][:-1]
        resident_before[order[1:][same]] = lines[order[:-1][same]]
    positions = np.nonzero(~hits)[0].astype(_INT64, copy=False)
    return MissStream(
        lines=lines,
        hits=hits,
        positions=positions,
        miss_lines=lines[positions],
        victims=resident_before[positions],
    )


# -- pass 2, vector mode ------------------------------------------------------


def _lru_depths(stream: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Unbounded LRU stack depth of each revisit in *stream*.

    Returns ``(seen, depth)``: ``seen`` marks revisits, ``depth`` (valid
    only there) is the number of distinct values since the previous
    occurrence — exactly the 0-based depth an access-then-fill LRU cache
    of unbounded capacity would report, so a capacity-N cache hits iff
    ``depth < N``.
    """
    prev = prev_occurrence(stream)
    seen = prev >= 0
    queries = np.nonzero(seen)[0].astype(_INT64, copy=False)
    depth = _rank_left_leq(prev + 1, queries) - (prev + 1)
    return seen, depth


def _victim_depths(
    miss_lines: np.ndarray, victims: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Unbounded victim-cache lookup outcomes over the miss stream.

    Models the LRU, swap-on-hit victim cache as a token stream: each
    miss emits a *lookup* token for the requested line, then (when the
    refill evicted something) an *insert* token for the victim.  In the
    unbounded cache a lookup hits iff its line's most recent token is an
    insert — inserts make a line resident, a hit invalidates it (the
    swap), and a missed lookup changes nothing.  Exclusivity (the victim
    of a refill was resident in L1, never in the victim cache) makes
    every insert a fresh push onto the LRU stack, and because a finite
    cache of capacity N always holds exactly the top N of the unbounded
    stack, a lookup hits at capacity N iff its unbounded depth is below
    N.

    The depth of a hit at token ``u`` whose line was pushed at token
    ``p`` counts the still-resident lines pushed after ``p``:
    ``inserts_in(p, u)`` minus the hit-lookups in ``(p, u)`` that
    invalidated one of those pushes (hits whose matched insert sits
    after ``p`` — a per-query threshold rank count).

    Returns ``(hit, depth)`` per miss; ``depth`` is valid only at hits.
    """
    m = len(miss_lines)
    hit = np.zeros(m, dtype=bool)
    depth = np.zeros(m, dtype=_INT64)
    if not m:
        return hit, depth
    has_victim = victims >= 0
    inserts = int(np.count_nonzero(has_victim))
    # Token layout: lookup_j at j + (#inserts before j), its insert (if
    # any) immediately after.
    before = np.cumsum(has_victim) - has_victim
    lookup_pos = np.arange(m, dtype=_INT64) + before
    insert_pos = lookup_pos[has_victim] + 1
    total = m + inserts
    token_line = np.empty(total, dtype=_INT64)
    token_line[lookup_pos] = miss_lines
    token_line[insert_pos] = victims[has_victim]
    is_insert = np.zeros(total, dtype=bool)
    is_insert[insert_pos] = True

    prev = prev_occurrence(token_line)
    prev_of_lookup = prev[lookup_pos]
    hit = (prev_of_lookup >= 0) & is_insert[np.maximum(prev_of_lookup, 0)]
    hit_tokens = lookup_pos[hit]
    if not len(hit_tokens):
        return hit, depth
    matched = prev_of_lookup[hit]  # the insert that pushed each hit line

    inserts_before = np.cumsum(is_insert) - is_insert  # exclusive prefix
    pushed_after = inserts_before[hit_tokens] - inserts_before[matched] - 1
    # Hits before u whose matched insert also precedes u's own push p:
    # those invalidated lines deeper than u's line and don't reduce its
    # depth.  values[h] = matched insert of hit h, off-scale elsewhere.
    hit_mask = np.zeros(total, dtype=bool)
    hit_mask[hit_tokens] = True
    hits_before = np.cumsum(hit_mask) - hit_mask  # exclusive prefix
    values = np.full(total, total, dtype=_INT64)
    values[hit_tokens] = matched
    thresholds = np.zeros(total, dtype=_INT64)
    thresholds[hit_tokens] = matched
    dominated = _rank_left_leq(values, queries=hit_tokens, thresholds=thresholds)
    invalidated_above = hits_before[hit_tokens] - dominated[hit_tokens]
    depth[hit] = pushed_after - invalidated_above
    return hit, depth


def _stream_buffer_hits(
    miss_lines: np.ndarray, max_run: Optional[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-way head-only sequential stream buffer over the miss stream.

    The buffer holds the next lines after the last allocation, head-only
    matching means a miss hits iff it equals the head, and every
    non-matching miss reallocates — so a miss hits iff it extends a
    consecutive chain of miss lines, and its run offset is its distance
    ``c`` from the chain anchor.  Buffer *entries* never change the hit
    behaviour (each hit pops the head and tops the queue back up).  A
    finite ``max_run`` only prefetches ``max_run`` lines per allocation:
    position ``c`` in a chain hits iff ``c mod (max_run + 1) != 0`` —
    every multiple of ``max_run + 1`` finds the queue exhausted and
    becomes a fresh anchor.

    Returns ``(hit, offset)`` per miss; ``offset`` is valid at hits.
    """
    m = len(miss_lines)
    step = np.zeros(m, dtype=bool)
    if m > 1:
        step[1:] = miss_lines[1:] == miss_lines[:-1] + 1
    idx = np.arange(m, dtype=_INT64)
    anchor = np.maximum.accumulate(np.where(step, -1, idx))
    offset = idx - anchor
    if max_run is None:
        return step, offset
    offset = offset % (max_run + 1)
    return step & (offset != 0), offset


# -- pass 2, miss-replay mode -------------------------------------------------


def _replay_structure(
    structure, miss_stream: MissStream, start: int
) -> Tuple[LevelStats, np.ndarray]:
    """Drive a live interpreter structure over the compressed miss stream.

    Calls ``lookup_on_miss`` then ``on_l1_fill`` per miss, in the exact
    order :meth:`~repro.hierarchy.level.CacheLevel.access_line` would,
    with ``now`` set to the original trace position so availability
    modelling (``ready_time`` arithmetic) is preserved.  Counters only
    accumulate at positions inside the measurement window.  Returns the
    structure-attributable stats fields plus the per-miss removed mask
    (for callers that need the sweep histograms kept by the structure).
    """
    lookup = structure.lookup_on_miss
    fill = structure.on_l1_fill
    victim_hit = AccessOutcome.VICTIM_HIT
    stream_hit = AccessOutcome.STREAM_HIT
    stats = LevelStats()
    removed = np.zeros(len(miss_stream.positions), dtype=bool)
    for i, (now, line, victim) in enumerate(
        zip(
            miss_stream.positions.tolist(),
            miss_stream.miss_lines.tolist(),
            miss_stream.victims.tolist(),
        )
    ):
        result = lookup(line, now)
        fill(line, victim if victim >= 0 else None, now)
        if now < start:
            continue
        if result.stall_cycles:
            stats.stream_stall_cycles += result.stall_cycles
        if result.satisfied:
            removed[i] = True
            outcome = result.outcome
            if outcome is victim_hit:
                stats.victim_hits += 1
            elif outcome is stream_hit:
                stats.stream_hits += 1
            else:
                stats.miss_cache_hits += 1
    return stats, removed


# -- whole-run kernels --------------------------------------------------------


def simulate_assist_level(
    byte_addresses,
    config: CacheConfig,
    structure_spec,
    classify: bool = False,
    warmup: int = 0,
) -> KernelLevelResult:
    """Vectorized ``run_level`` for a level with a helper structure.

    ``structure_spec`` must have a kernel mode
    (:func:`repro.kernels.structure_mode` not None); dispatch through
    :func:`repro.kernels.select_backend` guarantees this.
    """
    from ..specs.structures import build

    addresses = np.asarray(byte_addresses, dtype=_INT64)
    lines = addresses >> config.offset_bits
    ms = extract_miss_stream(lines, config.num_lines)
    n = len(lines)
    start = _effective_warmup(warmup, n)

    mode = structure_mode(structure_spec)
    if mode == VECTOR:
        kind = structure_spec.kind
        counted = ms.positions >= start
        stats = LevelStats()
        if kind == "miss_cache":
            seen, depth = _lru_depths(ms.miss_lines)
            removed = seen & (depth < structure_spec.entries)
            stats.miss_cache_hits = int(np.count_nonzero(removed & counted))
        elif kind == "victim_cache":
            vc_hit, depth = _victim_depths(ms.miss_lines, ms.victims)
            removed = vc_hit & (depth < structure_spec.entries)
            stats.victim_hits = int(np.count_nonzero(removed & counted))
        else:  # stream_buffer
            sb_hit, _ = _stream_buffer_hits(ms.miss_lines, structure_spec.max_run)
            stats.stream_hits = int(np.count_nonzero(sb_hit & counted))
    elif mode == MISS_REPLAY:
        stats, _ = _replay_structure(build(structure_spec), ms, start)
    else:
        raise ValueError(
            f"structure spec has no kernel mode: {structure_spec!r}"
        )

    stats.accesses = n - start
    stats.hits = int(np.count_nonzero(ms.hits[start:]))
    demand = stats.accesses - stats.hits
    stats.misses_to_next_level = demand - stats.removed_misses
    classification = (
        classify_misses(lines, ms.hits, config.num_lines, warmup) if classify else None
    )
    return KernelLevelResult(stats, classification)


def simulate_assist_summary(system):
    """Execute one structure-carrying :class:`LevelJob` spec point vectorized.

    Mirrors :func:`repro.kernels.numpy_backend.simulate_level_summary`:
    same :class:`~repro.experiments.engine.LevelSummary` counters, same
    telemetry observation.
    """
    from ..experiments.engine import LevelSummary

    scope = _telemetry_scope()
    started = perf_counter() if scope is not None else 0.0
    addresses = stream_array(system.trace.trace(), system.side)
    run = simulate_assist_level(
        addresses,
        system.cache_config,
        system.structure,
        classify=system.classify,
        warmup=system.warmup,
    )
    if scope is not None:
        scope.observe_level_run(run.stats, perf_counter() - started)
    return LevelSummary(
        accesses=run.stats.accesses,
        demand_misses=run.stats.demand_misses,
        removed_misses=run.stats.removed_misses,
        misses_to_next_level=run.stats.misses_to_next_level,
        stream_stall_cycles=run.stats.stream_stall_cycles,
        conflict_misses=run.conflicts if system.classify else None,
    )


# -- one-pass sweeps ----------------------------------------------------------


def _count_at_most(depths: np.ndarray, limit: int) -> List[int]:
    """``out[k] = #{d in depths : d <= k - 1}`` for ``k`` in 0..limit.

    One clipped bincount + cumsum instead of ``limit`` comparisons.
    """
    if not len(depths):
        return [0] * (limit + 1)
    clipped = np.minimum(depths, limit)
    cumulative = np.cumsum(np.bincount(clipped, minlength=limit + 1))
    return [0] + [int(cumulative[k - 1]) for k in range(1, limit + 1)]


def entry_sweep(byte_addresses, config: CacheConfig, kind: str, max_entries: int):
    """One-pass miss/victim-cache entry sweep (Figures 3-3/3-5).

    Equivalent to ``max_entries`` independent capacity runs — or the
    interpreter's tracked-depth single run — but the reuse-distance rank
    pass prices every capacity at once: ``hits_by_entries[k]`` is the
    number of lookups whose unbounded LRU depth is below ``k``.
    """
    from ..experiments.sweeps import EntrySweep

    addresses = np.asarray(byte_addresses, dtype=_INT64)
    lines = addresses >> config.offset_bits
    ms = extract_miss_stream(lines, config.num_lines)
    if kind == "miss":
        seen, depth = _lru_depths(ms.miss_lines)
        depths = depth[seen]
    else:  # victim
        vc_hit, depth = _victim_depths(ms.miss_lines, ms.victims)
        depths = depth[vc_hit]
    classification = classify_misses(lines, ms.hits, config.num_lines)
    return EntrySweep(
        total_misses=len(ms.positions),
        conflict_misses=int(classification["conflict"]),
        hits_by_entries=_count_at_most(depths, max_entries),
    )


def entry_sweep_summary(system, kind: str, max_entries: int):
    """Vectorized :class:`~repro.experiments.engine.EntrySweepJob` body."""
    addresses = stream_array(system.trace.trace(), system.side)
    return entry_sweep(addresses, system.cache_config, kind, max_entries)


def run_length_sweep(
    byte_addresses, config: CacheConfig, ways: int, entries: int, max_run: int
):
    """Stream-buffer run-length sweep (Figure 4-4 style).

    Single-way buffers vectorize (run offsets are chain positions);
    multi-way buffers replay the miss stream through the live structure
    and read its run-offset histogram.
    """
    from ..buffers.stream_buffer import MultiWayStreamBuffer
    from ..experiments.sweeps import RunLengthSweep

    addresses = np.asarray(byte_addresses, dtype=_INT64)
    lines = addresses >> config.offset_bits
    ms = extract_miss_stream(lines, config.num_lines)
    if ways == 1:
        sb_hit, offset = _stream_buffer_hits(ms.miss_lines, None)
        removed = _count_at_most(offset[sb_hit] - 1, max_run)
    else:
        buffer = MultiWayStreamBuffer(
            ways=ways, entries=entries, track_run_offsets=True
        )
        _replay_structure(buffer, ms, 0)
        offsets = buffer.run_offsets
        removed = [offsets.count_at_most(k) for k in range(max_run + 1)]
    return RunLengthSweep(total_misses=len(ms.positions), removed_by_run=removed)


def run_length_sweep_summary(system, ways: int, entries: int, max_run: int):
    """Vectorized :class:`~repro.experiments.engine.RunSweepJob` body."""
    addresses = stream_array(system.trace.trace(), system.side)
    return run_length_sweep(addresses, system.cache_config, ways, entries, max_run)
