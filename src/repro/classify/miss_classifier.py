"""3C miss classification (paper §3, after Hill's thesis).

The paper classifies misses into four categories:

* **compulsory** — the first reference ever made to the line;
* **conflict** — a miss that would *not* have occurred if the cache were
  fully associative with LRU replacement;
* **capacity** — a miss the fully-associative cache of the same total
  size would also take (the working set simply does not fit);
* **coherence** — invalidation misses, always zero in this uniprocessor
  reproduction but reported explicitly.

The classifier runs a fully-associative LRU *shadow cache* of the same
capacity alongside the real direct-mapped cache.  It must observe every
access — hits included — or the shadow's LRU state diverges from what a
fully-associative cache would actually have held.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..caches.fully_associative import FullyAssociativeCache, ReplacementPolicy
from ..common.errors import ConfigurationError
from ..common.stats import percent
from ..common.types import MissKind

__all__ = ["MissClassifier"]


class MissClassifier:
    """Classify each miss of a direct-mapped cache into the 3C taxonomy."""

    def __init__(self, num_lines: int):
        if num_lines < 1:
            raise ConfigurationError(f"num_lines must be >= 1, got {num_lines}")
        self.num_lines = num_lines
        self._shadow = FullyAssociativeCache(num_lines, ReplacementPolicy.LRU)
        self._ever_referenced: Set[int] = set()
        self.counts: Dict[MissKind, int] = {kind: 0 for kind in MissKind}
        self.accesses = 0
        self.misses = 0

    def observe(self, line_addr: int, direct_mapped_hit: bool) -> Optional[MissKind]:
        """Record one access; classify and return its miss kind (or None).

        *direct_mapped_hit* is the outcome in the real cache.  Note that
        helper-structure hits (miss cache / victim cache / stream buffer)
        are still direct-mapped misses and must be passed as misses —
        classification is a property of the baseline cache organisation,
        independent of what removes the miss.
        """
        self.accesses += 1
        first_reference = line_addr not in self._ever_referenced
        if first_reference:
            self._ever_referenced.add(line_addr)
        shadow_hit = self._shadow.access(line_addr)
        if not shadow_hit:
            self._shadow.fill(line_addr)
        if direct_mapped_hit:
            return None
        self.misses += 1
        if first_reference:
            kind = MissKind.COMPULSORY
        elif shadow_hit:
            kind = MissKind.CONFLICT
        else:
            kind = MissKind.CAPACITY
        self.counts[kind] += 1
        return kind

    def reset(self) -> None:
        self._shadow.clear()
        self._ever_referenced.clear()
        self.reset_counts()

    def reset_counts(self) -> None:
        """Zero the statistics while keeping the shadow state.

        Used for steady-state measurement: after a warm-up replay the
        counters restart, but the shadow cache and the first-reference
        set must keep their history or warm misses would be reclassified
        as compulsory.
        """
        self.counts = {kind: 0 for kind in MissKind}
        self.accesses = 0
        self.misses = 0

    # -- derived statistics ----------------------------------------------------

    @property
    def conflict_misses(self) -> int:
        return self.counts[MissKind.CONFLICT]

    @property
    def compulsory_misses(self) -> int:
        return self.counts[MissKind.COMPULSORY]

    @property
    def capacity_misses(self) -> int:
        return self.counts[MissKind.CAPACITY]

    @property
    def percent_conflict(self) -> float:
        """Share of all misses due to conflicts — Figure 3-1's quantity."""
        return percent(self.conflict_misses, self.misses)

    def summary(self) -> Dict[str, float]:
        return {
            "accesses": self.accesses,
            "misses": self.misses,
            "compulsory": self.compulsory_misses,
            "capacity": self.capacity_misses,
            "conflict": self.conflict_misses,
            "coherence": self.counts[MissKind.COHERENCE],
            "percent_conflict": self.percent_conflict,
        }
