"""Miss classification (3C) and multi-level inclusion monitoring."""

from .inclusion import InclusionMonitor, InclusionReport
from .miss_classifier import MissClassifier

__all__ = ["MissClassifier", "InclusionMonitor", "InclusionReport"]
