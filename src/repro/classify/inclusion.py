"""Multi-level inclusion monitoring (paper §3.5, after Baer & Wang).

§3.5 makes two observations about inclusion — the property that every
line in an upper-level cache is also present in the level below it:

* "One interesting aspect of victim caches is that they violate
  inclusion properties in cache hierarchies."  A victim-cache hit swaps
  a line into L1 that the L2 may long since have replaced.
* "However, the line size of the second level cache in the baseline
  design is 8 to 16 times larger than the first-level cache line sizes,
  so this violates inclusion as well."  (A 128B L2 line can be evicted
  while several of its 16B fragments still live in L1.)

:class:`InclusionMonitor` watches an L1 (plus optional victim cache) and
an L2 and counts, at every step, how many upper-level lines have no
backing L2 line — making both §3.5 claims measurable
(:mod:`repro.experiments.ext_inclusion`).

Inclusion matters for multiprocessor snooping: an invalidation filtered
by the L2 must be able to assume nothing above it holds the line, so
every violation is a line a snoop filter would miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..buffers.victim_cache import VictimCache
from ..caches.direct_mapped import DirectMappedCache
from ..common.config import CacheConfig
from ..common.errors import ConfigurationError
from ..common.stats import safe_div
from ..hierarchy.level import CacheLevel

__all__ = ["InclusionReport", "InclusionMonitor"]


@dataclass
class InclusionReport:
    """Violation statistics accumulated over one run."""

    accesses: int = 0
    #: Accesses after which at least one upper line lacked L2 backing.
    steps_with_violation: int = 0
    #: Sum over steps of unbacked upper lines (intensity, not just rate).
    violating_line_steps: int = 0
    #: Peak number of simultaneously unbacked upper lines.
    peak_violations: int = 0
    #: Violations observed inside the victim cache specifically.
    victim_cache_violations: int = 0

    @property
    def violation_rate(self) -> float:
        """Fraction of steps on which inclusion did not hold."""
        return safe_div(self.steps_with_violation, self.accesses)


class InclusionMonitor:
    """Drive an L1(+VC)/L2 pair and measure inclusion violations."""

    def __init__(
        self,
        l1_config: CacheConfig,
        l2_config: CacheConfig,
        victim_entries: int = 0,
        sample_interval: int = 1,
    ):
        if sample_interval < 1:
            raise ConfigurationError("sample_interval must be >= 1")
        if l2_config.line_size < l1_config.line_size:
            raise ConfigurationError("L2 line size must be >= L1 line size")
        self.l1_config = l1_config
        self.l2_config = l2_config
        self.victim = VictimCache(victim_entries) if victim_entries else None
        self.level = CacheLevel(l1_config, self.victim)
        self.l2 = DirectMappedCache(l2_config)
        self._l1_shift = l1_config.offset_bits
        self._l2_shift = l2_config.offset_bits
        self._lines_per_l2_line = l2_config.line_size // l1_config.line_size
        #: Scanning every resident line per access is O(cache size); a
        #: sampling interval > 1 trades temporal resolution for speed
        #: (the rate estimate stays unbiased for stationary behaviour).
        self.sample_interval = sample_interval
        self._since_sample = 0
        self.report = InclusionReport()

    def access(self, byte_address: int) -> None:
        outcome = self.level.access_line(byte_address >> self._l1_shift)
        if outcome.goes_to_next_level:
            self.l2.access_and_fill(byte_address >> self._l2_shift)
        self._since_sample += 1
        if self._since_sample >= self.sample_interval:
            self._since_sample = 0
            self._observe()

    def run(self, byte_addresses: Iterable[int]) -> InclusionReport:
        for address in byte_addresses:
            self.access(address)
        return self.report

    # -- internals --------------------------------------------------------------

    def _l2_backs(self, l1_line: int) -> bool:
        shift = self._l2_shift - self._l1_shift
        return self.l2.probe(l1_line >> shift)

    def _observe(self) -> None:
        self.report.accesses += 1
        unbacked = sum(
            1 for line in self.level.cache.resident_lines() if not self._l2_backs(line)
        )
        victim_unbacked = 0
        if self.victim is not None:
            victim_unbacked = sum(
                1 for line in self.victim.resident_lines() if not self._l2_backs(line)
            )
        total = unbacked + victim_unbacked
        if total:
            self.report.steps_with_violation += 1
            self.report.violating_line_steps += total
            self.report.victim_cache_violations += victim_unbacked
            if total > self.report.peak_violations:
                self.report.peak_violations = total
