"""Setup shim.

The metadata lives in pyproject.toml; this file exists so the package can
be installed in environments without the `wheel` module (PEP 660 editable
installs need to build a wheel, `setup.py develop` does not).
"""

from setuptools import setup

setup()
