#!/usr/bin/env python
"""Would a victim cache help *your* program?

The six benchmark generators are fixed calibrations of the paper's
traces; `CustomWorkload` exposes the same pattern library through a few
knobs so you can sketch your own program's behaviour and run the paper's
design questions against it.

This example models three caricatures — a database engine, a network
packet processor, and a video decoder — and reports which of the paper's
structures each one wants.

Run:  python examples/custom_workload.py
"""

from repro import (
    CacheConfig,
    CustomWorkload,
    MissCache,
    MultiWayStreamBuffer,
    StreamBuffer,
    VictimCache,
)
from repro.experiments.runner import run_level

CACHE = CacheConfig(4096, 16)

PROFILES = {
    # B-tree descent and buffer-pool lookups: pointer-heavy, big working
    # set, a slice of conflicts from hash-bucket collisions.
    "database": CustomWorkload(
        name="database",
        instructions=40_000,
        code_footprint=64 * 1024,
        call_intensity=0.5,
        sequential_fraction=0.05,
        conflict_fraction=0.06,
        pointer_fraction=0.35,
        data_working_set=512 * 1024,
    ),
    # Packet processing: tight code, streaming payloads, header/state
    # tables that collide.
    "packet-proc": CustomWorkload(
        name="packet-proc",
        instructions=40_000,
        code_footprint=6 * 1024,
        call_intensity=0.15,
        sequential_fraction=0.40,
        conflict_fraction=0.10,
        pointer_fraction=0.05,
        data_working_set=256 * 1024,
    ),
    # Video decode: loop kernels streaming frames, almost no conflicts.
    "video-decode": CustomWorkload(
        name="video-decode",
        instructions=40_000,
        code_footprint=2 * 1024,
        call_intensity=0.0,
        sequential_fraction=0.70,
        conflict_fraction=0.0,
        pointer_fraction=0.0,
        data_working_set=1024 * 1024,
    ),
}

STRUCTURES = [
    ("2-entry miss cache", lambda: MissCache(2)),
    ("4-entry victim cache", lambda: VictimCache(4)),
    ("single stream buffer", lambda: StreamBuffer(4)),
    ("4-way stream buffer", lambda: MultiWayStreamBuffer(4, 4)),
]


def main() -> None:
    print("percent of data misses removed, per structure:\n")
    header = f"{'profile':14s}" + "".join(f"{label:>22s}" for label, _ in STRUCTURES)
    print(header)
    for name, profile in PROFILES.items():
        trace = profile.build().materialize()
        addresses = trace.data_addresses
        baseline = run_level(addresses, CACHE)
        cells = []
        for _, make in STRUCTURES:
            run = run_level(addresses, CACHE, make())
            cells.append(100.0 * run.removed / max(1, baseline.misses))
        print(f"{name:14s}" + "".join(f"{cell:21.1f}%" for cell in cells))
    print(
        "\nThe answer is the paper's: conflict-shaped programs want the victim\n"
        "cache, streaming programs want the (multi-way) stream buffer, and the\n"
        "two are close to orthogonal — which is why SS5 ships both."
    )


if __name__ == "__main__":
    main()
