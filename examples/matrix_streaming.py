#!/usr/bin/env python
"""Stream buffers on numeric code: linpack vs. the Livermore loops.

§4 of the paper contrasts two streaming regimes:

* **linpack** — one long unit-stride miss stream (the matrix passing
  through the cache); a *single* stream buffer follows it.
* **liver** — several array streams interleaved inside each kernel; the
  alternation flushes a single buffer on every miss, but a four-way
  buffer locks onto all of the streams at once (7% -> 60% in the paper).

This example reproduces the contrast directly and also shows the stream
buffer's pollution-freedom: prefetched lines live in the buffer, not the
cache, so the useless prefetches of a non-streaming benchmark (met) cost
bandwidth but never evict useful lines.

Run:  python examples/matrix_streaming.py
"""

from repro import (
    CacheConfig,
    MultiWayStreamBuffer,
    StreamBuffer,
    build_trace,
)
from repro.hierarchy import CacheLevel

CACHE = CacheConfig(4096, 16)
SCALE = 60_000


def removal_percent(addresses, augmentation) -> float:
    level = CacheLevel(CACHE, augmentation)
    for address in addresses:
        level.access(address)
    stats = level.stats
    if stats.demand_misses == 0:
        return 0.0
    return 100.0 * stats.removed_misses / stats.demand_misses


def main() -> None:
    print(f"data-cache stream-buffer performance, {CACHE.size_bytes // 1024}KB cache\n")
    print(f"{'benchmark':10s} {'single buffer':>14s} {'4-way buffer':>13s}")
    for name in ("linpack", "liver", "met"):
        trace = build_trace(name, scale=SCALE).materialize()
        addresses = trace.data_addresses
        single = removal_percent(addresses, StreamBuffer(entries=4))
        multi = removal_percent(addresses, MultiWayStreamBuffer(ways=4, entries=4))
        print(f"{name:10s} {single:13.1f}% {multi:12.1f}%")

    print(
        "\nlinpack's one sequential stream suits a single buffer; liver's\n"
        "interleaved kernels need four; met's conflict-dominated misses are\n"
        "the victim cache's job, not the stream buffer's (SS5: the two\n"
        "mechanisms are orthogonal)."
    )

    # Show where the stream breaks: the run-offset histogram behind
    # Figure 4-3, for linpack's data side.
    trace = build_trace("linpack", scale=SCALE).materialize()
    buffer = StreamBuffer(entries=4, track_run_offsets=True)
    level = CacheLevel(CACHE, buffer)
    for address in trace.data_addresses:
        level.access(address)
    histogram = buffer.run_offsets
    print("\nlinpack: stream-buffer hits by distance from the allocating miss")
    total = max(1, level.stats.demand_misses)
    for offset in range(1, 11):
        count = histogram.counts.get(offset, 0)
        bar = "#" * max(1, round(60 * count / total)) if count else ""
        print(f"  +{offset:2d} lines  {count:6d}  {bar}")
    tail = sum(c for k, c in histogram.counts.items() if k > 10)
    print(f"  beyond 10  {tail:6d}")


if __name__ == "__main__":
    main()
