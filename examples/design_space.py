#!/usr/bin/env python
"""Design-space exploration: what should a cache designer build?

Sweeps the questions a designer would actually ask of this library:

1. How many victim-cache entries are worth their area?  (§3.1's marginal
   argument: each victim-cache line vs. ~50x more lines of plain cache.)
2. Victim cache vs. doubling the cache vs. going 2-way set-associative.
3. Does the answer change with the workload mix?

Run:  python examples/design_space.py [scale]
"""

import sys

from repro import (
    CacheConfig,
    SetAssociativeCache,
    SystemSpec,
    VictimCacheSpec,
    build_trace,
)
from repro.experiments.engine import LevelJob, run_jobs
from repro.experiments.sweeps import victim_cache_sweep
from repro.traces import BENCHMARK_NAMES

LINE = 16
BASE_SIZE = 4096


def misses_with_cache(cache, addresses, offset_bits):
    misses = 0
    for address in addresses:
        if not cache.access_and_fill(address >> offset_bits):
            misses += 1
    return misses


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    traces = [build_trace(name, scale=scale).materialize() for name in BENCHMARK_NAMES]
    config = CacheConfig(BASE_SIZE, LINE)

    # --- 1. marginal value of victim-cache entries --------------------------
    print("1) data misses removed per victim-cache entry (suite totals)\n")
    sweeps = [victim_cache_sweep(t.data_addresses, config) for t in traces]
    total_misses = sum(s.total_misses for s in sweeps)
    print(f"   baseline data misses: {total_misses}")
    previous = 0
    for entries in (1, 2, 4, 8, 15):
        removed = sum(s.removed(entries) for s in sweeps)
        marginal = removed - previous
        print(
            f"   {entries:2d} entries: {removed:6d} removed "
            f"({100 * removed / total_misses:5.1f}%), +{marginal} vs previous"
        )
        previous = removed

    # --- 2. victim cache vs. bigger cache vs. associativity -----------------
    # Each option is a declarative (geometry, structure-spec) point, so
    # the whole comparison is a batch of picklable engine jobs.
    print("\n2) three ways to spend transistors (data side, suite totals)\n")
    options = {
        "4KB direct-mapped": (CacheConfig(BASE_SIZE, LINE), None),
        "4KB DM + 4-entry VC": (CacheConfig(BASE_SIZE, LINE), VictimCacheSpec(4)),
        "8KB direct-mapped": (CacheConfig(2 * BASE_SIZE, LINE), None),
    }
    jobs = [
        LevelJob(SystemSpec.for_level(trace, cache_config, side="d", structure=structure))
        for cache_config, structure in options.values()
        for trace in traces
    ]
    summaries = iter(run_jobs(jobs, jobs=2))
    for label in options:
        slow = sum(next(summaries).misses_to_next_level for _ in traces)
        print(f"   {label:22s} misses paying full penalty: {slow}")
    # 2-way set-associative needs the raw cache model.
    slow = 0
    for trace in traces:
        cache = SetAssociativeCache(CacheConfig(BASE_SIZE, LINE), ways=2)
        slow += misses_with_cache(cache, trace.data_addresses, config.offset_bits)
    print(f"   {'4KB 2-way (slower hit)':22s} misses paying full penalty: {slow}")

    # --- 3. per-workload sensitivity ----------------------------------------
    print("\n3) which workloads drive the answer (VC4, % of data misses removed)\n")
    for trace, sweep in zip(traces, sweeps):
        print(f"   {trace.name:8s} {sweep.percent_of_misses_removed(4):5.1f}%")
    print(
        "\nThe victim cache wins where misses are conflicts (met); the bigger\n"
        "cache wins where they are capacity (liver, linpack) — and the paper's\n"
        "point is that the victim cache costs a few lines, not a doubling,\n"
        "while leaving the fast direct-mapped hit path untouched."
    )


if __name__ == "__main__":
    main()
