#!/usr/bin/env python
"""The paper's §3.1 motivating example: comparing two strings that map
to the same cache line.

"Consider the case where two character strings are being compared. If
the points of comparison of the two strings happen to map to the same
line, alternating references to different strings will always miss in
the cache. In this case a miss cache of only two entries would remove
all of the conflict misses."

This example builds exactly that reference stream and shows:

* a bare direct-mapped cache missing on *every* access;
* a 1-entry miss cache removing nothing (the requested line duplicates
  the one just loaded into L1);
* a 2-entry miss cache removing everything after warmup;
* a 1-entry victim cache — half the hardware — doing the same, because
  it holds the line the alternation just displaced.

Run:  python examples/string_compare.py
"""

from repro import CacheConfig, MissCache, VictimCache
from repro.hierarchy import CacheLevel
from repro.traces.patterns import string_compare

CACHE = CacheConfig(4096, 16)
STRING_A = 0x1000_0000
#: Exactly 8 cache-frames away: the comparison points collide.
STRING_B = STRING_A + 8 * 4096
LENGTH = 64  # bytes compared per pass
PASSES = 50


def build_reference_stream():
    stream = string_compare(STRING_A, STRING_B, LENGTH)
    return [next(stream) for _ in range(2 * LENGTH * PASSES)]


def simulate(label, augmentation):
    level = CacheLevel(CACHE, augmentation)
    for address in build_reference_stream():
        level.access(address)
    stats = level.stats
    removed = stats.removed_misses
    print(
        f"  {label:24s} misses {stats.demand_misses:5d}   "
        f"removed {removed:5d}  ({100 * removed / max(1, stats.demand_misses):5.1f}%)   "
        f"still-slow {stats.misses_to_next_level:5d}"
    )


def main() -> None:
    refs = 2 * LENGTH * PASSES
    print(
        f"comparing two {LENGTH}-byte strings {STRING_B - STRING_A:#x} apart, "
        f"{PASSES} passes = {refs} references"
    )
    print(f"both map to the same lines of a {CACHE.size_bytes // 1024}KB direct-mapped cache\n")
    simulate("no helper", None)
    simulate("1-entry miss cache", MissCache(1))
    simulate("2-entry miss cache", MissCache(2))
    simulate("1-entry victim cache", VictimCache(1))
    print(
        "\nThe alternation defeats the direct-mapped cache completely; two miss-cache\n"
        "entries (or a single victim-cache entry) recover every miss after warmup —\n"
        "the paper's case for a few fully-associative lines beside a fast cache."
    )


if __name__ == "__main__":
    main()
