#!/usr/bin/env python
"""The paper's §5 future-work list, answered.

Section 5 closes with three open questions.  This example runs the
extension machinery that answers each one:

1. "Numeric programs with non-unit stride and mixed stride access
   patterns also need to be simulated."  → the *matcol* workload plus
   the stride-detecting stream buffer.
2. "...victim caching and stream buffers need to be investigated ...
   for multiprogramming workloads."  → context-switched traces sharing
   one data cache.
3. (§4.1's implicit question) how long a memory latency can a stream
   buffer hide?  → the pipelined-interface bandwidth model.

Run:  python examples/future_work.py
"""

from repro import (
    CacheConfig,
    MultiWayStreamBuffer,
    MultiWayStrideBuffer,
    StreamBuffer,
    StrideStreamBuffer,
    VictimCache,
    build_trace,
)
from repro.buffers.base import CompositeAugmentation
from repro.experiments.ext_multiprog import interleave_processes
from repro.hierarchy import CacheLevel, FetchMechanism, sequential_fetch_cpi

CACHE = CacheConfig(4096, 16)


def removal(addresses, augmentation):
    level = CacheLevel(CACHE, augmentation)
    for address in addresses:
        level.access(address)
    stats = level.stats
    return 100.0 * stats.removed_misses / max(1, stats.demand_misses)


def part_1_non_unit_stride() -> None:
    print("1) non-unit stride (matcol: column-major matrix walk)\n")
    trace = build_trace("matcol", scale=45_000).materialize()
    addresses = trace.data_addresses
    rows = [
        ("sequential buffer (paper SS4.1)", StreamBuffer(4)),
        ("4-way sequential (paper SS4.2)", MultiWayStreamBuffer(4, 4)),
        ("stride-detecting buffer", StrideStreamBuffer(4)),
        ("4-way stride-detecting", MultiWayStrideBuffer(4, 4)),
    ]
    for label, augmentation in rows:
        print(f"   {label:32s} {removal(addresses, augmentation):5.1f}% of misses removed")
    print(
        "\n   The sequential buffer sees nothing sequential in a column walk;\n"
        "   learning the stride from two misses recovers nearly everything.\n"
    )


def part_2_multiprogramming() -> None:
    print("2) multiprogramming (ccom + met + liver share the D-cache)\n")
    streams = [
        build_trace(name, scale=30_000).materialize().data_addresses
        for name in ("ccom", "met", "liver")
    ]
    for quantum in (500, 5000):
        mixed = interleave_processes(streams, quantum)
        base = CacheLevel(CACHE)
        for address in mixed:
            base.access(address)
        helped = CacheLevel(
            CACHE, CompositeAugmentation([VictimCache(4), MultiWayStreamBuffer(4, 4)])
        )
        for address in mixed:
            helped.access(address)
        print(
            f"   quantum {quantum:5d} refs: miss rate {base.stats.miss_rate:.3f}, "
            f"helpers still remove "
            f"{100 * helped.stats.removed_misses / max(1, helped.stats.demand_misses):.0f}%"
        )
    print(
        "\n   A context switch wipes the helper structures almost for free —\n"
        "   they hold a handful of lines and re-warm in a few misses.\n"
    )


def part_3_latency_tolerance() -> None:
    print("3) latency tolerance (sequential fetch, 4-instruction lines)\n")
    print(f"   {'latency':>8s} {'demand':>8s} {'tagged':>8s} {'stream':>8s}  (cycles/instr)")
    for latency in (8, 12, 16, 24, 48):
        row = [
            sequential_fetch_cpi(mechanism, latency, 4)
            for mechanism in (
                FetchMechanism.DEMAND,
                FetchMechanism.TAGGED,
                FetchMechanism.STREAM,
            )
        ]
        print(f"   {latency:8d} {row[0]:8.2f} {row[1]:8.2f} {row[2]:8.2f}")
    print(
        "\n   The paper's SS4.1 example is the latency-12 row: the stream buffer\n"
        "   sustains one instruction per cycle where tagged prefetch manages\n"
        "   one every three."
    )


def main() -> None:
    part_1_non_unit_stride()
    part_2_multiprogramming()
    part_3_latency_tolerance()


if __name__ == "__main__":
    main()
