#!/usr/bin/env python
"""Quickstart: a victim cache and stream buffers on the baseline system.

Builds the paper's baseline memory hierarchy (split 4KB direct-mapped
L1 caches, 1MB L2), runs one synthetic benchmark through it with and
without the paper's structures, and prints the miss rates and the
modelled speedup — the whole library in ~40 lines.

Run:  python examples/quickstart.py [benchmark] [scale]
"""

import sys

from repro import (
    CompositeAugmentation,
    MemorySystem,
    MultiWayStreamBuffer,
    StreamBuffer,
    VictimCache,
    baseline_system,
    build_trace,
    evaluate_performance,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "ccom"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    print(f"generating synthetic '{benchmark}' trace ({scale} instructions)...")
    trace = build_trace(benchmark, scale=scale).materialize()
    stats = trace.stats()
    print(
        f"  {stats.instructions} instructions, {stats.data_references} data refs "
        f"({stats.data_per_instruction:.3f} per instruction)\n"
    )

    # --- baseline: bare direct-mapped caches --------------------------------
    base = MemorySystem()
    base_result = base.run(trace)
    print("baseline (no helper structures):")
    print(f"  I-cache miss rate: {base_result.imiss_rate:.3f}")
    print(f"  D-cache miss rate: {base_result.dmiss_rate:.3f}\n")

    # --- the paper's improved system (SS5) -----------------------------------
    # Instruction side: one 4-entry sequential stream buffer.
    # Data side: a 4-entry victim cache plus a 4-way stream buffer.
    improved = MemorySystem(
        iaugmentation=StreamBuffer(entries=4),
        daugmentation=CompositeAugmentation(
            [VictimCache(entries=4), MultiWayStreamBuffer(ways=4, entries=4)]
        ),
    )
    improved_result = improved.run(trace)
    print("improved (victim cache + stream buffers):")
    print(
        f"  I misses removed: {improved_result.istats.removed_misses}"
        f" of {improved_result.istats.demand_misses}"
    )
    print(
        f"  D misses removed: {improved_result.dstats.removed_misses}"
        f" of {improved_result.dstats.demand_misses}"
    )
    print(f"  effective I miss rate: {improved_result.effective_imiss_rate:.3f}")
    print(f"  effective D miss rate: {improved_result.effective_dmiss_rate:.3f}\n")

    # --- the paper's performance model (24 / 320 instruction-time penalties) --
    timing = baseline_system().timing
    base_perf = evaluate_performance(base_result, timing)
    improved_perf = evaluate_performance(improved_result, timing)
    speedup = improved_perf.speedup_over(base_perf)
    print(
        f"performance: {base_perf.percent_of_potential:.1f}% of potential -> "
        f"{improved_perf.percent_of_potential:.1f}%  (speedup {speedup:.2f}x)"
    )


if __name__ == "__main__":
    main()
