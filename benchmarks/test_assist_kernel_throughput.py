"""Microbenchmarks: assist-structure kernels vs the reference interpreter.

Not a paper artifact — these pin the speedup that justifies
``repro.kernels.assist``: the same structure-carrying whole-trace level
run through the per-reference interpreter (``run_level`` with a live
helper structure) and through the two-pass kernels (direct-mapped
miss-stream extraction, then a vectorized hit-condition pass or a
compressed miss-stream replay).  Pairs share a naming scheme
(``*_python`` / ``*_kernel``) so the ``repro-bench diff`` gate tracks
both sides, on the same benchmark trace the PR 6 kernel pairs use.

The last pair is figure-level: a Figure 3-5 style entry sweep priced as
``MAX_ENTRIES`` independent interpreter runs versus the kernel's single
reuse-distance rank pass, which yields every capacity at once.

The equivalence of the two backends is pinned by ``tests/test_kernels.py``;
here each kernel variant asserts its counters against the interpreter so
a silently wrong kernel cannot post a fast time.
"""

import pytest

from repro.buffers.victim_cache import VictimCache
from repro.common.config import CacheConfig
from repro.experiments.runner import run_level
from repro.experiments.sweeps import victim_cache_sweep
from repro.specs.structures import (
    MissCacheSpec,
    MultiWayStreamBufferSpec,
    StreamBufferSpec,
    VictimCacheSpec,
    build,
)
pytest.importorskip("numpy")

from repro.kernels.assist import entry_sweep, simulate_assist_level  # noqa: E402
from repro.kernels.numpy_backend import stream_array  # noqa: E402

CONFIG = CacheConfig(4096, 16)
MAX_ENTRIES = 15

VC4 = VictimCacheSpec(entries=4)
MC4 = MissCacheSpec(entries=4)
SB4 = StreamBufferSpec(entries=4)
SB4X4 = MultiWayStreamBufferSpec(ways=4, entries=4)


@pytest.fixture(scope="module")
def mixed_trace(suite):
    return suite[0]  # ccom, same trace and scale as the PR 6 kernel pairs


@pytest.fixture(scope="module")
def dstream(mixed_trace):
    return mixed_trace.stream("d")


@pytest.fixture(scope="module")
def dstream_array(mixed_trace):
    return stream_array(mixed_trace, "d")


def _python(spec, dstream):
    return run_level(dstream, CONFIG, augmentation=build(spec))


def _pair(benchmark, spec, dstream, dstream_array):
    reference = _python(spec, dstream).stats
    run = benchmark.pedantic(
        lambda: simulate_assist_level(dstream_array, CONFIG, spec),
        rounds=3,
        iterations=1,
    )
    assert run.stats.as_dict() == reference.as_dict()


def test_victim_cache_level_python(benchmark, dstream):
    run = benchmark.pedantic(lambda: _python(VC4, dstream), rounds=3, iterations=1)
    assert run.stats.accesses == len(dstream)


def test_victim_cache_level_kernel(benchmark, dstream, dstream_array):
    _pair(benchmark, VC4, dstream, dstream_array)


def test_miss_cache_level_python(benchmark, dstream):
    run = benchmark.pedantic(lambda: _python(MC4, dstream), rounds=3, iterations=1)
    assert run.stats.accesses == len(dstream)


def test_miss_cache_level_kernel(benchmark, dstream, dstream_array):
    _pair(benchmark, MC4, dstream, dstream_array)


def test_stream_buffer_level_python(benchmark, dstream):
    run = benchmark.pedantic(lambda: _python(SB4, dstream), rounds=3, iterations=1)
    assert run.stats.accesses == len(dstream)


def test_stream_buffer_level_kernel(benchmark, dstream, dstream_array):
    # Single-way head-only: the vector (chain-scan) mode.
    _pair(benchmark, SB4, dstream, dstream_array)


def test_multiway_buffer_level_python(benchmark, dstream):
    run = benchmark.pedantic(lambda: _python(SB4X4, dstream), rounds=3, iterations=1)
    assert run.stats.accesses == len(dstream)


def test_multiway_buffer_level_kernel(benchmark, dstream, dstream_array):
    # Multi-way buffers have no vector form: the win here is replaying
    # only the compressed miss stream instead of every reference.
    _pair(benchmark, SB4X4, dstream, dstream_array)


def test_victim_entry_sweep_per_capacity_python(benchmark, dstream):
    """The naive sweep shape: one full interpreter run per capacity."""

    def per_capacity():
        return [
            run_level(
                dstream, CONFIG, augmentation=VictimCache(entries)
            ).stats.removed_misses
            for entries in range(1, MAX_ENTRIES + 1)
        ]

    hits = benchmark.pedantic(per_capacity, rounds=1, iterations=1)
    assert len(hits) == MAX_ENTRIES


def test_victim_entry_sweep_one_pass_kernel(benchmark, dstream, dstream_array):
    reference = victim_cache_sweep(dstream, CONFIG, max_entries=MAX_ENTRIES)
    sweep = benchmark.pedantic(
        lambda: entry_sweep(dstream_array, CONFIG, "victim", MAX_ENTRIES),
        rounds=3,
        iterations=1,
    )
    assert sweep.hits_by_entries == reference.hits_by_entries
    assert sweep.total_misses == reference.total_misses
