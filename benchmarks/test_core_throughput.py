"""Microbenchmarks: simulation throughput of the core structures.

Not a paper artifact — these track the cost of the simulator itself
(references per second through each cache model and the full system),
so regressions in the hot paths show up in the benchmark report.
"""

import random

import pytest

from repro.buffers.miss_cache import MissCache
from repro.buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from repro.buffers.victim_cache import VictimCache
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.fully_associative import FullyAssociativeCache
from repro.caches.set_associative import SetAssociativeCache
from repro.common.config import CacheConfig
from repro.hierarchy.level import CacheLevel
from repro.hierarchy.system import MemorySystem

N_REFS = 50_000
CONFIG = CacheConfig(4096, 16)


@pytest.fixture(scope="module")
def random_lines():
    rng = random.Random(0)
    return [rng.randrange(4096) for _ in range(N_REFS)]


@pytest.fixture(scope="module")
def mixed_trace(suite):
    return suite[0]  # ccom


def drive_cache(cache, lines):
    access_and_fill = cache.access_and_fill
    for line in lines:
        access_and_fill(line)


def drive_level(level, lines):
    access_line = level.access_line
    for line in lines:
        access_line(line)


def test_direct_mapped_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_cache(DirectMappedCache(CONFIG), random_lines),
        rounds=3,
        iterations=1,
    )


def test_fully_associative_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_cache(FullyAssociativeCache(16), random_lines),
        rounds=3,
        iterations=1,
    )


def test_set_associative_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_cache(SetAssociativeCache(CONFIG, ways=2), random_lines),
        rounds=3,
        iterations=1,
    )


def test_level_with_victim_cache_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_level(CacheLevel(CONFIG, VictimCache(4)), random_lines),
        rounds=3,
        iterations=1,
    )


def test_level_with_miss_cache_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_level(CacheLevel(CONFIG, MissCache(4)), random_lines),
        rounds=3,
        iterations=1,
    )


def test_level_with_stream_buffer_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_level(CacheLevel(CONFIG, StreamBuffer(4)), random_lines),
        rounds=3,
        iterations=1,
    )


def test_level_with_multiway_buffer_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_level(
            CacheLevel(CONFIG, MultiWayStreamBuffer(4, 4)), random_lines
        ),
        rounds=3,
        iterations=1,
    )


def test_full_system_throughput(benchmark, mixed_trace):
    def run():
        MemorySystem().run(mixed_trace)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_classifying_level_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_level(CacheLevel(CONFIG, classify=True), random_lines),
        rounds=3,
        iterations=1,
    )
