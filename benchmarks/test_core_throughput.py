"""Microbenchmarks: simulation throughput of the core structures.

Not a paper artifact — these track the cost of the simulator itself
(references per second through each cache model and the full system),
so regressions in the hot paths show up in the benchmark report.

The trace-delivery pair (``packed_trace`` vs ``list_trace``) measures
the parallel engine's per-worker unit of work — receive one serialized
trace, then replay it once — for the packed array representation
against the legacy list of tuples.  Packed buffers serialize as two
contiguous blocks instead of one object per reference, which is where
the engine's worker warm-up time goes.
"""

import pickle
import random

import pytest

from repro.buffers.miss_cache import MissCache
from repro.buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from repro.buffers.victim_cache import VictimCache
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.fully_associative import FullyAssociativeCache
from repro.caches.set_associative import SetAssociativeCache
from repro.common.config import CacheConfig
from repro.experiments.engine import LevelSummary
from repro.hierarchy.level import CacheLevel
from repro.hierarchy.system import MemorySystem
from repro.store import ResultKey, ResultStore
from repro.traces.trace import MaterializedTrace

N_REFS = 50_000
CONFIG = CacheConfig(4096, 16)


@pytest.fixture(scope="module")
def random_lines():
    rng = random.Random(0)
    return [rng.randrange(4096) for _ in range(N_REFS)]


@pytest.fixture(scope="module")
def mixed_trace(suite):
    return suite[0]  # ccom


def drive_cache(cache, lines):
    access_and_fill = cache.access_and_fill
    for line in lines:
        access_and_fill(line)


def drive_level(level, lines):
    access_line = level.access_line
    for line in lines:
        access_line(line)


def test_direct_mapped_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_cache(DirectMappedCache(CONFIG), random_lines),
        rounds=3,
        iterations=1,
    )


def test_fully_associative_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_cache(FullyAssociativeCache(16), random_lines),
        rounds=3,
        iterations=1,
    )


def test_set_associative_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_cache(SetAssociativeCache(CONFIG, ways=2), random_lines),
        rounds=3,
        iterations=1,
    )


def test_level_with_victim_cache_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_level(CacheLevel(CONFIG, VictimCache(4)), random_lines),
        rounds=3,
        iterations=1,
    )


def test_level_with_miss_cache_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_level(CacheLevel(CONFIG, MissCache(4)), random_lines),
        rounds=3,
        iterations=1,
    )


def test_level_with_stream_buffer_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_level(CacheLevel(CONFIG, StreamBuffer(4)), random_lines),
        rounds=3,
        iterations=1,
    )


def test_level_with_multiway_buffer_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_level(
            CacheLevel(CONFIG, MultiWayStreamBuffer(4, 4)), random_lines
        ),
        rounds=3,
        iterations=1,
    )


def test_full_system_throughput(benchmark, mixed_trace):
    def run():
        MemorySystem().run(mixed_trace)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_classifying_level_throughput(benchmark, random_lines):
    benchmark.pedantic(
        lambda: drive_level(CacheLevel(CONFIG, classify=True), random_lines),
        rounds=3,
        iterations=1,
    )


def _deliver_and_replay(trace) -> int:
    """One engine worker's trace handoff: deserialize, then replay once."""
    clone = pickle.loads(pickle.dumps(trace))
    count = 0
    for _kind, _address in clone:
        count += 1
    return count


def test_packed_trace_delivery_replay(benchmark, mixed_trace):
    # mixed_trace is a PackedTrace (materialize() packs by default); a
    # fresh instance keeps lazy caches empty so only the buffers ship.
    packed = type(mixed_trace)(mixed_trace.meta, mixed_trace._kinds, mixed_trace._addresses)
    assert benchmark.pedantic(
        lambda: _deliver_and_replay(packed), rounds=3, iterations=1
    ) == len(packed)


def test_list_trace_delivery_replay(benchmark, mixed_trace):
    listed = MaterializedTrace(mixed_trace.meta, list(mixed_trace))
    assert benchmark.pedantic(
        lambda: _deliver_and_replay(listed), rounds=3, iterations=1
    ) == len(listed)


def test_result_store_hit_throughput(benchmark, tmp_path):
    store = ResultStore(tmp_path / "bench-store")
    keys = [ResultKey("LevelJob", f"spec{i:04d}", "trace", {"i": i}) for i in range(200)]
    summary = LevelSummary(50_000, 4_000, 400, 3_600, conflict_misses=900)
    for key in keys:
        store.put(key, summary)

    def warm_lookups() -> int:
        hits = 0
        for key in keys:
            result, _ = store.get(key)
            hits += result is not None
        return hits

    assert benchmark.pedantic(warm_lookups, rounds=3, iterations=1) == len(keys)
