"""Benchmark: regenerate Figure 4-3 — single stream buffer: cumulative misses removed vs. run length."""

from repro.experiments import figure_4_3 as experiment

from conftest import run_experiment


def test_figure_4_3(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    i_avg = result.get("L1 I-cache average").y
    d_avg = result.get("L1 D-cache average").y
    assert i_avg[-1] > d_avg[-1]
