"""Benchmark: regenerate Ablations — design-choice ablations (swap/copy, LRU/FIFO, comparators, 2-way)."""

from repro.experiments import ablations as experiment

from conftest import run_experiment


def test_ablations(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    assert all(row[1] >= row[3] - 1e-9 for row in result.rows)  # VC >= MC
