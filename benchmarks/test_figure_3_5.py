"""Benchmark: regenerate Figure 3-5 — conflict misses removed by victim caching, 1-15 entries."""

from repro.experiments import figure_3_5 as experiment

from conftest import run_experiment


def test_figure_3_5(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    curve = result.get("L1 D-cache average").y
    assert curve == sorted(curve)
