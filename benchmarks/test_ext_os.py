"""Benchmark: regenerate the SS5 OS-execution study — interrupt interference."""

from repro.experiments import ext_os as experiment

from conftest import run_experiment


def test_ext_os(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    inflations = [row[2] for row in result.rows[:-1]]
    assert inflations == sorted(inflations, reverse=True)  # rarer interrupts hurt less
