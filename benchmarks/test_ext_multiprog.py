"""Benchmark: regenerate SS5 extension — multiprogramming: miss inflation and helper-structure resilience."""

from repro.experiments import ext_multiprog as experiment

from conftest import run_experiment


def test_ext_multiprog(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    assert result.rows[0][2] >= result.rows[-2][2]  # shorter quanta inflate more
