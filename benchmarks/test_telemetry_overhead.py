"""Microbenchmarks: cost of the telemetry layer.

Not a paper artifact — these pin the ISSUE 2 acceptance criterion that
telemetry is (near) free when disabled: the flag is read once per run,
never per simulated reference, so a full-system run with no active
scope should be indistinguishable from the pre-telemetry simulator,
and an active scope should add only one snapshot per run.
"""

from repro.hierarchy.system import MemorySystem
from repro.telemetry import scoped


def test_system_run_telemetry_disabled(benchmark, suite):
    """Baseline: full-system run with no active scope (the default)."""
    trace = suite[0]  # ccom

    def run():
        MemorySystem().run(trace)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_system_run_telemetry_enabled(benchmark, suite):
    """Same run under an active scope: one counter snapshot per run."""
    trace = suite[0]

    def run():
        with scoped():
            MemorySystem().run(trace)

    benchmark.pedantic(run, rounds=3, iterations=1)
