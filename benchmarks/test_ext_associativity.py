"""Benchmark: regenerate the SS3 associativity tradeoff — VC vs. extra ways."""

from repro.experiments import ext_associativity as experiment

from conftest import run_experiment


def test_ext_associativity(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    met = result.row_by_key("met")
    assert met[7] > 0  # VC4 removes something on the conflict-heavy code
