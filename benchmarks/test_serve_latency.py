"""Serving latency: warm hits, cold simulations, coalesced duplicates.

Not a paper artifact — this pins the three request classes of the
``repro-serve`` daemon, with p50/p95/p99 recorded in each benchmark's
``extra_info`` so ``repro-bench diff`` tracks the serving path alongside
the simulation kernels.  The assertions are the serving acceptance
criteria: a warm sweep costs zero simulations, and a burst of duplicate
cold queries coalesces into exactly one engine job.

The daemon runs on a background thread with its own event loop; the
load generator talks to it over real loopback HTTP, like production
clients would.
"""

import asyncio
import threading

import pytest

from repro.serve.daemon import CacheAdvisorDaemon, ServeConfig
from repro.serve.loadgen import check_coalescing, run_loadgen
from repro.store import ResultStore

#: Small traces: this measures the serving overhead, not the simulator.
SERVE_SCALE = 2_000


class ServedDaemon:
    """A live daemon on a background event loop, plus a sync client hook."""

    def __init__(self, store_root) -> None:
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self._run, name="repro-serve-bench", daemon=True
        )
        self.thread.start()
        self.daemon = CacheAdvisorDaemon(
            ServeConfig(port=0, max_inflight=4, heartbeat=0.5),
            store=ResultStore(store_root),
        )
        self._submit(self.daemon.start()).result(30)
        self.port = self.daemon.port

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def _submit(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def close(self) -> None:
        self._submit(self.daemon.aclose()).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)

    def loadgen(self, **kwargs):
        """One loadgen run from this (client) thread against the daemon."""
        return asyncio.run(
            run_loadgen(
                host="127.0.0.1",
                port=self.port,
                trace="linpack",
                scale=SERVE_SCALE,
                structure="vc4",
                **kwargs,
            )
        )


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    server = ServedDaemon(tmp_path_factory.mktemp("serve-bench") / "store")
    yield server
    server.close()


def test_serve_warm_hit_latency(benchmark, served):
    """Store-backed answers: the measured phase must simulate nothing."""
    report = benchmark.pedantic(
        lambda: served.loadgen(
            seed=0, warm_requests=30, cold_requests=0, duplicates=0, concurrency=8
        ),
        rounds=1,
        iterations=1,
    )
    warm = report.classes["warm"]
    assert warm.served_from == {"store": 30}, warm.served_from
    assert warm.errors == 0 and warm.rejected == 0
    benchmark.extra_info["latency_s"] = warm.as_dict()["latency_s"]
    benchmark.extra_info["served_from"] = dict(warm.served_from)


def test_serve_cold_simulate_latency(benchmark, served):
    """Fresh keys: every query is one real engine simulation."""
    report = benchmark.pedantic(
        lambda: served.loadgen(
            seed=1, warm_requests=0, cold_requests=4, duplicates=0, concurrency=4
        ),
        rounds=1,
        iterations=1,
    )
    cold = report.classes["cold"]
    assert cold.served_from == {"simulated": 4}, cold.served_from
    assert cold.errors == 0 and cold.rejected == 0
    benchmark.extra_info["latency_s"] = cold.as_dict()["latency_s"]
    benchmark.extra_info["served_from"] = dict(cold.served_from)


def test_serve_coalesced_duplicate_latency(benchmark, served):
    """A duplicate burst: one simulation, every follower coalesced."""
    report = benchmark.pedantic(
        lambda: served.loadgen(
            seed=2, warm_requests=0, cold_requests=0, duplicates=6, concurrency=8
        ),
        rounds=1,
        iterations=1,
    )
    duplicate = report.classes["duplicate"]
    assert duplicate.served_from.get("simulated") == 1, duplicate.served_from
    # Followers either coalesce onto the inflight job or (having arrived
    # after it settled) hit the freshly flushed store — never simulate.
    followers = duplicate.served_from.get("coalesced", 0) + duplicate.served_from.get("store", 0)
    assert followers == 5, duplicate.served_from
    assert check_coalescing(report) == []
    benchmark.extra_info["latency_s"] = duplicate.as_dict()["latency_s"]
    benchmark.extra_info["served_from"] = dict(duplicate.served_from)
