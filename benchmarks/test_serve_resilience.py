"""Resilience-path latency: readiness probes, 504 budgets, breaker fast-fails.

Not a paper artifact — this pins the *failure* paths of ``repro-serve``
the way ``test_serve_latency.py`` pins the success paths.  A resilience
layer earns its keep by failing fast and typed: a deadline 504 should
land within a whisker of the budget (never the full simulation time),
and an open breaker should answer in microseconds, not engine-seconds.
Latency percentiles ride along in ``extra_info`` so ``repro-bench diff``
tracks them against ``BENCH_core.json``.

The injected faults (``slow_sim``/``reject_sim``) are process-local
``set_plan`` overrides: the daemon's background event loop lives in this
process, so no environment juggling is needed and every failure is
deterministic.
"""

import asyncio
import threading
import time

import pytest

from repro.experiments.faults import set_plan
from repro.serve.daemon import CacheAdvisorDaemon, ServeConfig
from repro.serve.httpio import request_json
from repro.serve.loadgen import percentiles
from repro.store import ResultStore

SERVE_SCALE = 2_000


def _query(warmup: int, deadline_ms=None):
    payload = {
        "trace": {"name": "linpack", "scale": SERVE_SCALE, "seed": 3},
        "structure": "vc4",
        "side": "d",
        "warmup": warmup,
    }
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    return payload


class ResilientDaemon:
    """A live daemon (background loop) with the resilience knobs armed."""

    def __init__(self, store_root) -> None:
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self._run, name="repro-serve-resilience-bench", daemon=True
        )
        self.thread.start()
        self.daemon = CacheAdvisorDaemon(
            ServeConfig(
                port=0,
                max_inflight=4,
                heartbeat=0.5,
                breaker_threshold=1,
                breaker_cooldown=3600.0,  # opened = stays open for the bench
            ),
            store=ResultStore(store_root),
        )
        self._submit(self.daemon.start()).result(30)
        self.port = self.daemon.port

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def _submit(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def close(self) -> None:
        self._submit(self.daemon.aclose()).result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)

    def roundtrip(self, method: str, path: str, payload=None):
        return asyncio.run(
            request_json("127.0.0.1", self.port, method, path, payload, timeout=30.0)
        )

    def settle(self, timeout: float = 10.0) -> None:
        """Wait for background simulations left by a prior phase."""
        deadline = time.perf_counter() + timeout
        while self.daemon.service.inflight and time.perf_counter() < deadline:
            time.sleep(0.05)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    server = ResilientDaemon(tmp_path_factory.mktemp("serve-resilience") / "store")
    yield server
    set_plan(None)
    server.close()


def test_serve_readyz_probe_latency(benchmark, served):
    """Readiness probes: the state roll-up must stay route-handler cheap."""
    latencies = []

    def probe():
        for _ in range(20):
            started = time.perf_counter()
            status, _, body = served.roundtrip("GET", "/readyz")
            latencies.append(time.perf_counter() - started)
            assert status == 200 and body["status"] == "ready"

    benchmark.pedantic(probe, rounds=1, iterations=1)
    benchmark.extra_info["latency_s"] = {
        key: round(value, 6) for key, value in percentiles(latencies).items()
    }


def test_serve_deadline_504_latency(benchmark, served):
    """Deadline expiry: the 504 lands near the budget, not the sim time."""
    set_plan("slow_sim@0x*:1")
    latencies = []
    statuses = []

    def run():
        for index in range(3):
            started = time.perf_counter()
            status, _, body = served.roundtrip(
                "POST", "/v1/advise", _query(warmup=300 + index, deadline_ms=50)
            )
            latencies.append(time.perf_counter() - started)
            statuses.append(status)
            assert "deadline" in body.get("error", ""), body

    try:
        benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        set_plan(None)
    assert statuses == [504, 504, 504]
    pct = percentiles(latencies)
    # The injected sim takes 1s; the typed 504 must beat it by a wide
    # margin or the deadline layer is not actually cutting requests loose.
    assert pct["p95"] < 0.9, pct
    assert served.daemon.service.counters.deadline_expired >= 3
    benchmark.extra_info["latency_s"] = {
        key: round(value, 6) for key, value in pct.items()
    }
    served.settle()  # let the abandoned 1s sims drain before the next phase


def test_serve_breaker_fastfail_latency(benchmark, served):
    """An open breaker answers 503 at HTTP-overhead speed, zero dispatches."""
    served.settle()
    set_plan("reject_sim@0x*")
    latencies = []
    statuses = []
    try:
        # Trip the breaker: one failing dispatch at threshold 1.
        status, _, body = served.roundtrip("POST", "/v1/advise", _query(warmup=400))
        assert status == 503 and "reject_sim" in body["error"], body
        assert served.daemon.service.breaker.state == "open"

        def run():
            for index in range(10):
                started = time.perf_counter()
                status, _, body = served.roundtrip(
                    "POST", "/v1/advise", _query(warmup=401 + index)
                )
                latencies.append(time.perf_counter() - started)
                statuses.append(status)
                assert "breaker" in body.get("error", ""), body

        benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        set_plan(None)
    assert statuses == [503] * 10
    assert served.daemon.service.counters.breaker_fastfail >= 10
    pct = percentiles(latencies)
    assert pct["p95"] < 0.5, pct  # no engine dispatch behind these answers
    benchmark.extra_info["latency_s"] = {
        key: round(value, 6) for key, value in pct.items()
    }
    benchmark.extra_info["breaker"] = served.daemon.service.breaker_payload()
