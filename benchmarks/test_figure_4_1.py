"""Benchmark: regenerate Figure 4-1 — instructions until a prefetched line is required (ccom)."""

from repro.experiments import figure_4_1 as experiment

from conftest import run_experiment


def test_figure_4_1(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    assert len(result.series) == 3
