"""Benchmark: regenerate the miss-cost trend — improved-system speedup per era."""

from repro.experiments import ext_penalty_sweep as experiment

from conftest import run_experiment


def test_ext_penalty_sweep(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    speedups = [row[4] for row in result.rows]
    assert speedups == sorted(speedups)  # value grows with miss cost
