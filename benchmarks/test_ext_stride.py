"""Benchmark: regenerate SS5 extension — stride-detecting vs. sequential stream buffers on non-unit-stride code."""

from repro.experiments import ext_stride as experiment

from conftest import run_experiment


def test_ext_stride(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    matcol = result.row_by_key("matcol (non-unit)")
    assert matcol[5] > 3 * matcol[3]  # stride 4-way crushes seq 4-way
