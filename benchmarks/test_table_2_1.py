"""Benchmark: regenerate Table 2-1 — test program characteristics of the synthetic suite."""

from repro.experiments import table_2_1 as experiment

from conftest import run_experiment


def test_table_2_1(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    assert result.rows[-1][0] == "total"
