"""Benchmark: regenerate SS3.5 extension — victim caching behind a scaled second-level cache."""

from repro.experiments import ext_l2_victim as experiment

from conftest import run_experiment


def test_ext_l2_victim(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    assert len(result.rows) == 6
