"""Benchmark: regenerate Figure 2-2 — percent of potential performance lost in the hierarchy."""

from repro.experiments import figure_2_2 as experiment

from conftest import run_experiment


def test_figure_2_2(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    assert result.get("achieved").y
