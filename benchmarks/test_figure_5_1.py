"""Benchmark: regenerate Figure 5-1 — combined system: victim cache + stream buffers speedup."""

from repro.experiments import figure_5_1 as experiment

from conftest import run_experiment


def test_figure_5_1(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    assert all(row[3] >= 1.0 for row in result.rows[:-1])
