"""Benchmark: regenerate Figure 4-7 — stream buffer benefit vs. line size."""

from repro.experiments import figure_4_7 as experiment

from conftest import run_experiment


def test_figure_4_7(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    d_curve = result.get("single, D-cache")
    assert d_curve.point(8) > d_curve.point(128)
