"""Shared fixtures for the benchmark harness.

Each ``benchmarks/test_<artifact>.py`` regenerates one table or figure
of the paper through its experiment module, timed by pytest-benchmark,
and prints the reproduced rows/series (visible with ``-s``; always
written to ``bench_output.txt`` by the top-level run script).

``REPRO_BENCH_SCALE`` overrides the trace scale (instructions per unit
of Table 2-1 relative length); the default keeps the full harness in a
couple of minutes of wall clock.
"""

from __future__ import annotations

import os

import pytest

from repro.traces.registry import BENCHMARK_NAMES, build_trace

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "20000"))


@pytest.fixture(scope="session")
def suite():
    """The six benchmark traces at benchmark scale, materialized once."""
    return [build_trace(name, BENCH_SCALE).materialize() for name in BENCHMARK_NAMES]


def run_experiment(benchmark, experiment_run, suite, rounds: int = 1):
    """Benchmark one experiment run and print its reproduction."""
    result = benchmark.pedantic(
        experiment_run, kwargs={"traces": suite}, rounds=rounds, iterations=1
    )
    print()
    print(result.render())
    return result
