"""Benchmark: regenerate Figure 3-3 — conflict misses removed by miss caching, 1-15 entries."""

from repro.experiments import figure_3_3 as experiment

from conftest import run_experiment


def test_figure_3_3(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    curve = result.get("L1 D-cache average").y
    assert curve == sorted(curve)
