"""Benchmark: regenerate the SS4.1 timing-fidelity check — aggregate vs. timeline CPI."""

from repro.experiments import ext_timing_fidelity as experiment

from conftest import run_experiment


def test_ext_timing_fidelity(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    for row in result.rows:
        assert row[2] >= row[1] - 1e-6  # availability can only add cycles
