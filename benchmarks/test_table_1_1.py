"""Benchmark: regenerate Table 1-1 — the increasing cost of cache misses across machine generations."""

from repro.experiments import table_1_1 as experiment

from conftest import run_experiment


def test_table_1_1(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    assert result.row_by_key("?")[5] > 100.0
