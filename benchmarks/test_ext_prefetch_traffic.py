"""Benchmark: regenerate the prefetch-bandwidth accounting — allocation filters."""

from repro.experiments import ext_prefetch_traffic as experiment

from conftest import run_experiment


def test_ext_prefetch_traffic(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    ccom = result.row_by_key("ccom")
    assert ccom[5] > 50.0  # the filter saves most of ccom's wasted fetches
