"""Benchmark: regenerate Figure 3-1 — percent of misses due to conflicts (I and D)."""

from repro.experiments import figure_3_1 as experiment

from conftest import run_experiment


def test_figure_3_1(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    assert result.get("L1 D-cache").point("average") > 0
