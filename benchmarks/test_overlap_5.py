"""Benchmark: regenerate SS5 overlap — victim-cache / stream-buffer hit overlap."""

from repro.experiments import overlap_5 as experiment

from conftest import run_experiment


def test_overlap_5(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    assert all(0.0 <= row[5] <= 100.0 for row in result.rows)
