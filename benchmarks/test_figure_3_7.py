"""Benchmark: regenerate Figure 3-7 — victim cache benefit vs. data-cache line size."""

from repro.experiments import figure_3_7 as experiment

from conftest import run_experiment


def test_figure_3_7(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    vc4 = result.get("4-entry victim cache")
    assert vc4.point(256) > vc4.point(8)
