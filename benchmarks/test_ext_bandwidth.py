"""Benchmark: regenerate SS4.1's worked example — fetch bandwidth vs. latency."""

from repro.experiments import ext_bandwidth as experiment

from conftest import run_experiment


def test_ext_bandwidth(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    at_12 = result.row_by_key(12)
    assert at_12[3] == 1.0   # stream buffer: one instruction per cycle
    assert at_12[2] == 3.0   # tagged prefetch: one every three cycles
