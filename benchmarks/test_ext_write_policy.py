"""Benchmark: regenerate SS2 extension — write-through vs. write-back data cache traffic."""

from repro.experiments import ext_write_policy as experiment

from conftest import run_experiment


def test_ext_write_policy(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    assert all(row[6] > row[7] for row in result.rows)  # WT moves more bytes
