"""Benchmark: regenerate Figure 3-6 — victim cache benefit vs. direct-mapped cache size."""

from repro.experiments import figure_3_6 as experiment

from conftest import run_experiment


def test_figure_3_6(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    # At benchmark scale the 128KB point has only a handful of conflict
    # misses, so its percent-removed is noisy; the robust signal is the
    # conflict share collapsing as the cache grows (the figure's second
    # factor), plus meaningful removal where conflicts are plentiful.
    share = result.get("percent conflict misses")
    assert share.point(1) > 5 * share.point(128)
    assert result.get("4-entry victim cache").point(4) > 20.0
