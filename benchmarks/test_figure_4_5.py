"""Benchmark: regenerate Figure 4-5 — 4-way stream buffer: cumulative misses removed vs. run length."""

from repro.experiments import figure_4_5 as experiment

from conftest import run_experiment


def test_figure_4_5(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    assert result.get("L1 D-cache average").y[-1] > 0
