"""Benchmark: regenerate SS3.1's marginal-utility argument — misses removed per line."""

from repro.experiments import ext_marginal_utility as experiment

from conftest import run_experiment


def test_ext_marginal_utility(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    vc1 = result.row_by_key("victim cache, 1 entr.")
    assert vc1[4] > 5.0  # a VC line is worth many plain cache lines
