"""Benchmark: regenerate SS5 extension — victim cache & stream buffer on modern access classes."""

from repro.experiments import ext_modern_workloads as experiment

from conftest import run_experiment


def test_ext_modern_workloads(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    # The stream buffer must keep its paper-shaped win on the
    # sequential class (first row; removed% is column 4).
    sequential = result.rows[0]
    assert sequential[0] == "sequential"
    assert sequential[4] > 90
