"""Benchmark: regenerate the cold-start methodology check — cold vs. steady rates."""

from repro.experiments import ext_cold_start as experiment

from conftest import run_experiment


def test_ext_cold_start(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    for row in result.rows:
        # Steady state is usually below cold; phase behaviour (liver's
        # kernels differ) can nudge it slightly above.
        assert row[2] <= row[1] * 1.1
