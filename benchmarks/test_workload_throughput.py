"""Microbenchmarks: trace-build throughput of the workload-spec layer.

Not a paper artifact — these track the cost of *generating* reference
streams from declarative workload specs (PR 8): the single-pattern
classes and the multi-tenant mixer, which interleaves N sub-streams
with Zipfian popularity and phase churn.  Trace generation sits on the
cold path of every engine worker and every cold ``repro-serve`` query,
so regressions here inflate end-to-end latency even though no
simulation slowed down.
"""

from repro.specs import (
    PointerChaseSpec,
    SequentialSpec,
    TenantMixSpec,
    ZipfianSpec,
)

#: References per built trace: enough to amortize per-build setup
#: (Zipf tables, node layouts), small enough for quick rounds.
LENGTH = 30_000


def build_trace(spec):
    """One cold trace build: spec -> generated -> materialized buffers.

    Bypasses the process memo on purpose — the memo would reduce every
    round after the first to a dict hit.
    """
    return spec.build().materialize()


def test_zipfian_trace_build(benchmark):
    trace = benchmark(build_trace, ZipfianSpec(length=LENGTH))
    assert len(trace) == LENGTH


def test_pointer_chase_trace_build(benchmark):
    trace = benchmark(build_trace, PointerChaseSpec(length=LENGTH))
    assert len(trace) == LENGTH


def test_tenant_mix_trace_build(benchmark):
    spec = TenantMixSpec(
        tenants=(
            ZipfianSpec(length=LENGTH),
            PointerChaseSpec(length=LENGTH),
            SequentialSpec(length=LENGTH),
        ),
        length=LENGTH,
        phase_length=LENGTH // 4,
    )
    trace = benchmark(build_trace, spec)
    assert len(trace) == LENGTH
