"""Microbenchmarks: vectorized kernel backend vs the reference interpreter.

Not a paper artifact — these pin the speedup that justifies
``repro.kernels``: the same whole-trace direct-mapped simulation run
through the per-reference interpreter (``run_level``) and through the
numpy array passes (``simulate_level``), on the same benchmark trace.
Pairs share a naming scheme (``*_python`` / ``*_numpy``) so the
``repro-bench diff`` gate tracks both sides of each comparison.

The equivalence of the two backends is pinned by ``tests/test_kernels.py``;
here the numpy variants assert only the headline counters so a silently
wrong kernel cannot post a fast time.
"""

import pytest

from repro.common.config import CacheConfig
from repro.experiments.runner import run_level
from repro.hierarchy.system import MemorySystem

pytest.importorskip("numpy")

from repro.kernels.numpy_backend import (  # noqa: E402  (needs numpy)
    simulate_level,
    simulate_system,
    stream_array,
)

CONFIG = CacheConfig(4096, 16)


@pytest.fixture(scope="module")
def mixed_trace(suite):
    return suite[0]  # ccom


@pytest.fixture(scope="module")
def dstream(mixed_trace):
    return mixed_trace.stream("d")


@pytest.fixture(scope="module")
def dstream_array(mixed_trace):
    return stream_array(mixed_trace, "d")


def test_direct_mapped_whole_trace_python(benchmark, dstream):
    run = benchmark.pedantic(
        lambda: run_level(dstream, CONFIG), rounds=3, iterations=1
    )
    assert run.stats.accesses == len(dstream)


def test_direct_mapped_whole_trace_numpy(benchmark, dstream, dstream_array):
    reference = run_level(dstream, CONFIG).stats
    run = benchmark.pedantic(
        lambda: simulate_level(dstream_array, CONFIG), rounds=3, iterations=1
    )
    assert run.stats.as_dict() == reference.as_dict()


def test_classified_level_python(benchmark, dstream):
    run = benchmark.pedantic(
        lambda: run_level(dstream, CONFIG, classify=True), rounds=3, iterations=1
    )
    assert run.stats.accesses == len(dstream)


def test_classified_level_numpy(benchmark, dstream, dstream_array):
    reference = run_level(dstream, CONFIG, classify=True)
    run = benchmark.pedantic(
        lambda: simulate_level(dstream_array, CONFIG, classify=True),
        rounds=3,
        iterations=1,
    )
    assert run.conflicts == reference.conflicts


def test_full_system_python(benchmark, mixed_trace):
    result = benchmark.pedantic(
        lambda: MemorySystem().run(mixed_trace), rounds=3, iterations=1
    )
    assert result.total_references == len(mixed_trace)


def test_full_system_numpy(benchmark, mixed_trace):
    reference = MemorySystem().run(mixed_trace)
    run = benchmark.pedantic(
        lambda: simulate_system(mixed_trace), rounds=3, iterations=1
    )
    assert run.result.l2stats.as_dict() == reference.l2stats.as_dict()
