"""Benchmark: regenerate Table 2-2 — baseline first-level miss rates vs. the paper's."""

from repro.experiments import table_2_2 as experiment

from conftest import run_experiment


def test_table_2_2(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    assert all(0.0 <= row[1] <= 1.0 for row in result.rows)
