"""Benchmark: regenerate SS3.5's inclusion observations — violations by config."""

from repro.experiments import ext_inclusion as experiment

from conftest import run_experiment


def test_ext_inclusion(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    no_vc = result.row_by_key("128B L2 lines, no VC")
    with_vc = result.row_by_key("128B L2 lines, VC4")
    assert with_vc[4] > 0.0  # the victim cache contributes violations
