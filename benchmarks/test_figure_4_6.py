"""Benchmark: regenerate Figure 4-6 — stream buffer benefit vs. cache size."""

from repro.experiments import figure_4_6 as experiment

from conftest import run_experiment


def test_figure_4_6(benchmark, suite):
    result = run_experiment(benchmark, experiment.run, suite)
    i_curve = result.get("single, I-cache").y
    assert max(i_curve) - min(i_curve) < 25.0
