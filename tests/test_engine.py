"""Tests for the parallel experiment engine.

The contract under test: a parallel run (``jobs > 1``) must be
row-for-row and byte-for-byte identical to the serial run at the same
seed, jobs must stay picklable, and anything the engine cannot describe
must fall back to the serial path rather than fail or diverge.
"""

import pickle

import pytest

from repro.buffers.miss_cache import MissCache
from repro.buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from repro.buffers.victim_cache import VictimCache
from repro.caches.fully_associative import ReplacementPolicy
from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError
from repro.experiments.engine import (
    EntrySweepJob,
    ExperimentJob,
    LevelJob,
    RunSweepJob,
    TraceKey,
    build_structure,
    default_jobs,
    execute_job,
    resolve_jobs,
    run_experiments,
    run_jobs,
    spec_of,
    validate_jobs,
)
from repro.specs import SystemSpec, VictimCacheSpec
from repro.telemetry.core import ParallelFallbackWarning
from repro.experiments.grid import GridSpec, sweep_grid
from repro.experiments.sweeps import (
    batch_entry_sweeps,
    batch_run_sweeps,
    victim_cache_sweep,
)
from repro.experiments.workloads import materialized_trace, suite
from repro.traces.trace import trace_from_pairs

SCALE = 1_500
CONFIG = CacheConfig(4096, 16)


@pytest.fixture(scope="module")
def tiny_suite():
    return suite(SCALE, 0)


class TestTraceKey:
    def test_of_registry_trace_roundtrips(self, tiny_suite):
        for trace in tiny_suite:
            key = TraceKey.of(trace)
            assert key is not None
            assert key.name == trace.name
            assert key.trace().pairs == trace.pairs

    def test_of_handmade_trace_is_none(self):
        trace = trace_from_pairs("toy", [(0, 0), (1, 16)])
        assert TraceKey.of(trace) is None

    def test_memoized_per_process(self):
        assert materialized_trace("ccom", SCALE, 0) is materialized_trace("ccom", SCALE, 0)


class TestStructureSpecs:
    """The legacy string codes survive as deprecated shims over the spec layer."""

    @pytest.mark.parametrize("spec", ["none", "mc4", "vc4", "sb4", "sb4x4", None])
    def test_roundtrip(self, spec):
        with pytest.deprecated_call():
            structure = build_structure(spec)
        expected = "none" if spec is None else spec
        with pytest.deprecated_call():
            assert spec_of(structure) == expected

    def test_unknown_spec_raises(self):
        with pytest.raises(ConfigurationError, match="structure spec"), pytest.deprecated_call():
            build_structure("warp9")

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_non_default_structures_have_no_short_code(self):
        # describable as specs (see test_specs.py), but outside the old
        # string scheme — the shim keeps returning None for them.
        assert spec_of(MissCache(4, track_depths=True)) is None
        assert spec_of(VictimCache(4, swap_on_hit=False)) is None
        assert spec_of(VictimCache(4, policy=ReplacementPolicy.FIFO)) is None
        assert spec_of(StreamBuffer(4, allocation_filter=True)) is None
        assert spec_of(MultiWayStreamBuffer(4, 4, model_availability=True)) is None

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_undescribable_structure_has_no_short_code(self):
        assert spec_of(StreamBuffer(4, fetch_sink=lambda line: None)) is None

    def test_jobs_are_picklable(self):
        key = TraceKey("ccom", SCALE, 0)
        for job in (
            LevelJob(SystemSpec.for_level(key, CONFIG, side="d", structure=VictimCacheSpec(4))),
            LevelJob(
                SystemSpec.for_level(
                    key, CONFIG, side="d", structure=VictimCacheSpec(4, policy="fifo")
                )
            ),
            EntrySweepJob(SystemSpec.for_level(key, CONFIG, side="i"), kind="victim"),
            RunSweepJob(SystemSpec.for_level(key, CONFIG, side="d"), ways=4),
            ExperimentJob("figure_3_3", SCALE, 0),
        ):
            assert pickle.loads(pickle.dumps(job)) == job

    def test_jobs_require_a_trace_reference(self):
        with pytest.raises(ConfigurationError, match="trace"):
            LevelJob(SystemSpec(trace=None))


class TestJobsResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        assert resolve_jobs(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert default_jobs() == 4
        assert resolve_jobs(None) == 4
        assert resolve_jobs(2) == 2  # explicit beats the environment

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError, match="REPRO_JOBS"):
            default_jobs()

    def test_floor_is_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-3) == 1


class TestJobsValidation:
    """CLI-boundary validation: reject rather than silently clamp."""

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ConfigurationError, match="--jobs"):
            validate_jobs(0)
        with pytest.raises(ConfigurationError, match="--jobs"):
            validate_jobs(-2)

    def test_passes_valid_values_through(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert validate_jobs(1) == 1
        assert validate_jobs(8) == 8
        assert validate_jobs(None) == 1  # falls back to default_jobs()

    def test_none_resolves_via_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert validate_jobs(None) == 3

    def test_malformed_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError, match="REPRO_JOBS"):
            validate_jobs(None)

    def test_cli_rejects_bad_jobs_flag(self, capsys):
        from repro.experiments.cli import main

        assert main(["table_1_1", "--jobs", "0"]) == 2
        err = capsys.readouterr().err
        assert "--jobs" in err

    def test_cli_rejects_malformed_env(self, monkeypatch, capsys):
        from repro.experiments.cli import main

        monkeypatch.setenv("REPRO_JOBS", "many")
        assert main(["table_1_1", "--scale", "300"]) == 2
        err = capsys.readouterr().err
        assert "REPRO_JOBS" in err


class TestFallbackSurfacing:
    """Silent serial fallback is no longer silent: one warning per event."""

    def _toy_traces(self):
        pairs = [(0, 16 * i) for i in range(64)] + [(1, 4096 + 16 * i) for i in range(64)]
        return [trace_from_pairs("toy", pairs)]

    def test_grid_warns_on_handmade_trace(self):
        spec = GridSpec(cache_sizes_kb=[4], line_sizes=[16])
        with pytest.warns(ParallelFallbackWarning, match="toy"):
            sweep_grid(self._toy_traces(), spec, side="d", jobs=4)

    def test_grid_warns_on_undescribable_structure(self, tiny_suite):
        # A live fetch_sink callable cannot be serialized into a spec.
        spec = GridSpec(
            cache_sizes_kb=[4],
            line_sizes=[16],
            structures={"sb-sink": lambda: StreamBuffer(4, fetch_sink=lambda line: None)},
        )
        with pytest.warns(ParallelFallbackWarning, match="sb-sink"):
            sweep_grid(tiny_suite[:1], spec, side="d", jobs=4)

    def test_grid_runs_non_default_specs_in_parallel(self, tiny_suite):
        import warnings

        spec = GridSpec(
            cache_sizes_kb=[4],
            line_sizes=[16],
            structures={"vc4-fifo": VictimCacheSpec(4, policy="fifo")},
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", ParallelFallbackWarning)
            sweep_grid(tiny_suite[:1], spec, side="d", jobs=2)

    def test_batch_sweeps_warn_on_handmade_trace(self):
        with pytest.warns(ParallelFallbackWarning, match="toy"):
            batch_entry_sweeps(self._toy_traces(), CONFIG, kind="miss", jobs=2)
        with pytest.warns(ParallelFallbackWarning, match="toy"):
            batch_run_sweeps(self._toy_traces(), CONFIG, jobs=2)

    def test_serial_request_never_warns(self, tiny_suite):
        import warnings

        spec = GridSpec(cache_sizes_kb=[4], line_sizes=[16])
        with warnings.catch_warnings():
            warnings.simplefilter("error", ParallelFallbackWarning)
            sweep_grid(self._toy_traces(), spec, side="d", jobs=1)
            batch_entry_sweeps(tiny_suite[:1], CONFIG, kind="victim", jobs=1)

    def test_parallel_registry_traces_never_warn(self, tiny_suite):
        import warnings

        spec = GridSpec(cache_sizes_kb=[4], line_sizes=[16])
        with warnings.catch_warnings():
            warnings.simplefilter("error", ParallelFallbackWarning)
            sweep_grid(tiny_suite[:1], spec, side="d", jobs=2)


class TestLevelJobEquivalence:
    def test_summary_matches_inline_run(self, tiny_suite):
        from repro.experiments.runner import run_level

        trace = tiny_suite[0]
        job = LevelJob(
            SystemSpec.for_level(
                trace, CONFIG, side="d", structure=VictimCacheSpec(4), classify=True
            )
        )
        summary = execute_job(job)
        run = run_level(trace.stream("d"), CONFIG, VictimCache(4), classify=True)
        assert summary.accesses == run.stats.accesses
        assert summary.demand_misses == run.stats.demand_misses
        assert summary.removed_misses == run.stats.removed_misses
        assert summary.misses_to_next_level == run.stats.misses_to_next_level
        assert summary.conflict_misses == run.conflicts

    def test_run_jobs_parallel_order_and_values(self, tiny_suite):
        jobs = [
            LevelJob(SystemSpec.for_level(trace, CONFIG, side=side, structure=structure))
            for trace in tiny_suite[:3]
            for side in ("i", "d")
            for structure in (None, VictimCacheSpec(4))
        ]
        serial = run_jobs(jobs, jobs=1)
        parallel = run_jobs(jobs, jobs=4)
        assert serial == parallel


class TestSweepGridDeterminism:
    def test_parallel_grid_identical_to_serial(self, tiny_suite):
        spec = GridSpec(cache_sizes_kb=[4, 8], line_sizes=[16, 32])
        serial = sweep_grid(tiny_suite, spec, side="d", jobs=1)
        parallel = sweep_grid(tiny_suite, spec, side="d", jobs=4)
        assert serial.headers == parallel.headers
        assert serial.rows == parallel.rows
        assert serial.render() == parallel.render()

    def test_handmade_traces_fall_back_to_serial(self):
        pairs = [(0, 16 * i) for i in range(64)] + [(1, 4096 + 16 * i) for i in range(64)]
        traces = [trace_from_pairs("toy", pairs)]
        spec = GridSpec(cache_sizes_kb=[4], line_sizes=[16])
        serial = sweep_grid(traces, spec, side="d", jobs=1)
        with pytest.warns(ParallelFallbackWarning):
            parallel = sweep_grid(traces, spec, side="d", jobs=4)
        assert serial.rows == parallel.rows

    def test_undescribable_structure_falls_back(self, tiny_suite):
        spec = GridSpec(
            cache_sizes_kb=[4],
            line_sizes=[16],
            structures={"sb-sink": lambda: StreamBuffer(4, fetch_sink=lambda line: None)},
        )
        serial = sweep_grid(tiny_suite[:2], spec, side="d", jobs=1)
        with pytest.warns(ParallelFallbackWarning):
            parallel = sweep_grid(tiny_suite[:2], spec, side="d", jobs=4)
        assert serial.rows == parallel.rows

    def test_non_default_spec_grid_parallel_identical_to_serial(self, tiny_suite):
        spec = GridSpec(
            cache_sizes_kb=[4],
            line_sizes=[16],
            structures={
                "vc4-noswap": VictimCacheSpec(4, swap_on_hit=False),
                "vc4-fifo": VictimCacheSpec(4, policy="fifo"),
            },
        )
        serial = sweep_grid(tiny_suite[:2], spec, side="d", jobs=1)
        parallel = sweep_grid(tiny_suite[:2], spec, side="d", jobs=4)
        assert serial.rows == parallel.rows


class TestBatchSweeps:
    def test_batch_entry_sweeps_match_loop(self, tiny_suite):
        batch = batch_entry_sweeps(tiny_suite, CONFIG, kind="victim", jobs=4)
        inline = [
            victim_cache_sweep(trace.stream(side), CONFIG, 15)
            for side in ("i", "d")
            for trace in tiny_suite
        ]
        assert batch == inline

    def test_batch_run_sweeps_serial_parallel_equal(self, tiny_suite):
        serial = batch_run_sweeps(tiny_suite[:3], CONFIG, ways=4, jobs=1)
        parallel = batch_run_sweeps(tiny_suite[:3], CONFIG, ways=4, jobs=4)
        assert serial == parallel


class TestExperimentDeterminism:
    #: A table, a single-pass sweep figure, and a full-system experiment —
    #: one of each major experiment shape.
    NAMES = ["table_2_1", "figure_3_3", "figure_2_2"]

    def test_parallel_experiments_render_identically(self):
        serial = run_experiments(self.NAMES, scale=SCALE, jobs=1)
        parallel = run_experiments(self.NAMES, scale=SCALE, jobs=4)
        assert [o.name for o in parallel] == self.NAMES
        for ser, par in zip(serial, parallel):
            assert ser.result.render() == par.result.render()

    def test_cli_jobs_flag_output_identical(self, capsys):
        from repro.experiments.cli import main

        assert main(["table_2_1", "--scale", "300", "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert main(["table_2_1", "--scale", "300", "--jobs", "1"]) == 0
        serial_out = capsys.readouterr().out

        def strip_timing(text):
            return [line for line in text.splitlines() if not line.startswith("[")]

        assert strip_timing(parallel_out) == strip_timing(serial_out)
