"""Shared fixtures: a small materialized benchmark suite and configs.

The suite fixture uses a reduced scale (a few thousand instructions per
benchmark) so the whole test run stays fast; the paper-claim integration
tests that need statistical stability request the larger session-scoped
``claims_suite``.
"""

from __future__ import annotations

import pytest

from repro.common.config import CacheConfig
from repro.traces.registry import BENCHMARK_NAMES, build_trace

SMALL_SCALE = 4_000
CLAIMS_SCALE = 30_000


@pytest.fixture(scope="session")
def small_suite():
    """All six benchmarks at a fast test scale."""
    return [build_trace(name, SMALL_SCALE).materialize() for name in BENCHMARK_NAMES]


@pytest.fixture(scope="session")
def claims_suite():
    """Larger traces for the paper-claim shape assertions."""
    return [build_trace(name, CLAIMS_SCALE).materialize() for name in BENCHMARK_NAMES]


@pytest.fixture(scope="session")
def small_by_name(small_suite):
    return {trace.name: trace for trace in small_suite}


@pytest.fixture
def l1_config():
    """The baseline 4KB / 16B-line L1 geometry."""
    return CacheConfig(4096, 16)
