"""Serve-layer resilience: deadlines, breaker, degraded store, drain.

The serve-scoped fault grammar (``store_read_fail``/``store_write_fail``/
``slow_sim``/``reject_sim``) and the controllable fake engine make every
failure mode here deterministic: no real disks die and no real sims run
long, yet the daemon's full degraded-operation surface — 504 deadline
budgets, 503 breaker fast-fails, serve-from-engine store degradation,
graceful drain — is exercised over real sockets.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.faults import (
    ACTIONS,
    ALWAYS,
    ServeFaults,
    parse_plan,
    set_plan,
)
from repro.serve import service as service_mod
from repro.serve.breaker import CircuitBreaker
from repro.serve.cli import main as serve_main
from repro.serve.cli import validate_request_deadline
from repro.serve.httpio import JsonClient, request_json
from repro.serve.loadgen import ClassReport, LoadReport, check_resilience, wait_ready
from repro.serve.service import StoreDegradedWarning, UpstreamError, parse_query

from tests.test_serve import FakeEngine, advise, fake_engine, query, serve_test, store  # noqa: F401

pytestmark = pytest.mark.usefixtures("clean_fault_plan")


@pytest.fixture
def clean_fault_plan():
    yield
    set_plan(None)


# -- the serve fault grammar ---------------------------------------------------


class TestServeFaultGrammar:
    def test_serve_actions_parse(self):
        plan = parse_plan("store_read_fail@0x*,slow_sim@2x3:1.5,reject_sim@4")
        actions = [clause.action for clause in plan.clauses]
        assert actions == ["store_read_fail", "slow_sim", "reject_sim"]
        assert plan.clauses[0].count == ALWAYS
        assert plan.clauses[1].seconds == 1.5

    def test_occurrence_windows(self):
        plan = parse_plan("slow_sim@2x3:1.5,reject_sim@4x*")
        assert plan.serve_clause("slow_sim", 1) is None
        for occurrence in (2, 3, 4):
            assert plan.serve_clause("slow_sim", occurrence) is not None
        assert plan.serve_clause("slow_sim", 5) is None
        # x* keeps the window open-ended.
        assert plan.serve_clause("reject_sim", 3) is None
        assert plan.serve_clause("reject_sim", 400) is not None

    def test_engine_matching_ignores_serve_clauses(self):
        plan = parse_plan("store_read_fail@0x*,crash@0")
        clause = plan.clause_for(0, 0)
        assert clause is not None and clause.action == "crash"
        engine_only = parse_plan("store_read_fail@0x*")
        assert engine_only.clause_for(0, 0, actions=ACTIONS) is None

    def test_serve_faults_count_per_action(self):
        set_plan("reject_sim@1x2")
        faults = ServeFaults()
        assert faults.fire("reject_sim") is None  # occurrence 0
        assert faults.fire("reject_sim") is not None  # 1
        assert faults.fire("reject_sim") is not None  # 2
        assert faults.fire("reject_sim") is None  # 3: window closed
        # Independent counter per action.
        assert faults.fire("slow_sim") is None

    def test_fire_rejects_engine_actions(self):
        with pytest.raises(ValueError):
            ServeFaults().fire("crash")

    def test_no_plan_is_quiet(self):
        assert ServeFaults().fire("reject_sim") is None

    def test_unknown_action_still_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_plan("slow_simulation@0")


# -- the circuit breaker -------------------------------------------------------


class _Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=3, window=30, cooldown=5, clock=clock)
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.allow()
        assert breaker.record_failure() is True
        assert breaker.state == "open"
        assert breaker.opens == 1
        assert not breaker.allow()
        assert breaker.retry_after() >= 1.0

    def test_window_prunes_old_failures(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=2, window=10, cooldown=5, clock=clock)
        breaker.record_failure()
        clock.now = 11.0  # first failure ages out of the window
        assert breaker.record_failure() is False
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=1, window=30, cooldown=5, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 5.0
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time

    def test_probe_success_closes(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=1, window=30, cooldown=5, clock=clock)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=1, window=30, cooldown=5, clock=clock)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        assert breaker.record_failure() is True
        assert breaker.state == "open"
        assert breaker.opens == 2
        clock.now = 6.0
        assert not breaker.allow()  # cooldown restarted

    def test_stale_failures_while_open_ignored(self):
        clock = _Clock()
        breaker = CircuitBreaker(threshold=1, window=30, cooldown=5, clock=clock)
        breaker.record_failure()
        assert breaker.record_failure() is False  # pre-open dispatch settling late
        assert breaker.opens == 1

    def test_late_success_does_not_close_open_breaker(self):
        breaker = CircuitBreaker(threshold=1, window=30, cooldown=5, clock=_Clock())
        breaker.record_failure()
        breaker.record_success()
        assert breaker.state == "open"

    def test_as_dict_shape(self):
        breaker = CircuitBreaker(threshold=2, window=30, cooldown=5, clock=_Clock())
        payload = breaker.as_dict()
        assert payload["state"] == "closed"
        assert payload["threshold"] == 2
        assert payload["opens"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)


# -- deadline budgets ----------------------------------------------------------


class TestDeadlines:
    def test_deadline_ms_parsing(self):
        assert parse_query(query(deadline_ms=250)).deadline_s == 0.25
        for bad in (True, "soon", -5, 0):
            with pytest.raises(service_mod.BadRequestError):
                parse_query(query(deadline_ms=bad))

    def test_client_deadline_answers_504(self, store, fake_engine):
        fake_engine.release.clear()

        async def check(daemon):
            status, _, body = await advise(daemon, dict(query(warmup=1), deadline_ms=100))
            assert status == 504
            assert "deadline" in body["error"]
            assert daemon.service.counters.deadline_expired == 1
            # The abandoned job was never cancelled: it settles normally.
            assert daemon.service.inflight == 1
            fake_engine.release.set()
            for _ in range(200):
                if not daemon.service.inflight:
                    break
                await asyncio.sleep(0.02)
            assert daemon.service.inflight == 0
            assert fake_engine.calls == 1

        serve_test(check)

    def test_server_deadline_applies_without_client_budget(self, store, fake_engine):
        fake_engine.release.clear()

        async def check(daemon):
            status, _, body = await advise(daemon, query(warmup=1))
            assert status == 504 and "deadline" in body["error"]
            fake_engine.release.set()

        serve_test(check, request_deadline=0.1)

    def test_timed_out_waiter_does_not_cancel_shared_job(self, store, fake_engine):
        fake_engine.release.clear()

        async def check(daemon):
            loop = asyncio.get_running_loop()
            task_a = asyncio.create_task(advise(daemon, query(warmup=1)))
            await loop.run_in_executor(None, fake_engine.started.wait, 10)
            # B coalesces onto A's job, then times out alone.
            status_b, _, body_b = await advise(
                daemon, dict(query(warmup=1), deadline_ms=150)
            )
            assert status_b == 504
            assert daemon.service.inflight == 1
            fake_engine.release.set()
            status_a, _, body_a = await task_a
            assert status_a == 200
            assert body_a["served_from"] == "simulated"
            counters = daemon.service.counters
            assert counters.cold_misses == 1
            assert counters.coalesced == 1
            assert counters.deadline_expired == 1
            assert fake_engine.calls == 1

        serve_test(check)

    def test_slow_sim_fault_trips_server_deadline(self, store, fake_engine):
        set_plan("slow_sim@0:1")

        async def check(daemon):
            status, _, body = await advise(daemon, query(warmup=1))
            assert status == 504

        serve_test(check, request_deadline=0.15)


# -- the breaker on the wire ---------------------------------------------------


class _FlakyEngine:
    """run_jobs stand-in that fails until told otherwise."""

    def __init__(self) -> None:
        self.calls = 0
        self.fail = True

    def __call__(self, job_list, **kwargs):
        self.calls += 1
        if self.fail:
            raise RuntimeError("boom")
        from tests.test_serve import SUMMARY

        return [SUMMARY for _ in job_list]


class TestBreakerIntegration:
    def test_opens_then_fast_fails_with_retry_after(self, store, monkeypatch):
        flaky = _FlakyEngine()
        monkeypatch.setattr(service_mod, "run_jobs", flaky)

        async def check(daemon):
            for warmup in (1, 2):
                status, _, body = await advise(daemon, query(warmup=warmup))
                assert status == 503
                assert "simulation failed" in body["error"]
            assert daemon.service.breaker.state == "open"
            status, headers, body = await advise(daemon, query(warmup=3))
            assert status == 503
            assert "breaker" in body["error"]
            assert "retry-after" in headers
            assert flaky.calls == 2  # the fast-fail never dispatched
            counters = daemon.service.counters
            assert counters.breaker_opens == 1
            assert counters.breaker_fastfail == 1
            rstatus, _, rbody = await request_json(
                "127.0.0.1", daemon.port, "GET", "/readyz", timeout=10
            )
            assert rstatus == 503
            assert rbody["status"] == "degraded" and rbody["breaker"] == "open"
            _, _, stats = await request_json(
                "127.0.0.1", daemon.port, "GET", "/v1/stats", timeout=10
            )
            assert stats["breaker"]["state"] == "open"
            assert stats["breaker"]["opens"] == 1

        serve_test(check, breaker_threshold=2, breaker_cooldown=60.0)

    def test_half_open_probe_recovers(self, store, monkeypatch):
        flaky = _FlakyEngine()
        monkeypatch.setattr(service_mod, "run_jobs", flaky)

        async def check(daemon):
            status, _, _ = await advise(daemon, query(warmup=1))
            assert status == 503
            assert daemon.service.breaker.state == "open"
            await asyncio.sleep(0.1)
            flaky.fail = False
            status, _, body = await advise(daemon, query(warmup=2))
            assert status == 200 and body["served_from"] == "simulated"
            assert daemon.service.breaker.state == "closed"
            rstatus, _, rbody = await request_json(
                "127.0.0.1", daemon.port, "GET", "/readyz", timeout=10
            )
            assert rstatus == 200 and rbody["status"] == "ready"

        serve_test(check, breaker_threshold=1, breaker_cooldown=0.05)

    def test_reject_sim_fault_is_typed_503(self, store, fake_engine):
        set_plan("reject_sim@0")

        async def check(daemon):
            status, _, body = await advise(daemon, query(warmup=1))
            assert status == 503
            assert "reject_sim" in body["error"]

        serve_test(check)


# -- degraded store mode -------------------------------------------------------


class TestDegradedStore:
    def test_store_failures_serve_from_engine_not_500(self, store, fake_engine):
        set_plan("store_read_fail@0x*,store_write_fail@0x*")

        async def check(daemon):
            with pytest.warns(StoreDegradedWarning):
                status, _, body = await advise(daemon, query(warmup=1))
            assert status == 200
            assert body["served_from"] == "simulated"
            assert daemon.service.store_state == "degraded"
            assert daemon.service.counters.store_errors >= 1
            rstatus, _, rbody = await request_json(
                "127.0.0.1", daemon.port, "GET", "/readyz", timeout=10
            )
            assert rstatus == 503
            assert rbody["status"] == "degraded" and rbody["store"] == "degraded"
            _, _, stats = await request_json(
                "127.0.0.1", daemon.port, "GET", "/v1/stats", timeout=10
            )
            assert stats["store_state"] == "degraded"
            assert daemon.service.counters.degraded_serves >= 1

        serve_test(check, store_probe_interval=60.0)

    def test_store_recovers_after_probe(self, store, fake_engine):
        set_plan("store_read_fail@0")  # one failure, then healthy

        async def check(daemon):
            with pytest.warns(StoreDegradedWarning):
                status, _, _ = await advise(daemon, query(warmup=1))
            assert status == 200
            assert daemon.service.counters.store_errors == 1
            # probe_interval=0: the very next store operation probes and
            # recovers.
            status, _, _ = await advise(daemon, query(warmup=2))
            assert status == 200
            assert daemon.service.store_state == "ok"
            rstatus, _, rbody = await request_json(
                "127.0.0.1", daemon.port, "GET", "/readyz", timeout=10
            )
            assert rstatus == 200 and rbody["status"] == "ready"

        serve_test(check, store_probe_interval=0.0)


# -- coalescing-leak regression ------------------------------------------------


class TestCoalescedFailureFanout:
    def test_all_waiters_get_typed_error_and_inflight_empties(self, store, monkeypatch):
        held = threading.Event()
        release = threading.Event()

        def failing_run_jobs(job_list, **kwargs):
            held.set()
            assert release.wait(30), "test never released the failing engine"
            raise RuntimeError("boom")

        monkeypatch.setattr(service_mod, "run_jobs", failing_run_jobs)

        async def check(daemon):
            service = daemon.service
            parsed = parse_query(query(warmup=1))
            loop = asyncio.get_running_loop()
            first = asyncio.create_task(service.advise(parsed))
            await loop.run_in_executor(None, held.wait, 10)
            others = [asyncio.create_task(service.advise(parsed)) for _ in range(2)]
            while service.counters.coalesced < 2:
                await asyncio.sleep(0.01)
            release.set()
            results = await asyncio.gather(first, *others, return_exceptions=True)
            # Every waiter — leader and coalesced followers alike — gets
            # the same *typed* UpstreamError; nobody hangs on a leaked
            # future and no dead entry remains to coalesce onto.
            assert len(results) == 3
            for outcome in results:
                assert isinstance(outcome, UpstreamError)
                assert "simulation failed" in str(outcome)
            assert service._inflight == {}
            assert service.counters.cold_misses == 1
            assert service.counters.coalesced == 2
            assert service.counters.failed == 3

        serve_test(check)

    def test_dispatch_reprobes_store_after_stale_lookup(self, store, fake_engine):
        """A lookup-miss/attach gap race never re-simulates a flushed key.

        The store lookup and the inflight attach are separate steps: a
        request's lookup can miss just before another request's
        simulation of the same key flushes and settles.  The dispatch
        re-probe must catch that — served from the store, zero engine
        calls — instead of running the simulation a second time.
        """

        async def check(daemon):
            service = daemon.service
            parsed = parse_query(query(warmup=1))
            job, key, _cached = service._lookup(parsed.spec)
            from tests.test_serve import SUMMARY

            service.guarded_store.put(key, SUMMARY)
            real_lookup = service._lookup
            # Simulate the race: the lookup reports a miss even though
            # the key has just been flushed.
            service._lookup = lambda spec: (*real_lookup(spec)[:2], None)
            status, _, body = await advise(daemon, query(warmup=1))
            assert status == 200
            assert body["served_from"] == "store"
            assert fake_engine.calls == 0
            assert service._inflight == {}

        serve_test(check)


# -- graceful drain ------------------------------------------------------------


class TestDrain:
    def test_keepalive_connection_crossing_a_drain(self, store, fake_engine):
        fake_engine.release.clear()

        async def check(daemon):
            loop = asyncio.get_running_loop()
            client = JsonClient("127.0.0.1", daemon.port)
            pending = asyncio.create_task(
                client.request("POST", "/v1/advise", query(warmup=1), timeout=30)
            )
            await loop.run_in_executor(None, fake_engine.started.wait, 10)
            drainer = asyncio.create_task(daemon.drain())
            await asyncio.sleep(0.05)
            assert daemon.draining
            # The in-flight request (read before the drain) completes.
            fake_engine.release.set()
            status, headers, body = await pending
            assert status == 200 and body["served_from"] == "simulated"
            assert headers.get("connection") == "keep-alive"
            # The next request on the same connection is refused and the
            # connection is told to close.
            status2, headers2, body2 = await client.request(
                "POST", "/v1/advise", query(warmup=2), timeout=10
            )
            assert status2 == 503
            assert "draining" in body2["error"]
            assert headers2.get("connection") == "close"
            assert headers2.get("retry-after") == "1"
            await client.aclose()
            await asyncio.wait_for(drainer, 10)
            assert daemon.service.counters.drain_rejects == 1

        serve_test(check)

    def test_drain_force_closes_idle_connections(self, store):
        async def check(daemon):
            client = JsonClient("127.0.0.1", daemon.port)
            status, _, _ = await client.request("GET", "/healthz", timeout=10)
            assert status == 200
            # The idle keep-alive connection never sends another request;
            # the drain deadline force-closes it (and the handler's own
            # close must not trip over the drain's).
            await asyncio.wait_for(daemon.drain(deadline=0.2), 10)
            assert daemon.draining
            await client.aclose()

        serve_test(check)

    def test_drain_is_idempotent(self, store):
        async def check(daemon):
            await asyncio.wait_for(daemon.drain(deadline=0.1), 10)
            await asyncio.wait_for(daemon.drain(deadline=0.1), 10)
            status, payload = daemon.readiness()
            assert status == 503 and payload["status"] == "draining"

        serve_test(check)


# -- readiness + stats surface -------------------------------------------------


class TestReadiness:
    def test_ready_daemon_reports_200(self, store):
        async def check(daemon):
            status, _, body = await request_json(
                "127.0.0.1", daemon.port, "GET", "/readyz", timeout=10
            )
            assert status == 200
            assert body["status"] == "ready"
            assert body["store"] == "ok"
            assert body["breaker"] == "closed"

        serve_test(check)

    def test_readyz_wrong_method_is_405(self, store):
        async def check(daemon):
            status, _, _ = await request_json(
                "127.0.0.1", daemon.port, "POST", "/readyz", timeout=10
            )
            assert status == 405

        serve_test(check)

    def test_stats_exposes_resilience_state(self, store):
        async def check(daemon):
            _, _, stats = await request_json(
                "127.0.0.1", daemon.port, "GET", "/v1/stats", timeout=10
            )
            assert stats["store_state"] == "ok"
            assert stats["breaker"]["state"] == "closed"
            assert stats["draining"] is False
            assert stats["request_deadline_s"] == 1.5
            serving = stats["serving"]
            for counter in (
                "deadline_expired",
                "breaker_fastfail",
                "breaker_opens",
                "store_errors",
                "degraded_serves",
                "drain_rejects",
            ):
                assert serving[counter] == 0

        serve_test(check, request_deadline=1.5)

    def test_breaker_disabled_reported(self, store):
        async def check(daemon):
            assert daemon.service.breaker is None
            _, _, stats = await request_json(
                "127.0.0.1", daemon.port, "GET", "/v1/stats", timeout=10
            )
            assert stats["breaker"] == {"state": "disabled"}
            status, _, body = await request_json(
                "127.0.0.1", daemon.port, "GET", "/readyz", timeout=10
            )
            assert status == 200 and body["breaker"] == "disabled"

        serve_test(check, breaker_threshold=0)


# -- loadgen readiness + resilience checks -------------------------------------


class TestWaitReady:
    def test_ready_daemon(self, store):
        async def check(daemon):
            await wait_ready("127.0.0.1", daemon.port, timeout=5)

        serve_test(check)

    def test_degraded_daemon_named_in_timeout(self, store):
        async def check(daemon):
            daemon.service.guarded_store.state = "degraded"
            with pytest.raises(TimeoutError, match="degraded"):
                await wait_ready("127.0.0.1", daemon.port, timeout=0.5)

        serve_test(check)

    def test_connection_refused_named_in_timeout(self):
        async def check():
            with pytest.raises(TimeoutError, match="not listening"):
                await wait_ready("127.0.0.1", 1, timeout=0.4)

        asyncio.run(check())

    def test_falls_back_to_healthz(self, store, monkeypatch):
        async def check(daemon):
            # A daemon predating /readyz answers 404 there; liveness is
            # the best wait_ready can do.
            monkeypatch.setattr(daemon, "readiness", lambda: (404, {"error": "old"}))
            await wait_ready("127.0.0.1", daemon.port, timeout=5)

        serve_test(check)


def _report(**classes) -> LoadReport:
    return LoadReport(classes=classes, server_stats={}, elapsed_s=0.1)


class TestCheckResilience:
    def test_clean_report_passes(self):
        ok = ClassReport("cold", statuses={"200": 3, "503": 1, "504": 1})
        assert check_resilience(_report(cold=ok)) == []

    def test_untyped_500_fails(self):
        bad = ClassReport("cold", statuses={"200": 2, "500": 1})
        failures = check_resilience(_report(cold=bad))
        assert failures and "500" in failures[0]

    def test_transport_errors_fail(self):
        dropped = ClassReport("cold", statuses={"200": 2}, errors=2)
        failures = check_resilience(_report(cold=dropped))
        assert failures and "transport" in failures[0]

    def test_deadline_class_must_see_504(self):
        deadline = ClassReport("deadline", statuses={"200": 3})
        failures = check_resilience(_report(deadline=deadline))
        assert failures and "504" in failures[0]
        deadline_ok = ClassReport("deadline", statuses={"504": 3})
        assert check_resilience(_report(deadline=deadline_ok)) == []

    def test_bad_class_must_all_400(self):
        bad = ClassReport("bad", statuses={"400": 1, "200": 1})
        failures = check_resilience(_report(bad=bad))
        assert failures and "400" in failures[0]


# -- CLI boundaries ------------------------------------------------------------


class TestCliKnobs:
    def test_request_deadline_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_REQUEST_DEADLINE", raising=False)
        assert validate_request_deadline(None) is None
        monkeypatch.setenv("REPRO_REQUEST_DEADLINE", "5")
        assert validate_request_deadline(None) == 5.0
        monkeypatch.setenv("REPRO_REQUEST_DEADLINE", "bogus")
        with pytest.raises(ConfigurationError):
            validate_request_deadline(None)

    def test_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_REQUEST_DEADLINE", "5")
        assert validate_request_deadline(2.0) == 2.0

    @pytest.mark.parametrize(
        "argv",
        [
            ["--request-deadline", "-1"],
            ["--request-deadline", "0"],
            ["--drain-deadline", "-1"],
            ["--breaker-threshold", "-1"],
            ["--breaker-window", "0"],
            ["--breaker-cooldown", "0"],
        ],
    )
    def test_bad_resilience_knobs_exit_2(self, argv, capsys):
        assert serve_main(argv) == 2
        assert "repro-serve:" in capsys.readouterr().err


# -- end-to-end SIGTERM drain (subprocess; chaos-gated) ------------------------


@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS"),
    reason="subprocess drain test; set REPRO_CHAOS=1 (CI serve-chaos job does)",
)
def test_sigterm_drains_and_exits_zero(tmp_path):
    repo = Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["REPRO_RESULT_STORE"] = str(tmp_path / "store")
    env["PYTHONPATH"] = str(repo / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli", "--port", "0", "--drain-deadline", "5"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=repo,
    )
    try:
        banner = proc.stderr.readline()
        assert "listening" in banner, banner
        proc.send_signal(signal.SIGTERM)
        _, err = proc.communicate(timeout=20)
        assert proc.returncode == 0
        assert "draining" in err
    finally:
        if proc.poll() is None:
            proc.kill()


@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS"),
    reason="subprocess shutdown test; set REPRO_CHAOS=1 (CI serve-chaos job does)",
)
def test_sigint_stops_and_emits_run_record(tmp_path):
    """kill -INT stops the daemon and lands the serving run record —
    even with SIGINT inherited as ignored (a shell-backgrounded daemon),
    which is exactly how the CI smoke job launches and stops it."""
    repo = Path(__file__).resolve().parents[1]
    metrics = tmp_path / "metrics.jsonl"
    env = dict(os.environ)
    env["REPRO_RESULT_STORE"] = str(tmp_path / "store")
    env["PYTHONPATH"] = str(repo / "src") + os.pathsep + env.get("PYTHONPATH", "")
    preexec = getattr(signal, "SIG_IGN", None) and (
        lambda: signal.signal(signal.SIGINT, signal.SIG_IGN)
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli", "--port", "0",
         "--emit-metrics", str(metrics)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=repo,
        preexec_fn=preexec,
    )
    try:
        banner = proc.stderr.readline()
        assert "listening" in banner, banner
        proc.send_signal(signal.SIGINT)
        proc.communicate(timeout=20)
        assert proc.returncode == 0
        payload = json.loads(metrics.read_text().splitlines()[0])
        assert payload["run"] == "serve"
    finally:
        if proc.poll() is None:
            proc.kill()
