"""Cross-cutting property tests: whole-system invariants on random traces.

These hypothesis tests drive the full :class:`MemorySystem` (not single
components) with arbitrary access streams and check the accounting
identities every experiment silently relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers.base import CompositeAugmentation
from repro.buffers.miss_cache import MissCache
from repro.buffers.stream_buffer import MultiWayStreamBuffer, StreamBuffer
from repro.buffers.victim_cache import VictimCache
from repro.common.config import CacheConfig, SystemConfig
from repro.common.types import AccessOutcome
from repro.hierarchy.system import MemorySystem

SMALL_SYSTEM = SystemConfig(
    icache=CacheConfig(512, 16),
    dcache=CacheConfig(512, 16),
    l2=CacheConfig(8192, 128),
)

accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=1 << 14),
    ),
    max_size=400,
)


def build_system(daug=None):
    return MemorySystem(SMALL_SYSTEM, daugmentation=daug)


class TestAccountingIdentities:
    @settings(deadline=None, max_examples=40)
    @given(trace=accesses)
    def test_outcomes_sum_to_accesses(self, trace):
        system = build_system()
        system.run(trace)
        for stats in (system.ilevel.stats, system.dlevel.stats):
            assert sum(stats.outcomes.values()) == stats.accesses
        assert (
            system.ilevel.stats.accesses + system.dlevel.stats.accesses
            == len(trace)
        )

    @settings(deadline=None, max_examples=40)
    @given(trace=accesses)
    def test_l2_demand_accesses_equal_l1_misses_to_next(self, trace):
        system = build_system()
        system.run(trace)
        expected = (
            system.ilevel.stats.misses_to_next_level
            + system.dlevel.stats.misses_to_next_level
        )
        assert system.l2stats.demand_accesses == expected

    @settings(deadline=None, max_examples=40)
    @given(trace=accesses)
    def test_miss_rate_bounds(self, trace):
        system = build_system()
        result = system.run(trace)
        assert 0.0 <= result.imiss_rate <= 1.0
        assert 0.0 <= result.dmiss_rate <= 1.0
        assert result.effective_imiss_rate <= result.imiss_rate
        assert result.effective_dmiss_rate <= result.dmiss_rate

    @settings(deadline=None, max_examples=40)
    @given(trace=accesses)
    def test_augmentation_hits_match_level_outcomes(self, trace):
        victim = VictimCache(3)
        system = build_system(victim)
        system.run(trace)
        assert (
            system.dlevel.stats.outcomes[AccessOutcome.VICTIM_HIT] == victim.hits
        )

    @settings(deadline=None, max_examples=40)
    @given(trace=accesses)
    def test_composite_overlap_bounded_by_member_hits(self, trace):
        victim = VictimCache(3)
        stream = MultiWayStreamBuffer(2, 2)
        composite = CompositeAugmentation([victim, stream])
        system = build_system(composite)
        system.run(trace)
        assert composite.overlap_hits <= min(victim.hits, stream.hits)
        removed = system.dlevel.stats.removed_misses
        assert removed == victim.hits + stream.hits - composite.overlap_hits


class TestAugmentationsNeverHurtMissCounts:
    @settings(deadline=None, max_examples=30)
    @given(trace=accesses)
    def test_demand_misses_identical_across_augmentations(self, trace):
        """No helper structure may change what the L1 array does."""
        baseline = build_system()
        baseline.run(trace)
        for make in (
            lambda: MissCache(2),
            lambda: VictimCache(2),
            lambda: StreamBuffer(2),
            lambda: CompositeAugmentation([VictimCache(2), StreamBuffer(2)]),
        ):
            system = build_system(make())
            system.run(trace)
            assert (
                system.dlevel.stats.demand_misses
                == baseline.dlevel.stats.demand_misses
            )

    @settings(deadline=None, max_examples=30)
    @given(trace=accesses)
    def test_removed_plus_full_misses_conserved(self, trace):
        system = build_system(VictimCache(4))
        system.run(trace)
        stats = system.dlevel.stats
        assert stats.removed_misses + stats.misses_to_next_level == stats.demand_misses


class TestDeterminism:
    @settings(deadline=None, max_examples=20)
    @given(trace=accesses)
    def test_rerun_is_identical(self, trace):
        first = build_system(VictimCache(2))
        second = build_system(VictimCache(2))
        first.run(trace)
        second.run(trace)
        assert first.dlevel.stats.outcomes == second.dlevel.stats.outcomes
        assert first.l2stats == second.l2stats

    @settings(deadline=None, max_examples=20)
    @given(trace=accesses)
    def test_reset_restores_pristine_behaviour(self, trace):
        system = build_system(StreamBuffer(2))
        system.run(trace)
        outcomes_first = dict(system.dlevel.stats.outcomes)
        system.reset()
        system.run(trace)
        assert system.dlevel.stats.outcomes == outcomes_first
