"""Unit tests for the classical prefetch schemes (paper §4, Smith)."""

import pytest

from repro.buffers.prefetch import PrefetchingCache, PrefetchScheme
from repro.common.config import CacheConfig


@pytest.fixture
def config():
    return CacheConfig(4096, 16)


def access_all(cache, lines, start_time=0):
    hits = 0
    for i, line in enumerate(lines):
        if cache.access(line, start_time + i):
            hits += 1
    return hits


class TestPrefetchOnMiss:
    def test_halves_sequential_misses(self, config):
        """§4: 'it can cut the number of misses for a purely sequential
        reference stream in half.'"""
        cache = PrefetchingCache(config, PrefetchScheme.ON_MISS)
        access_all(cache, range(1000, 1100))
        assert cache.stats.demand_misses == 50

    def test_prefetches_only_on_miss(self, config):
        cache = PrefetchingCache(config, PrefetchScheme.ON_MISS)
        cache.access(10, 0)  # miss -> prefetch 11
        issued_after_miss = cache.stats.prefetches_issued
        cache.access(10, 1)  # hit -> no new prefetch
        assert cache.stats.prefetches_issued == issued_after_miss


class TestTaggedPrefetch:
    def test_sequential_misses_drop_to_one(self, config):
        """§4: tagged prefetch 'can reduce the number of misses in a
        purely sequential reference stream to zero' (after the first)."""
        cache = PrefetchingCache(config, PrefetchScheme.TAGGED)
        access_all(cache, range(1000, 1100))
        assert cache.stats.demand_misses == 1

    def test_zero_to_one_transition_triggers(self, config):
        cache = PrefetchingCache(config, PrefetchScheme.TAGGED)
        cache.access(10, 0)        # miss 10: fetch 10, prefetch 11 (tag 0)
        before = cache.stats.prefetches_issued
        cache.access(11, 1)        # first use of 11: 0->1, prefetch 12
        assert cache.stats.prefetches_issued == before + 1
        cache.access(11, 2)        # second use: tag already 1, no prefetch
        assert cache.stats.prefetches_issued == before + 1


class TestPrefetchAlways:
    def test_every_access_prefetches_successor(self, config):
        cache = PrefetchingCache(config, PrefetchScheme.ALWAYS)
        cache.access(10, 0)
        cache.access(10, 1)  # hit, but ALWAYS still wants 11
        assert cache.cache.probe(11)

    def test_sequential_misses_drop_to_one(self, config):
        cache = PrefetchingCache(config, PrefetchScheme.ALWAYS)
        access_all(cache, range(2000, 2100))
        assert cache.stats.demand_misses == 1


class TestLeadTimes:
    def test_lead_time_measures_issue_to_use(self, config):
        cache = PrefetchingCache(config, PrefetchScheme.ON_MISS)
        cache.access(10, now=100)   # miss; prefetch 11 issued at 100
        cache.access(11, now=107)   # used 7 issues later
        assert cache.stats.useful_prefetches == 1
        assert cache.stats.lead_times.counts == {7: 1}

    def test_percent_needed_within(self, config):
        cache = PrefetchingCache(config, PrefetchScheme.ON_MISS)
        cache.access(10, now=0)
        cache.access(11, now=3)     # lead 3
        cache.access(20, now=10)
        cache.access(21, now=30)    # lead 20
        assert cache.stats.percent_needed_within(3) == 50.0
        assert cache.stats.percent_needed_within(20) == 100.0

    def test_wasted_prefetch_counted_on_overwrite(self, config):
        cache = PrefetchingCache(config, PrefetchScheme.ON_MISS)
        cache.access(10, 0)          # prefetch 11 (never used)
        conflicting = 11 + 256       # same set as line 11
        cache.access(conflicting, 1)  # demand fill overwrites 11
        assert cache.stats.wasted_prefetches == 1
        assert cache.stats.useful_prefetches == 0

    def test_no_duplicate_outstanding_prefetch(self, config):
        cache = PrefetchingCache(config, PrefetchScheme.ALWAYS)
        cache.access(10, 0)
        cache.access(10, 1)
        cache.access(10, 2)
        assert cache.stats.prefetches_issued == 1  # 11 already pending


class TestMissRateAndReset:
    def test_miss_rate(self, config):
        cache = PrefetchingCache(config, PrefetchScheme.ON_MISS)
        access_all(cache, [1, 1, 1, 500])
        assert cache.stats.accesses == 4
        assert cache.stats.miss_rate == pytest.approx(2 / 4)

    def test_empty_miss_rate(self, config):
        assert PrefetchingCache(config, PrefetchScheme.TAGGED).stats.miss_rate == 0.0

    def test_reset(self, config):
        cache = PrefetchingCache(config, PrefetchScheme.TAGGED)
        access_all(cache, range(50))
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.cache.probe(0)


class TestPollution:
    def test_prefetch_into_cache_can_evict_useful_line(self, config):
        """The §4.1 contrast with stream buffers: classical prefetch
        places lines in the cache and may pollute it."""
        cache = PrefetchingCache(config, PrefetchScheme.ON_MISS)
        victim_line = 11 + 256
        cache.access(victim_line, 0)   # resident, useful
        assert cache.cache.probe(victim_line)
        cache.access(10, 1)            # miss -> prefetch 11, evicting it
        assert not cache.cache.probe(victim_line)
