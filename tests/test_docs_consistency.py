"""Documentation consistency: the docs must track the code.

These meta-tests fail when an experiment, benchmark, or example is
added without its documentation (or vice versa), keeping DESIGN.md's
index, EXPERIMENTS.md's sections, and the benchmark harness complete.
"""

import re
from pathlib import Path

import pytest

from repro.experiments import ALL_EXPERIMENTS

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def design_text():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments_text():
    return (ROOT / "EXPERIMENTS.md").read_text()


class TestBenchmarkHarnessComplete:
    def test_every_experiment_has_a_benchmark(self):
        missing = [
            name
            for name in ALL_EXPERIMENTS
            if not (ROOT / "benchmarks" / f"test_{name}.py").exists()
        ]
        assert not missing, f"experiments without benchmarks: {missing}"

    def test_every_artifact_benchmark_has_an_experiment(self):
        known = set(ALL_EXPERIMENTS) | {
            "core_throughput",
            "telemetry_overhead",
            "kernel_throughput",
            "assist_kernel_throughput",
            "serve_latency",
            "serve_resilience",
            "workload_throughput",
        }
        stray = [
            path.stem.removeprefix("test_")
            for path in (ROOT / "benchmarks").glob("test_*.py")
            if path.stem.removeprefix("test_") not in known
        ]
        assert not stray, f"benchmarks without experiments: {stray}"


class TestDesignIndexComplete:
    def test_every_experiment_module_referenced(self, design_text):
        missing = [
            name for name in ALL_EXPERIMENTS if f"experiments.{name}" not in design_text
            and f"`{name}`" not in design_text
        ]
        # Table/figure experiments are referenced via experiments.<name>;
        # allow either style but require presence.
        assert not missing, f"experiments missing from DESIGN.md: {missing}"

    def test_paper_identity_check_present(self, design_text):
        assert "Paper identity check" in design_text

    def test_every_benchmark_file_referenced(self, design_text):
        missing = [
            name
            for name in ALL_EXPERIMENTS
            if f"benchmarks/test_{name}.py" not in design_text
        ]
        assert not missing, f"bench targets missing from DESIGN.md index: {missing}"


class TestExperimentsDocComplete:
    def test_every_experiment_has_a_section(self, experiments_text):
        missing = [
            name for name in ALL_EXPERIMENTS if f"`{name}`" not in experiments_text
        ]
        assert not missing, f"experiments missing from EXPERIMENTS.md: {missing}"

    def test_every_backticked_id_is_real(self, experiments_text):
        cited = set(re.findall(r"\(`([a-z0-9_]+)`\)", experiments_text))
        unknown = cited - set(ALL_EXPERIMENTS)
        assert not unknown, f"EXPERIMENTS.md cites unknown experiments: {unknown}"


class TestReadmeConsistency:
    def test_example_table_matches_directory(self):
        readme = (ROOT / "README.md").read_text()
        for path in (ROOT / "examples").glob("*.py"):
            assert f"`{path.name}`" in readme, f"{path.name} missing from README"

    def test_experiment_count_current(self):
        readme = (ROOT / "README.md").read_text()
        match = re.search(r"# (\d+) experiment ids", readme)
        assert match, "README should state the experiment count"
        assert int(match.group(1)) == len(ALL_EXPERIMENTS)

    def test_api_doc_lists_every_experiment(self):
        api = (ROOT / "docs" / "API.md").read_text()
        missing = [name for name in ALL_EXPERIMENTS if f"`{name}`" not in api]
        assert not missing, f"experiments missing from docs/API.md: {missing}"
