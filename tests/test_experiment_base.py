"""Unit tests for the experiment result types and rendering."""

import pytest

from repro.experiments.base import FigureResult, Series, TableResult, format_value


class TestFormatValue:
    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_small_float_three_places(self):
        assert format_value(0.1234) == "0.123"

    def test_large_float_one_place(self):
        assert format_value(143.21) == "143.2"

    def test_string(self):
        assert format_value("ccom") == "ccom"

    def test_width_right_aligns(self):
        assert format_value(7, width=4) == "   7"


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            Series("s", [1, 2], [1.0])

    def test_point_lookup(self):
        series = Series("s", [1, 2, 4], [10.0, 20.0, 40.0])
        assert series.point(2) == 20.0

    def test_point_missing(self):
        with pytest.raises(KeyError):
            Series("s", [1], [1.0]).point(99)


@pytest.fixture
def table():
    return TableResult(
        experiment_id="t",
        title="demo",
        headers=["program", "value"],
        rows=[["ccom", 1.5], ["grr", 2]],
        notes=["a note"],
    )


class TestTableResult:
    def test_column(self, table):
        assert table.column("value") == [1.5, 2]

    def test_column_missing(self, table):
        with pytest.raises(ValueError):
            table.column("nope")

    def test_row_by_key(self, table):
        assert table.row_by_key("grr") == ["grr", 2]

    def test_row_by_key_missing(self, table):
        with pytest.raises(KeyError):
            table.row_by_key("zzz")

    def test_render_contains_everything(self, table):
        text = table.render()
        assert "demo" in text
        assert "ccom" in text
        assert "1.500" in text
        assert "note: a note" in text
        # header separator present
        assert "---" in text


@pytest.fixture
def figure():
    return FigureResult(
        experiment_id="f",
        title="fig",
        xlabel="x",
        ylabel="y",
        series=[Series("a", [1, 2], [1.0, 2.0]), Series("b", [1, 2], [3.0, 4.0])],
    )


class TestFigureResult:
    def test_get(self, figure):
        assert figure.get("b").y == [3.0, 4.0]

    def test_get_missing(self, figure):
        with pytest.raises(KeyError):
            figure.get("zzz")

    def test_labels(self, figure):
        assert figure.labels == ["a", "b"]

    def test_as_table_transposes(self, figure):
        table = figure.as_table()
        assert table.headers == ["x", "a", "b"]
        assert table.rows[0] == [1, 1.0, 3.0]
        assert table.rows[1] == [2, 2.0, 4.0]

    def test_render_mentions_ylabel(self, figure):
        assert "ylabel: y" in figure.render()

    def test_empty_series_list(self):
        figure = FigureResult("f", "t", "x", "y", series=[])
        assert figure.as_table().rows == []
