"""Tests for the user-configurable CustomWorkload builder."""

import pytest

from repro.common.config import CacheConfig
from repro.common.errors import ConfigurationError
from repro.experiments.runner import run_level
from repro.hierarchy.system import MemorySystem
from repro.traces.synthetic.custom import CustomWorkload

CONFIG = CacheConfig(4096, 16)


def build(**kwargs):
    defaults = dict(instructions=8_000)
    defaults.update(kwargs)
    return CustomWorkload(**defaults).build().materialize()


class TestValidation:
    def test_rejects_zero_instructions(self):
        with pytest.raises(ConfigurationError):
            CustomWorkload(instructions=0)

    def test_rejects_bad_call_intensity(self):
        with pytest.raises(ConfigurationError):
            CustomWorkload(call_intensity=1.5)

    def test_rejects_fractions_over_one(self):
        with pytest.raises(ConfigurationError):
            CustomWorkload(sequential_fraction=0.6, pointer_fraction=0.6)

    def test_rejects_negative_fraction(self):
        with pytest.raises(ConfigurationError):
            CustomWorkload(conflict_fraction=-0.1)

    def test_rejects_tiny_working_set(self):
        with pytest.raises(ConfigurationError):
            CustomWorkload(data_working_set=64)


class TestBasicShape:
    def test_instruction_count(self):
        trace = build()
        assert trace.stats().instructions == 8_000

    def test_data_ratio(self):
        trace = build(data_per_instr=0.5)
        assert trace.stats().data_per_instruction == pytest.approx(0.5, abs=0.01)

    def test_deterministic_per_seed(self):
        assert list(build(seed=3)) == list(build(seed=3))
        assert list(build(seed=3)) != list(build(seed=4))

    def test_metadata_describes_config(self):
        trace = build(sequential_fraction=0.3)
        assert "seq 0.30" in trace.meta.description

    def test_all_data_fractions_zero_still_runs(self):
        trace = build(
            sequential_fraction=0.0, conflict_fraction=0.0, pointer_fraction=0.0
        )
        assert trace.stats().data_references > 0


class TestKnobsSteerBehaviour:
    def test_small_code_footprint_means_no_imisses(self):
        trace = build(code_footprint=512)
        result = MemorySystem().run(trace)
        assert result.imiss_rate < 0.01

    def test_bigger_code_footprint_more_imisses(self):
        small = MemorySystem().run(build(code_footprint=8 * 1024)).imiss_rate
        large = MemorySystem().run(build(code_footprint=96 * 1024)).imiss_rate
        assert large > small

    def test_bigger_working_set_more_dmisses(self):
        small = MemorySystem().run(
            build(data_working_set=4 * 1024, sequential_fraction=0.4)
        ).dmiss_rate
        large = MemorySystem().run(
            build(data_working_set=512 * 1024, sequential_fraction=0.4)
        ).dmiss_rate
        assert large > small

    def test_conflict_fraction_feeds_the_victim_cache(self):
        from repro.buffers.victim_cache import VictimCache

        trace = build(conflict_fraction=0.2, instructions=15_000)
        addresses = trace.data_addresses
        baseline = run_level(addresses, CONFIG)
        helped = run_level(addresses, CONFIG, VictimCache(4))
        assert helped.removed > 0.3 * baseline.misses

    def test_sequential_fraction_feeds_the_stream_buffer(self):
        from repro.buffers.stream_buffer import StreamBuffer

        trace = build(
            sequential_fraction=0.5,
            conflict_fraction=0.0,
            pointer_fraction=0.0,
            data_working_set=512 * 1024,
            instructions=15_000,
        )
        addresses = trace.data_addresses
        baseline = run_level(addresses, CONFIG)
        helped = run_level(addresses, CONFIG, StreamBuffer(4))
        assert helped.removed > 0.5 * baseline.misses
