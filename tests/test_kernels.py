"""Backend equivalence and dispatch: the vectorized kernels vs the interpreter.

The numpy backend is only allowed to exist because it is *exactly* the
reference simulator, faster: every test here pins identical statistics —
every LevelStats counter, every 3C classification bucket, warm-up
semantics included — between :mod:`repro.kernels.numpy_backend` and the
interpreter, on randomized synthetic streams and on all seven named
workloads.  Dispatch tests pin the selection rules: stateful structures
always fall back to the interpreter (never an error), ``REPRO_BACKEND``
is validated at the CLI boundary, and a numpy request on a machine
without numpy degrades with a one-time recorded warning.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.common.config import CacheConfig, baseline_system
from repro.common.errors import ConfigurationError
from repro.experiments.runner import run_level, run_system
from repro.kernels import (
    AUTO,
    ENV_BACKEND,
    NUMPY,
    PYTHON,
    KernelFallbackWarning,
    _reset_probe_for_tests,
    default_backend,
    disqualification,
    numpy_available,
    qualifies,
    select_backend,
    validate_backend,
)
from repro.specs import SystemSpec, TraceSpec, VictimCacheSpec
from repro.telemetry import core as telemetry
from repro.traces.registry import BENCHMARK_NAMES, EXTENSION_NAMES, build_trace

np = None
if numpy_available():
    import numpy as np

needs_numpy = pytest.mark.skipif(np is None, reason="numpy not installed")

#: All seven named workloads: the paper's six plus the extensions.
ALL_NAMES = BENCHMARK_NAMES + EXTENSION_NAMES


def qualifying_spec(**overrides) -> SystemSpec:
    defaults = dict(
        trace=TraceSpec("linpack", 3000, 0), config=baseline_system(), side="d"
    )
    defaults.update(overrides)
    return SystemSpec(**defaults)


# -- equivalence: single level ------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize("side", ["i", "d"])
def test_named_trace_level_equivalence(name, side):
    """Identical stats and 3C totals on every named workload, both sides."""
    from repro.kernels.numpy_backend import simulate_level, stream_array

    trace = build_trace(name, 3000).materialize()
    config = CacheConfig(4096, 16)
    addresses = trace.stream(side)
    reference = run_level(addresses, config, classify=True, warmup=500)
    kernel = simulate_level(
        stream_array(trace, side), config, classify=True, warmup=500
    )
    assert kernel.stats.as_dict() == reference.stats.as_dict()
    assert kernel.classification == reference.classifier.summary()
    assert kernel.conflicts == reference.conflicts


@needs_numpy
def test_randomized_level_equivalence():
    """Property-style: random streams, geometries, and warm-up boundaries."""
    from repro.kernels.numpy_backend import simulate_level

    rng = random.Random(1234)
    for case in range(25):
        n = rng.randrange(0, 700)
        span = rng.choice([40, 300, 5000])
        addresses = [rng.randrange(span) * 4 for _ in range(n)]
        config = CacheConfig(
            rng.choice([256, 1024, 4096]), rng.choice([16, 32])
        )
        warmup = rng.choice([0, 1, max(1, n // 2), n, n + 7])
        reference = run_level(addresses, config, classify=True, warmup=warmup)
        kernel = simulate_level(addresses, config, classify=True, warmup=warmup)
        assert kernel.stats.as_dict() == reference.stats.as_dict(), (case, warmup)
        assert kernel.classification == reference.classifier.summary(), (case, warmup)


@needs_numpy
def test_rank_left_leq_matches_brute_force():
    from repro.kernels.numpy_backend import _rank_left_leq

    rng = random.Random(7)
    for _ in range(20):
        n = rng.randrange(1, 120)
        values = np.array([rng.randrange(20) for _ in range(n)], dtype=np.int64)
        expected = np.array(
            [int(sum(values[j] <= values[i] for j in range(i))) for i in range(n)]
        )
        assert (_rank_left_leq(values) == expected).all()


@needs_numpy
def test_lru_shadow_matches_live_cache():
    from repro.caches.fully_associative import FullyAssociativeCache
    from repro.kernels.numpy_backend import lru_shadow_hit_mask

    rng = random.Random(99)
    for capacity in (1, 4, 16):
        lines = np.array([rng.randrange(40) for _ in range(400)], dtype=np.int64)
        live = FullyAssociativeCache(capacity)
        expected = [bool(live.access_and_fill(int(line))) for line in lines]
        assert lru_shadow_hit_mask(lines, capacity).tolist() == expected


# -- equivalence: full system -------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("prewarm", [False, True])
def test_system_equivalence(small_suite, prewarm):
    from repro.kernels.numpy_backend import simulate_system

    trace = small_suite[0]  # ccom: mixed instruction/data stream
    reference = run_system(trace, classify=True, prewarm_l2=prewarm)
    kernel = simulate_system(trace, classify=True, prewarm_l2=prewarm)
    result = kernel.result
    assert result.istats.as_dict() == reference.istats.as_dict()
    assert result.dstats.as_dict() == reference.dstats.as_dict()
    assert result.l2stats.as_dict() == reference.l2stats.as_dict()
    assert result.total_references == reference.total_references


# -- equivalence: through the engine ------------------------------------------


@needs_numpy
def test_run_jobs_identical_across_backends(monkeypatch):
    """The same batch returns identical summaries on both backends."""
    from repro.experiments.engine import LevelJob, run_jobs

    jobs = [
        LevelJob(qualifying_spec(side="i", classify=True, warmup=200)),
        LevelJob(qualifying_spec(side="d")),
    ]
    monkeypatch.setenv(ENV_BACKEND, "python")
    python_results = run_jobs(jobs)
    monkeypatch.setenv(ENV_BACKEND, "numpy")
    numpy_results = run_jobs(jobs)
    assert numpy_results == python_results


# -- packed-trace views -------------------------------------------------------


@needs_numpy
def test_as_arrays_zero_copy_and_readonly(small_suite):
    trace = small_suite[0]
    kinds, addresses = trace.as_arrays()
    assert len(kinds) == len(addresses) == len(trace)
    # Zero-copy: the views alias the packed buffers...
    assert addresses.base is not None
    # ...and are frozen so kernels cannot mutate the trace through them.
    assert not kinds.flags.writeable and not addresses.flags.writeable
    with pytest.raises(ValueError):
        addresses[0] = 1
    assert trace.as_arrays() is trace.as_arrays()


@needs_numpy
def test_stream_array_matches_list_streams(small_suite):
    trace = small_suite[0]
    for side in ("i", "d"):
        assert trace.stream_array(side).tolist() == trace.stream(side)
        assert not trace.stream_array(side).flags.writeable
        assert trace.stream_array(side) is trace.stream_array(side)
    with pytest.raises(ValueError):
        trace.stream_array("x")


def test_select_without_numpy_matches_vectorized(small_suite, monkeypatch):
    """The translate/compress fallback extracts the same streams."""
    from repro.traces import packed

    trace = small_suite[1]
    expected_i = trace.stream("i")
    expected_d = trace.stream("d")
    fallback = packed.PackedTrace(trace.meta, trace._kinds, trace._addresses)
    monkeypatch.setattr(packed, "_numpy", lambda: None)
    assert fallback.stream("i") == expected_i
    assert fallback.stream("d") == expected_d


# -- dispatch -----------------------------------------------------------------


def test_stateful_structures_fall_back():
    spec = qualifying_spec(structure=VictimCacheSpec(entries=4))
    assert not qualifies(spec)
    assert "victim" in disqualification(spec)
    # Never an error — even under an explicit numpy request.
    assert select_backend(spec, requested=NUMPY) == PYTHON


def test_structure_free_spec_qualifies():
    spec = qualifying_spec(classify=True, warmup=100)
    assert qualifies(spec)
    assert disqualification(spec) is None
    assert select_backend(spec, requested=PYTHON) == PYTHON
    if numpy_available():
        assert select_backend(spec) in (NUMPY, PYTHON)
        assert select_backend(spec, requested=NUMPY) == NUMPY


def test_non_spec_is_disqualified():
    assert not qualifies(object())
    assert select_backend(object(), requested=NUMPY) == PYTHON


def test_validate_backend_rejects_malformed():
    assert validate_backend(AUTO) == AUTO
    with pytest.raises(ConfigurationError):
        validate_backend("fortran")


def test_default_backend_env(monkeypatch):
    monkeypatch.delenv(ENV_BACKEND, raising=False)
    assert default_backend() == AUTO
    monkeypatch.setenv(ENV_BACKEND, "numpy")
    assert default_backend() == NUMPY
    monkeypatch.setenv(ENV_BACKEND, "bogus")
    with pytest.raises(ConfigurationError):
        default_backend()


def test_cli_backend_validation(monkeypatch, capsys):
    from repro.experiments.cli import main

    import os

    monkeypatch.setenv(ENV_BACKEND, "auto")  # registers teardown restore
    assert main(["--backend", "bogus", "--list"]) == 2
    assert "backend" in capsys.readouterr().err
    # A valid value propagates through the environment for workers.
    assert main(["--backend", "python", "--list"]) == 0
    assert os.environ.get(ENV_BACKEND) == "python"


def test_numpy_unavailable_degrades_with_one_warning(monkeypatch):
    """Simulated missing numpy: python backend, one recorded warning."""
    monkeypatch.delenv(ENV_BACKEND, raising=False)
    spec = qualifying_spec()
    _reset_probe_for_tests((False, "numpy is not importable (simulated)"))
    try:
        # auto: silent fallback, no warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert select_backend(spec) == PYTHON
        # explicit numpy request: warns once, recorded in telemetry.
        with telemetry.scoped() as scope:
            with pytest.warns(KernelFallbackWarning, match="simulated"):
                assert select_backend(spec, requested=NUMPY) == PYTHON
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # second request: already warned
                assert select_backend(spec, requested=NUMPY) == PYTHON
        assert any(event.component == "kernels" for event in scope.fallbacks)
    finally:
        _reset_probe_for_tests()


def test_kernels_package_imports_without_numpy():
    """The dispatch layer itself must never require numpy."""
    import repro.kernels as kernels

    # numpy only ever enters through the lazy probe, not at import time.
    assert "numpy" not in vars(kernels)
    assert select_backend(qualifying_spec(), requested=PYTHON) == PYTHON


# -- telemetry surfacing ------------------------------------------------------


def test_job_progress_renders_backend():
    progress = telemetry.JobProgress(3, 8, 1.5, backend="numpy")
    assert "[numpy]" in str(progress)
    assert "[" not in str(telemetry.JobProgress(3, 8, 1.5))


def test_backend_counts_reach_run_record(monkeypatch):
    from repro.experiments.engine import LevelJob, run_jobs
    from repro.telemetry.record import build_run_record, validate_record

    monkeypatch.delenv(ENV_BACKEND, raising=False)
    jobs = [
        LevelJob(qualifying_spec(side="d")),
        LevelJob(qualifying_spec(side="d", structure=VictimCacheSpec(entries=4))),
    ]
    heartbeats = []
    with telemetry.scoped() as scope:
        run_jobs(jobs, progress=heartbeats.append)
        record = build_run_record(scope, "kernels-test", baseline_system(), 0.1)
    expected = {"numpy": 1, "python": 1} if numpy_available() else {"python": 2}
    assert scope.backend_jobs == expected
    assert record.backends == expected
    validate_record(record.as_dict())
    assert heartbeats[-1].backend
    round_tripped = type(record).from_dict(record.as_dict())
    assert round_tripped.backends == expected
