"""Backend equivalence and dispatch: the vectorized kernels vs the interpreter.

The numpy backend is only allowed to exist because it is *exactly* the
reference simulator, faster: every test here pins identical statistics —
every LevelStats counter, every 3C classification bucket, every sweep
bucket, warm-up semantics included — between
:mod:`repro.kernels.numpy_backend` / :mod:`repro.kernels.assist` and the
interpreter, on randomized synthetic streams, on all seven named
workloads, and on the pattern workload specs.  Dispatch tests pin the
selection rules: every registered structure kind has a kernel mode
(``vector`` or ``miss-replay``, per :func:`repro.kernels.kernel_mode`),
undescribable inputs fall back to the interpreter (never an error) with
*all* disqualifying reasons named, ``REPRO_BACKEND`` is validated at the
CLI boundary, and a numpy request on a machine without numpy degrades
with a one-time recorded warning.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.common.config import CacheConfig, baseline_system
from repro.common.errors import ConfigurationError
from repro.experiments.runner import run_level, run_system
from repro.kernels import (
    AUTO,
    ENV_BACKEND,
    MISS_REPLAY,
    NUMPY,
    PYTHON,
    VECTOR,
    KernelFallbackWarning,
    _reset_probe_for_tests,
    default_backend,
    disqualification,
    disqualifications,
    kernel_mode,
    numpy_available,
    qualifies,
    select_backend,
    structure_mode,
    validate_backend,
)
from repro.specs import (
    MissCacheSpec,
    MultiWayStreamBufferSpec,
    StreamBufferSpec,
    SystemSpec,
    TraceSpec,
    VictimCacheSpec,
)
from repro.specs.structures import (
    CompositeSpec,
    MultiWayStrideBufferSpec,
    StrideBufferSpec,
)
from repro.specs.workloads import HotspotSpec, PointerChaseSpec, ZipfianSpec
from repro.telemetry import core as telemetry
from repro.traces.registry import BENCHMARK_NAMES, EXTENSION_NAMES, build_trace

np = None
if numpy_available():
    import numpy as np

needs_numpy = pytest.mark.skipif(np is None, reason="numpy not installed")

#: All seven named workloads: the paper's six plus the extensions.
ALL_NAMES = BENCHMARK_NAMES + EXTENSION_NAMES


def qualifying_spec(**overrides) -> SystemSpec:
    defaults = dict(
        trace=TraceSpec("linpack", 3000, 0), config=baseline_system(), side="d"
    )
    defaults.update(overrides)
    return SystemSpec(**defaults)


# -- equivalence: single level ------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("name", ALL_NAMES)
@pytest.mark.parametrize("side", ["i", "d"])
def test_named_trace_level_equivalence(name, side):
    """Identical stats and 3C totals on every named workload, both sides."""
    from repro.kernels.numpy_backend import simulate_level, stream_array

    trace = build_trace(name, 3000).materialize()
    config = CacheConfig(4096, 16)
    addresses = trace.stream(side)
    reference = run_level(addresses, config, classify=True, warmup=500)
    kernel = simulate_level(
        stream_array(trace, side), config, classify=True, warmup=500
    )
    assert kernel.stats.as_dict() == reference.stats.as_dict()
    assert kernel.classification == reference.classifier.summary()
    assert kernel.conflicts == reference.conflicts


@needs_numpy
def test_randomized_level_equivalence():
    """Property-style: random streams, geometries, and warm-up boundaries."""
    from repro.kernels.numpy_backend import simulate_level

    rng = random.Random(1234)
    for case in range(25):
        n = rng.randrange(0, 700)
        span = rng.choice([40, 300, 5000])
        addresses = [rng.randrange(span) * 4 for _ in range(n)]
        config = CacheConfig(
            rng.choice([256, 1024, 4096]), rng.choice([16, 32])
        )
        warmup = rng.choice([0, 1, max(1, n // 2), n, n + 7])
        reference = run_level(addresses, config, classify=True, warmup=warmup)
        kernel = simulate_level(addresses, config, classify=True, warmup=warmup)
        assert kernel.stats.as_dict() == reference.stats.as_dict(), (case, warmup)
        assert kernel.classification == reference.classifier.summary(), (case, warmup)


@needs_numpy
def test_rank_left_leq_matches_brute_force():
    from repro.kernels.numpy_backend import _rank_left_leq

    rng = random.Random(7)
    for _ in range(20):
        n = rng.randrange(1, 120)
        values = np.array([rng.randrange(20) for _ in range(n)], dtype=np.int64)
        expected = np.array(
            [int(sum(values[j] <= values[i] for j in range(i))) for i in range(n)]
        )
        assert (_rank_left_leq(values) == expected).all()


@needs_numpy
def test_lru_shadow_matches_live_cache():
    from repro.caches.fully_associative import FullyAssociativeCache
    from repro.kernels.numpy_backend import lru_shadow_hit_mask

    rng = random.Random(99)
    for capacity in (1, 4, 16):
        lines = np.array([rng.randrange(40) for _ in range(400)], dtype=np.int64)
        live = FullyAssociativeCache(capacity)
        expected = [bool(live.access_and_fill(int(line))) for line in lines]
        assert lru_shadow_hit_mask(lines, capacity).tolist() == expected


@needs_numpy
def test_rank_left_leq_with_thresholds_matches_brute_force():
    from repro.kernels.numpy_backend import _rank_left_leq

    rng = random.Random(21)
    for _ in range(20):
        n = rng.randrange(2, 120)
        values = np.array([rng.randrange(25) for _ in range(n)], dtype=np.int64)
        thresholds = np.array(
            [rng.randrange(-1, int(values.max()) + 1) for _ in range(n)],
            dtype=np.int64,
        )
        queries = np.array(
            sorted(rng.sample(range(n), rng.randrange(1, n + 1))), dtype=np.int64
        )
        got = _rank_left_leq(values, queries=queries, thresholds=thresholds)
        for q in queries.tolist():
            expected = int(sum(values[j] <= thresholds[q] for j in range(q)))
            assert got[q] == expected


# -- equivalence: assist structures over the miss stream ----------------------

#: Every registered structure kind, both kernel modes, edge options.
ASSIST_SPECS = [
    MissCacheSpec(entries=1),
    MissCacheSpec(entries=4),
    MissCacheSpec(entries=4, policy="fifo"),
    VictimCacheSpec(entries=1),
    VictimCacheSpec(entries=4),
    VictimCacheSpec(entries=4, swap_on_hit=False),
    StreamBufferSpec(entries=4),
    StreamBufferSpec(entries=1, max_run=3),
    StreamBufferSpec(entries=4, max_run=16),
    StreamBufferSpec(entries=4, model_availability=True),
    StreamBufferSpec(entries=4, allocation_filter=True),
    StreamBufferSpec(entries=4, head_only=False),
    MultiWayStreamBufferSpec(ways=4, entries=4),
    MultiWayStreamBufferSpec(ways=2, entries=3, model_availability=True),
    StrideBufferSpec(entries=4),
    MultiWayStrideBufferSpec(ways=2, entries=4),
    CompositeSpec(
        members=(
            VictimCacheSpec(entries=4),
            MultiWayStreamBufferSpec(ways=4, entries=4),
        )
    ),
]


def _assert_assist_equivalent(addresses, config, spec, warmup=0, context=()):
    from repro.kernels.assist import simulate_assist_level
    from repro.specs.structures import build

    reference = run_level(
        addresses, config, augmentation=build(spec), classify=True, warmup=warmup
    )
    kernel = simulate_assist_level(
        addresses, config, spec, classify=True, warmup=warmup
    )
    label = (*context, spec)
    assert kernel.stats.as_dict() == reference.stats.as_dict(), label
    assert kernel.classification == reference.classifier.summary(), label


@needs_numpy
@pytest.mark.parametrize("spec", ASSIST_SPECS, ids=lambda s: s.to_json())
def test_randomized_assist_equivalence(spec):
    """Every LevelStats counter identical on randomized streams.

    Mixed random/sequential streams exercise both stream-buffer chains
    and cache-conflict churn; small geometries maximize miss density.
    """
    rng = random.Random(hash(spec.to_json()) & 0xFFFF)
    for case in range(6):
        n = rng.choice([0, 1, 2, 120, 1500])
        span = rng.choice([30, 200, 4000])
        addresses = []
        cursor = 0
        for _ in range(n):
            if rng.random() < 0.4:
                cursor = rng.randrange(span)
            addresses.append(cursor * 16)
            cursor += 1
        config = CacheConfig(rng.choice([512, 4096]), 16)
        warmup = rng.choice([0, 13, n, n + 5])
        _assert_assist_equivalent(
            addresses, config, spec, warmup, context=(case, n, span, warmup)
        )


@needs_numpy
@pytest.mark.parametrize("name", ALL_NAMES)
def test_named_trace_assist_equivalence(name):
    """Identical stats on every named workload for one spec per mode."""
    trace = build_trace(name, 3000).materialize()
    config = CacheConfig(4096, 16)
    addresses = trace.stream("d")
    for spec in (
        MissCacheSpec(entries=4),
        VictimCacheSpec(entries=4),
        StreamBufferSpec(entries=4),
        MultiWayStreamBufferSpec(ways=4, entries=4),
    ):
        _assert_assist_equivalent(addresses, config, spec, 500, context=(name,))


@needs_numpy
@pytest.mark.parametrize(
    "workload",
    [
        ZipfianSpec(length=2500, keys=600, seed=3),
        HotspotSpec(length=2500, working_set=16384, seed=3),
        PointerChaseSpec(length=2500, nodes=512, seed=3),
    ],
    ids=lambda w: w.kind,
)
def test_pattern_workload_assist_equivalence(workload):
    """The modern pattern workloads agree too, at several capacities."""
    trace = workload.trace()
    config = CacheConfig(4096, 16)
    addresses = trace.stream("d")
    for entries in (1, 2, 8):
        _assert_assist_equivalent(
            addresses, config, VictimCacheSpec(entries=entries), 200
        )
        _assert_assist_equivalent(
            addresses, config, MissCacheSpec(entries=entries), 200
        )
    _assert_assist_equivalent(addresses, config, StreamBufferSpec(entries=4), 200)


@needs_numpy
def test_one_pass_entry_sweep_matches_per_capacity_runs():
    """The single rank pass equals one full simulation per capacity."""
    from repro.experiments.sweeps import miss_cache_sweep, victim_cache_sweep
    from repro.kernels.assist import entry_sweep, simulate_assist_level
    from repro.specs.structures import MissCacheSpec as MC
    from repro.specs.structures import VictimCacheSpec as VC

    trace = build_trace("ccom", 2500).materialize()
    config = CacheConfig(2048, 16)
    addresses = trace.stream("d")
    for kind, sweep_fn, spec_cls in (
        ("miss", miss_cache_sweep, MC),
        ("victim", victim_cache_sweep, VC),
    ):
        reference = sweep_fn(addresses, config, max_entries=10)
        kernel = entry_sweep(addresses, config, kind, 10)
        assert kernel.total_misses == reference.total_misses
        assert kernel.conflict_misses == reference.conflict_misses
        assert kernel.hits_by_entries == reference.hits_by_entries
        # ...and each sweep bucket equals an independent capacity-k run.
        for k in (1, 5, 10):
            run = simulate_assist_level(addresses, config, spec_cls(entries=k))
            assert kernel.hits_by_entries[k] == run.stats.removed_misses, (kind, k)


@needs_numpy
@pytest.mark.parametrize("ways", [1, 4])
def test_run_length_sweep_equivalence(ways):
    from repro.experiments.sweeps import stream_buffer_run_sweep
    from repro.kernels.assist import run_length_sweep

    trace = build_trace("linpack", 2500).materialize()
    config = CacheConfig(2048, 16)
    addresses = trace.stream("d")
    reference = stream_buffer_run_sweep(
        addresses, config, ways=ways, entries=4, max_run=12
    )
    kernel = run_length_sweep(addresses, config, ways=ways, entries=4, max_run=12)
    assert kernel.total_misses == reference.total_misses
    assert kernel.removed_by_run == reference.removed_by_run


@needs_numpy
def test_sweep_jobs_identical_across_backends(monkeypatch):
    """Entry/run sweep jobs return identical results on both backends."""
    from repro.experiments.engine import EntrySweepJob, RunSweepJob, run_jobs

    jobs = [
        EntrySweepJob(qualifying_spec(), kind="miss", max_entries=6),
        EntrySweepJob(qualifying_spec(), kind="victim", max_entries=6),
        RunSweepJob(qualifying_spec(), ways=1, entries=4, max_run=8),
        RunSweepJob(qualifying_spec(), ways=4, entries=4, max_run=8),
    ]
    monkeypatch.setenv(ENV_BACKEND, "python")
    python_results = run_jobs(jobs)
    monkeypatch.setenv(ENV_BACKEND, "numpy")
    numpy_results = run_jobs(jobs)
    for py, vec, job in zip(python_results, numpy_results, jobs):
        assert py.__dict__ == vec.__dict__, job


@needs_numpy
def test_assist_jobs_identical_across_backends(monkeypatch):
    """Structure-carrying LevelJobs agree end to end through run_jobs."""
    from repro.experiments.engine import LevelJob, run_jobs

    jobs = [
        LevelJob(qualifying_spec(structure=VictimCacheSpec(entries=4), warmup=300)),
        LevelJob(
            qualifying_spec(
                structure=MultiWayStreamBufferSpec(ways=4, entries=4), classify=True
            )
        ),
        LevelJob(
            qualifying_spec(
                structure=StreamBufferSpec(entries=4, model_availability=True)
            )
        ),
    ]
    monkeypatch.setenv(ENV_BACKEND, "python")
    python_results = run_jobs(jobs)
    monkeypatch.setenv(ENV_BACKEND, "numpy")
    numpy_results = run_jobs(jobs)
    assert numpy_results == python_results


# -- equivalence: full system -------------------------------------------------


@needs_numpy
@pytest.mark.parametrize("prewarm", [False, True])
def test_system_equivalence(small_suite, prewarm):
    from repro.kernels.numpy_backend import simulate_system

    trace = small_suite[0]  # ccom: mixed instruction/data stream
    reference = run_system(trace, classify=True, prewarm_l2=prewarm)
    kernel = simulate_system(trace, classify=True, prewarm_l2=prewarm)
    result = kernel.result
    assert result.istats.as_dict() == reference.istats.as_dict()
    assert result.dstats.as_dict() == reference.dstats.as_dict()
    assert result.l2stats.as_dict() == reference.l2stats.as_dict()
    assert result.total_references == reference.total_references


# -- equivalence: through the engine ------------------------------------------


@needs_numpy
def test_run_jobs_identical_across_backends(monkeypatch):
    """The same batch returns identical summaries on both backends."""
    from repro.experiments.engine import LevelJob, run_jobs

    jobs = [
        LevelJob(qualifying_spec(side="i", classify=True, warmup=200)),
        LevelJob(qualifying_spec(side="d")),
    ]
    monkeypatch.setenv(ENV_BACKEND, "python")
    python_results = run_jobs(jobs)
    monkeypatch.setenv(ENV_BACKEND, "numpy")
    numpy_results = run_jobs(jobs)
    assert numpy_results == python_results


# -- packed-trace views -------------------------------------------------------


@needs_numpy
def test_as_arrays_zero_copy_and_readonly(small_suite):
    trace = small_suite[0]
    kinds, addresses = trace.as_arrays()
    assert len(kinds) == len(addresses) == len(trace)
    # Zero-copy: the views alias the packed buffers...
    assert addresses.base is not None
    # ...and are frozen so kernels cannot mutate the trace through them.
    assert not kinds.flags.writeable and not addresses.flags.writeable
    with pytest.raises(ValueError):
        addresses[0] = 1
    assert trace.as_arrays() is trace.as_arrays()


@needs_numpy
def test_stream_array_matches_list_streams(small_suite):
    trace = small_suite[0]
    for side in ("i", "d"):
        assert trace.stream_array(side).tolist() == trace.stream(side)
        assert not trace.stream_array(side).flags.writeable
        assert trace.stream_array(side) is trace.stream_array(side)
    with pytest.raises(ValueError):
        trace.stream_array("x")


def test_select_without_numpy_matches_vectorized(small_suite, monkeypatch):
    """The translate/compress fallback extracts the same streams."""
    from repro.traces import packed

    trace = small_suite[1]
    expected_i = trace.stream("i")
    expected_d = trace.stream("d")
    fallback = packed.PackedTrace(trace.meta, trace._kinds, trace._addresses)
    monkeypatch.setattr(packed, "_numpy", lambda: None)
    assert fallback.stream("i") == expected_i
    assert fallback.stream("d") == expected_d


# -- dispatch -----------------------------------------------------------------


@pytest.mark.parametrize(
    "structure,mode",
    [
        (None, VECTOR),
        (MissCacheSpec(entries=4), VECTOR),
        (MissCacheSpec(entries=4, policy="fifo"), MISS_REPLAY),
        (VictimCacheSpec(entries=4), VECTOR),
        (VictimCacheSpec(entries=4, swap_on_hit=False), MISS_REPLAY),
        (VictimCacheSpec(entries=4, policy="fifo"), MISS_REPLAY),
        (StreamBufferSpec(entries=4), VECTOR),
        (StreamBufferSpec(entries=4, max_run=8), VECTOR),
        (StreamBufferSpec(entries=4, model_availability=True), MISS_REPLAY),
        (StreamBufferSpec(entries=4, allocation_filter=True), MISS_REPLAY),
        (StreamBufferSpec(entries=4, head_only=False), MISS_REPLAY),
        (MultiWayStreamBufferSpec(ways=4, entries=4), MISS_REPLAY),
        (StrideBufferSpec(entries=4), MISS_REPLAY),
        (MultiWayStrideBufferSpec(ways=2, entries=4), MISS_REPLAY),
        (
            CompositeSpec(
                members=(
                    VictimCacheSpec(entries=4),
                    MultiWayStreamBufferSpec(ways=4, entries=4),
                )
            ),
            MISS_REPLAY,
        ),
    ],
)
def test_every_registered_structure_has_a_mode(structure, mode):
    """The mode table: every registered structure kind now qualifies."""
    assert structure_mode(structure) == mode
    spec = qualifying_spec(structure=structure)
    assert qualifies(spec)
    assert disqualification(spec) is None
    assert kernel_mode(spec) == mode
    if numpy_available():
        assert select_backend(spec, requested=NUMPY) == NUMPY


def test_unregistered_structure_disqualifies():
    class Mystery:
        kind = "mystery"

    spec = qualifying_spec(structure=None)
    object.__setattr__(spec, "structure", Mystery())
    assert not qualifies(spec)
    assert structure_mode(Mystery()) is None
    assert kernel_mode(spec) is None
    assert "Mystery" in disqualification(spec)
    # Never an error — even under an explicit numpy request.
    assert select_backend(spec, requested=NUMPY) == PYTHON


def test_disqualification_reports_all_reasons():
    """A composite with several unsupported members names each of them."""

    class Left:
        kind = "left_mystery"

    class Right:
        kind = "right_mystery"

    composite = CompositeSpec(
        members=(VictimCacheSpec(entries=4), VictimCacheSpec(entries=2))
    )
    object.__setattr__(composite, "members", (Left(), Right()))
    spec = qualifying_spec(structure=composite)
    reasons = disqualifications(spec)
    assert len(reasons) == 2
    assert any("left_mystery" in reason for reason in reasons)
    assert any("right_mystery" in reason for reason in reasons)
    joined = disqualification(spec)
    assert "left_mystery" in joined and "right_mystery" in joined
    assert select_backend(spec, requested=NUMPY) == PYTHON


def test_structure_free_spec_qualifies():
    spec = qualifying_spec(classify=True, warmup=100)
    assert qualifies(spec)
    assert disqualification(spec) is None
    assert select_backend(spec, requested=PYTHON) == PYTHON
    if numpy_available():
        assert select_backend(spec) in (NUMPY, PYTHON)
        assert select_backend(spec, requested=NUMPY) == NUMPY


def test_non_spec_is_disqualified():
    assert not qualifies(object())
    assert select_backend(object(), requested=NUMPY) == PYTHON


def test_validate_backend_rejects_malformed():
    assert validate_backend(AUTO) == AUTO
    with pytest.raises(ConfigurationError):
        validate_backend("fortran")


def test_default_backend_env(monkeypatch):
    monkeypatch.delenv(ENV_BACKEND, raising=False)
    assert default_backend() == AUTO
    monkeypatch.setenv(ENV_BACKEND, "numpy")
    assert default_backend() == NUMPY
    monkeypatch.setenv(ENV_BACKEND, "bogus")
    with pytest.raises(ConfigurationError):
        default_backend()


def test_cli_backend_validation(monkeypatch, capsys):
    from repro.experiments.cli import main

    import os

    monkeypatch.setenv(ENV_BACKEND, "auto")  # registers teardown restore
    assert main(["--backend", "bogus", "--list"]) == 2
    assert "backend" in capsys.readouterr().err
    # A valid value propagates through the environment for workers.
    assert main(["--backend", "python", "--list"]) == 0
    assert os.environ.get(ENV_BACKEND) == "python"


def test_numpy_unavailable_degrades_with_one_warning(monkeypatch):
    """Simulated missing numpy: python backend, one recorded warning."""
    monkeypatch.delenv(ENV_BACKEND, raising=False)
    spec = qualifying_spec()
    _reset_probe_for_tests((False, "numpy is not importable (simulated)"))
    try:
        # auto: silent fallback, no warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert select_backend(spec) == PYTHON
        # explicit numpy request: warns once, recorded in telemetry.
        with telemetry.scoped() as scope:
            with pytest.warns(KernelFallbackWarning, match="simulated"):
                assert select_backend(spec, requested=NUMPY) == PYTHON
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # second request: already warned
                assert select_backend(spec, requested=NUMPY) == PYTHON
        assert any(event.component == "kernels" for event in scope.fallbacks)
    finally:
        _reset_probe_for_tests()


def test_kernels_package_imports_without_numpy():
    """The dispatch layer itself must never require numpy."""
    import repro.kernels as kernels

    # numpy only ever enters through the lazy probe, not at import time.
    assert "numpy" not in vars(kernels)
    assert select_backend(qualifying_spec(), requested=PYTHON) == PYTHON


# -- telemetry surfacing ------------------------------------------------------


def test_job_progress_renders_backend():
    progress = telemetry.JobProgress(3, 8, 1.5, backend="numpy")
    assert "[numpy]" in str(progress)
    assert "[" not in str(telemetry.JobProgress(3, 8, 1.5))


def test_backend_counts_reach_run_record(monkeypatch):
    from repro.experiments.engine import LevelJob, run_jobs
    from repro.telemetry.record import build_run_record, validate_record

    monkeypatch.delenv(ENV_BACKEND, raising=False)
    jobs = [
        LevelJob(qualifying_spec(side="d")),
        LevelJob(qualifying_spec(side="d", structure=VictimCacheSpec(entries=4))),
        LevelJob(
            qualifying_spec(
                side="d", structure=MultiWayStreamBufferSpec(ways=4, entries=4)
            )
        ),
    ]
    heartbeats = []
    with telemetry.scoped() as scope:
        run_jobs(jobs, progress=heartbeats.append)
        record = build_run_record(scope, "kernels-test", baseline_system(), 0.1)
    # Bare + victim cache vectorize; the multi-way buffer replays the
    # compressed miss stream and is labelled accordingly.
    expected = (
        {"numpy": 2, "miss-replay": 1} if numpy_available() else {"python": 3}
    )
    assert scope.backend_jobs == expected
    assert record.backends == expected
    validate_record(record.as_dict())
    assert heartbeats[-1].backend
    round_tripped = type(record).from_dict(record.as_dict())
    assert round_tripped.backends == expected
