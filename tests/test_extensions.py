"""Tests for the §5 extension experiments: matcol, stride, multiprogramming,
write policy, and the ASCII plotter."""

import pytest

from repro.experiments import ext_multiprog, ext_stride, ext_write_policy
from repro.experiments.base import FigureResult, Series
from repro.experiments.ext_multiprog import interleave_processes
from repro.experiments.plotting import plot_figure, render_ascii_chart
from repro.traces.registry import EXTENSION_NAMES, build_trace, get_workload


class TestMatcolWorkload:
    def test_registered_as_extension(self):
        assert "matcol" in EXTENSION_NAMES
        spec = get_workload("matcol")
        assert "stride" in spec.program_type

    def test_not_in_paper_suite(self):
        from repro.traces.registry import BENCHMARK_NAMES

        assert "matcol" not in BENCHMARK_NAMES

    def test_deterministic(self):
        a = list(build_trace("matcol", scale=600, seed=2))
        b = list(build_trace("matcol", scale=600, seed=2))
        assert a == b

    def test_column_sweep_is_non_unit_stride(self):
        from repro.traces.synthetic.matcol import ROW_BYTES, _column_major_sweep

        sweep = _column_major_sweep()
        first = next(sweep)
        second = next(sweep)
        assert second - first == ROW_BYTES
        assert ROW_BYTES // 16 >= 8  # many cache lines per step


class TestExtStride:
    @pytest.fixture(scope="class")
    def result(self, small_suite):
        return ext_stride.run(traces=small_suite, scale=4000)

    def test_matcol_row_first(self, result):
        assert result.rows[0][0] == "matcol (non-unit)"

    def test_stride_buffer_wins_on_matcol(self, result):
        row = result.rows[0]
        seq4, stride4 = row[3], row[5]
        assert stride4 > 2.5 * max(1.0, seq4)

    def test_stride_buffer_no_collapse_on_suite(self, result):
        for row in result.rows[1:]:
            seq1, stride1 = row[2], row[4]
            assert stride1 >= seq1 - 12.0, row[0]


class TestInterleaveProcesses:
    def test_round_robin_quanta(self):
        streams = [[1, 2, 3, 4], [10, 20, 30, 40]]
        out = interleave_processes(streams, quantum=2)
        base = 1 << 40
        assert out == [1, 2, base + 10, base + 20, 3, 4, base + 30, base + 40]

    def test_uneven_lengths_drain(self):
        streams = [[1], [10, 20, 30]]
        out = interleave_processes(streams, quantum=2)
        base = 1 << 40
        assert out == [1, base + 10, base + 20, base + 30]

    def test_address_spaces_disjoint(self):
        streams = [[0, 1], [0, 1], [0, 1]]
        out = interleave_processes(streams, quantum=10)
        assert len(set(out)) == 6

    def test_total_preserved(self, small_suite):
        streams = [t.data_addresses for t in small_suite[:2]]
        out = interleave_processes(streams, quantum=777)
        assert len(out) == sum(len(s) for s in streams)


class TestExtMultiprog:
    @pytest.fixture(scope="class")
    def result(self, small_suite):
        return ext_multiprog.run(traces=small_suite)

    def test_alone_row_last(self, result):
        assert result.rows[-1][0] == "alone"

    def test_switching_inflates_miss_rate(self, result):
        alone = result.rows[-1][1]
        shortest_quantum = result.rows[0][1]
        assert shortest_quantum >= alone

    def test_inflation_shrinks_with_quantum(self, result):
        inflations = [row[2] for row in result.rows[:-1]]
        assert inflations == sorted(inflations, reverse=True)

    def test_helpers_still_remove_misses(self, result):
        for row in result.rows[:-1]:
            assert row[5] > 10.0  # total removed %


class TestExtWritePolicy:
    @pytest.fixture(scope="class")
    def result(self, small_suite):
        return ext_write_policy.run(traces=small_suite)

    def test_write_through_moves_more_bytes(self, result):
        for row in result.rows:
            assert row[6] > row[7], row[0]

    def test_rates_are_rates(self, result):
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0
            assert 0.0 <= row[2] <= 1.0


class TestPlotting:
    @pytest.fixture
    def figure(self):
        return FigureResult(
            experiment_id="f",
            title="t",
            xlabel="x",
            ylabel="percent",
            series=[
                Series("rising average", [1, 2, 3, 4], [0.0, 10.0, 20.0, 30.0]),
                Series("flat average", [1, 2, 3, 4], [15.0, 15.0, 15.0, 15.0]),
                Series("detail", [1, 2, 3, 4], [1.0, 2.0, 3.0, 4.0]),
            ],
        )

    def test_chart_contains_axes_and_legend(self, figure):
        text = render_ascii_chart(figure.series, width=30, height=8, title="demo")
        assert "demo" in text
        assert "+--" in text
        assert "A = rising average" in text

    def test_plot_figure_defaults_to_averages(self, figure):
        text = plot_figure(figure, width=30, height=8)
        assert "rising average" in text
        assert "detail" not in text

    def test_plot_figure_label_filter(self, figure):
        text = plot_figure(figure, only_labels=["detail"])
        assert "A = detail" in text

    def test_empty_series(self):
        assert render_ascii_chart([]) == "(no data)"

    def test_constant_zero_series(self):
        text = render_ascii_chart([Series("z", [1, 2], [0.0, 0.0])], width=10, height=4)
        assert "A = z" in text

    def test_real_experiment_plots(self, small_suite):
        from repro.experiments import figure_4_6

        figure = figure_4_6.run(traces=small_suite)
        text = plot_figure(figure)
        assert "single, I-cache" in text


class TestInjectInterrupts:
    def test_burst_spliced_at_interval(self):
        from repro.experiments.ext_os import inject_interrupts

        user = [(0, i * 4) for i in range(100)]  # 100 ifetches
        mixed = inject_interrupts(user, interval_instructions=50)
        assert len(mixed) > len(user)
        # User references all survive, in order.
        survivors = [p for p in mixed if p[1] < 400]
        assert survivors == user

    def test_no_interrupts_when_interval_exceeds_trace(self):
        from repro.experiments.ext_os import inject_interrupts

        user = [(0, i * 4) for i in range(10)]
        assert inject_interrupts(user, interval_instructions=1000) == user

    def test_deterministic(self):
        from repro.experiments.ext_os import inject_interrupts

        user = [(0, i * 4) for i in range(500)]
        assert inject_interrupts(user, 100, seed=3) == inject_interrupts(user, 100, seed=3)

    def test_data_references_do_not_trigger(self):
        from repro.experiments.ext_os import inject_interrupts

        user = [(1, i * 4) for i in range(500)]  # loads only
        assert inject_interrupts(user, interval_instructions=50) == user


class TestExtOs:
    @pytest.fixture(scope="class")
    def result(self, small_suite):
        from repro.experiments import ext_os

        return ext_os.run(traces=small_suite)

    def test_inflation_monotone_in_interrupt_rate(self, result):
        d_inflations = [row[2] for row in result.rows[:-1]]
        assert d_inflations == sorted(d_inflations, reverse=True)

    def test_no_os_row_is_baseline(self, result):
        assert result.rows[-1][0] == "no OS"
        assert result.rows[-1][1] == 1.0

    def test_helpers_survive_interrupts(self, result):
        for row in result.rows[:-1]:
            assert row[3] > 30.0


class TestExtPenaltySweep:
    @pytest.fixture(scope="class")
    def result(self, small_suite):
        from repro.experiments import ext_penalty_sweep

        return ext_penalty_sweep.run(traces=small_suite)

    def test_speedup_monotone_in_miss_cost(self, result):
        speedups = [row[4] for row in result.rows]
        assert speedups == sorted(speedups)

    def test_baseline_potential_monotone_down(self, result):
        potentials = [row[3] for row in result.rows]
        assert potentials == sorted(potentials, reverse=True)

    def test_vax_class_is_near_pointless(self, result):
        assert result.rows[0][4] < 1.2

    def test_projected_era_is_dramatic(self, result):
        assert result.rows[-1][4] > 2.0
